//! Persistent and partitioned channel semantics: data correctness, the
//! amortized-cost model, per-partition arrival, determinism, and the
//! capability gates (`docs/TRANSPORTS.md`).

use std::sync::Arc;

use detsim::SimDuration;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use topo::summit::summit_cluster;

fn cfg(nodes: usize, rpn: usize) -> WorldConfig {
    WorldConfig::new(summit_cluster(nodes), rpn)
        .mpi_persistent(true)
        .mpi_partitioned(true)
}

#[test]
fn persistent_round_trip_moves_data_every_round() {
    let ok = Arc::new(Mutex::new(0));
    let o = Arc::clone(&ok);
    run_world(cfg(1, 2), move |ctx| {
        let m = ctx.machine();
        let bytes = 4096u64;
        if ctx.rank() == 0 {
            let buf = m.alloc_host_untimed(0, 0, bytes);
            let ch = ctx.send_init(&buf, 0, bytes, 1, 7);
            for round in 0..3u8 {
                buf.write(0, &vec![round + 1; bytes as usize]);
                let r = ctx.start(&ch);
                ctx.wait(&r.all);
            }
        } else {
            let buf = m.alloc_host_untimed(0, 1, bytes);
            let ch = ctx.recv_init(&buf, 0, bytes, 0, 7);
            for round in 0..3u8 {
                let r = ctx.start(&ch);
                ctx.wait(&r.all);
                let mut got = vec![0u8; bytes as usize];
                buf.read(0, &mut got);
                if got.iter().all(|&b| b == round + 1) {
                    *o.lock() += 1;
                }
            }
        }
    });
    assert_eq!(*ok.lock(), 3, "every round must deliver that round's bytes");
}

#[test]
fn persistent_start_cheaper_than_isend_per_iteration() {
    // Same eager-size traffic, 16 iterations: the persistent loop should
    // save ~2 * (call_overhead - persistent_start_overhead) per iteration
    // on the critical path (one post per side per iteration).
    let bytes = 1024u64;
    let iters = 16;
    let run = |persistent: bool| {
        let dt = Arc::new(Mutex::new(0.0));
        let d = Arc::clone(&dt);
        run_world(cfg(1, 2), move |ctx| {
            let m = ctx.machine();
            let me = ctx.rank();
            let buf = m.alloc_host_untimed(0, me, bytes);
            ctx.barrier();
            let t0 = ctx.wtime();
            if persistent {
                let ch = if me == 0 {
                    ctx.send_init(&buf, 0, bytes, 1, 0)
                } else {
                    ctx.recv_init(&buf, 0, bytes, 0, 0)
                };
                for _ in 0..iters {
                    let r = ctx.start(&ch);
                    ctx.wait(&r.all);
                }
            } else {
                for _ in 0..iters {
                    let r = if me == 0 {
                        ctx.isend(&buf, 0, bytes, 1, 0)
                    } else {
                        ctx.irecv(&buf, 0, bytes, 0, 0)
                    };
                    ctx.wait(&r);
                }
            }
            if me == 0 {
                *d.lock() = ctx.wtime() - t0;
            }
        });
        let t = *dt.lock();
        t
    };
    let nonblocking = run(false);
    let persistent = run(true);
    assert!(
        persistent < nonblocking,
        "persistent loop must be faster: {persistent} vs {nonblocking}"
    );
    // The init cost is paid inside the persistent loop's window too, so the
    // saving is (iters - 1) * delta at minimum.
    let delta = 1e-6 - 200e-9; // call_overhead - persistent_start_overhead
    assert!(
        nonblocking - persistent > (iters - 1) as f64 * delta * 0.9,
        "per-iteration saving should be ~call_overhead - start_overhead: \
         {nonblocking} vs {persistent}"
    );
}

#[test]
fn persistent_skips_rendezvous_after_first_round() {
    // A message over the eager threshold pays the rendezvous handshake on
    // round 0 only: the match is negotiated once per channel.
    let bytes = 100_000u64; // > 8192 eager threshold
    let times = Arc::new(Mutex::new(Vec::new()));
    let t = Arc::clone(&times);
    run_world(cfg(1, 2), move |ctx| {
        let m = ctx.machine();
        let me = ctx.rank();
        let buf = m.alloc_host_untimed(0, me, bytes);
        let ch = if me == 0 {
            ctx.send_init(&buf, 0, bytes, 1, 0)
        } else {
            ctx.recv_init(&buf, 0, bytes, 0, 0)
        };
        for _ in 0..2 {
            ctx.barrier();
            let t0 = ctx.wtime();
            let r = ctx.start(&ch);
            ctx.wait(&r.all);
            if me == 0 {
                t.lock().push(ctx.wtime() - t0);
            }
        }
    });
    let v = times.lock().clone();
    let saved = v[0] - v[1];
    assert!(
        (saved - 3e-6).abs() < 0.5e-6,
        "round 1 should skip the 3us rendezvous: round0 {} round1 {}",
        v[0],
        v[1]
    );
}

#[test]
fn partitioned_parts_arrive_incrementally_with_data() {
    // The sender releases partitions one at a time; each partition's bytes
    // land without waiting for the rest of the message.
    let bytes = 40_000u64;
    let parts = 4usize;
    let arrivals = Arc::new(Mutex::new(Vec::new()));
    let a = Arc::clone(&arrivals);
    let ok = Arc::new(Mutex::new(false));
    let o = Arc::clone(&ok);
    run_world(cfg(1, 2), move |ctx| {
        let m = ctx.machine();
        if ctx.rank() == 0 {
            let buf = m.alloc_host_untimed(0, 0, bytes);
            buf.write(0, &vec![5u8; bytes as usize]);
            let ch = ctx.psend_init(&buf, 0, bytes, 1, 9, parts);
            let r = ctx.start(&ch);
            for p in 0..parts {
                // stagger: partition p becomes ready 50us apart
                ctx.sim().delay(SimDuration::from_micros(50));
                ctx.pready(&ch, p);
            }
            ctx.wait(&r.all);
        } else {
            let buf = m.alloc_host_untimed(0, 1, bytes);
            let ch = ctx.precv_init(&buf, 0, bytes, 0, 9, parts);
            let r = ctx.start(&ch);
            for p in 0..parts {
                ctx.sim().wait(&r.parts[p]);
                a.lock().push(ctx.wtime());
            }
            ctx.wait(&r.all);
            let mut got = vec![0u8; bytes as usize];
            buf.read(0, &mut got);
            *o.lock() = got.iter().all(|&b| b == 5);
        }
    });
    assert!(*ok.lock(), "all partitions must deliver their bytes");
    let v = arrivals.lock().clone();
    assert_eq!(v.len(), parts);
    for w in v.windows(2) {
        let gap = w[1] - w[0];
        assert!(
            gap > 30e-6 && gap < 70e-6,
            "staggered preadys must produce staggered arrivals: {v:?}"
        );
    }
}

#[test]
fn persistent_equals_nonblocking_when_reuse_is_free() {
    // Property: with the cost model equalized (`MPI_Start` priced like
    // `MPI_Isend`) and eager-size messages (no rendezvous to amortize),
    // the persistent path is *bit-identical* to the nonblocking one —
    // same delivered bytes, same NIC traffic, same virtual end time.
    // Any divergence means the channel model changes semantics rather
    // than just amortizing per-iteration cost.
    for (nodes, rpn, bytes, iters) in [
        (1usize, 2usize, 64u64, 3usize),
        (1, 3, 1500, 5),
        (2, 2, 8192, 4),
        (2, 6, 4096, 2),
    ] {
        let run = |persistent: bool| {
            let mut cfg = cfg(nodes, rpn);
            cfg.mpi_cost.persistent_start_overhead = cfg.mpi_cost.call_overhead;
            let init_cost = cfg.mpi_cost.call_overhead;
            let data = Arc::new(Mutex::new(Vec::new()));
            let d = Arc::clone(&data);
            let rep = run_world(cfg, move |ctx| {
                let m = ctx.machine();
                let me = ctx.rank();
                let n = ctx.size();
                let peer = (me + 1) % n;
                let from = (me + n - 1) % n;
                let sbuf = m.alloc_host_untimed(ctx.node(), 0, bytes);
                let rbuf = m.alloc_host_untimed(ctx.node(), 0, bytes);
                let chans = persistent.then(|| {
                    (
                        ctx.send_init(&sbuf, 0, bytes, peer, 3),
                        ctx.recv_init(&rbuf, 0, bytes, from, 3),
                    )
                });
                if chans.is_none() {
                    // Mirror the one-time channel-init posts so both runs
                    // enter the loop at the same virtual instant.
                    ctx.sim().delay(init_cost);
                    ctx.sim().delay(init_cost);
                }
                ctx.barrier();
                for it in 0..iters {
                    sbuf.write(0, &vec![(me * iters + it) as u8; bytes as usize]);
                    if let Some((sch, rch)) = &chans {
                        let rr = ctx.start(rch);
                        let sr = ctx.start(sch);
                        ctx.wait(&rr.all);
                        ctx.wait(&sr.all);
                    } else {
                        let rr = ctx.irecv(&rbuf, 0, bytes, from, 3);
                        let sr = ctx.isend(&sbuf, 0, bytes, peer, 3);
                        ctx.wait(&rr);
                        ctx.wait(&sr);
                    }
                    ctx.barrier();
                }
                let mut got = vec![0u8; bytes as usize];
                rbuf.read(0, &mut got);
                d.lock().push((me, got));
            });
            let mut v = data.lock().clone();
            v.sort();
            (rep.elapsed, rep.nic_injected.clone(), v)
        };
        let (e_nb, nic_nb, data_nb) = run(false);
        let (e_p, nic_p, data_p) = run(true);
        assert_eq!(
            data_nb, data_p,
            "delivered bytes must match ({nodes}n x {rpn}r, {bytes}B)"
        );
        assert_eq!(
            nic_nb, nic_p,
            "NIC traffic must match ({nodes}n x {rpn}r, {bytes}B)"
        );
        assert_eq!(
            e_nb, e_p,
            "virtual end time must be bit-identical ({nodes}n x {rpn}r, {bytes}B x{iters})"
        );
    }
}

#[test]
fn partitioned_arrival_order_deterministic_across_runs() {
    // Two ranks exchange partitioned messages in both directions; the
    // per-partition arrival times and the final virtual time must be
    // bit-identical across runs.
    let run = || {
        let arrivals = Arc::new(Mutex::new(Vec::new()));
        let a = Arc::clone(&arrivals);
        let elapsed = run_world(cfg(2, 6), move |ctx| {
            let m = ctx.machine();
            let bytes = 30_000u64;
            let parts = 3usize;
            let me = ctx.rank();
            let n = ctx.size();
            let peer = (me + 1) % n;
            let from = (me + n - 1) % n;
            let sbuf = m.alloc_host_untimed(ctx.node(), 0, bytes);
            let rbuf = m.alloc_host_untimed(ctx.node(), 0, bytes);
            let sch = ctx.psend_init(&sbuf, 0, bytes, peer, 1, parts);
            let rch = ctx.precv_init(&rbuf, 0, bytes, from, 1, parts);
            for _ in 0..2 {
                let rr = ctx.start(&rch);
                let sr = ctx.start(&sch);
                for p in 0..parts {
                    ctx.sim().delay(SimDuration::from_micros(me as u64 + 1));
                    ctx.pready(&sch, p);
                }
                for p in 0..parts {
                    ctx.sim().wait(&rr.parts[p]);
                    a.lock().push((me, p, ctx.sim().now().picos()));
                }
                ctx.wait(&sr.all);
            }
        })
        .elapsed;
        let got = arrivals.lock().clone();
        (elapsed, got)
    };
    let (e1, a1) = run();
    let (e2, a2) = run();
    assert_eq!(e1, e2, "virtual end time must be bit-identical");
    assert_eq!(
        a1, a2,
        "partition arrival order/times must be bit-identical"
    );
}

#[test]
fn partitioned_internode_uses_nic() {
    let rep = run_world(cfg(2, 1).metrics(true), move |ctx| {
        let m = ctx.machine();
        let bytes = 1_000_000u64;
        if ctx.rank() == 0 {
            let buf = m.alloc_host_untimed(0, 0, bytes);
            let ch = ctx.psend_init(&buf, 0, bytes, 1, 0, 4);
            let r = ctx.start(&ch);
            for p in 0..4 {
                ctx.pready(&ch, p);
            }
            ctx.wait(&r.all);
        } else {
            let buf = m.alloc_host_untimed(1, 0, bytes);
            let ch = ctx.precv_init(&buf, 0, bytes, 0, 0, 4);
            let r = ctx.start(&ch);
            ctx.wait(&r.all);
        }
    });
    assert_eq!(
        rep.nic_injected[0], 1_000_000,
        "all partitions ride the NIC"
    );
    let json = rep.metrics.unwrap().to_json();
    assert!(json.contains("\"partition_ready\""), "{json}");
    assert!(json.contains("partitioned"), "{json}");
}

#[test]
fn channel_metrics_recorded() {
    let rep = run_world(cfg(1, 2).metrics(true), move |ctx| {
        let m = ctx.machine();
        let bytes = 2048u64;
        if ctx.rank() == 0 {
            let buf = m.alloc_host_untimed(0, 0, bytes);
            let ch = ctx.send_init(&buf, 0, bytes, 1, 0);
            let r = ctx.start(&ch);
            ctx.wait(&r.all);
        } else {
            let buf = m.alloc_host_untimed(0, 1, bytes);
            let ch = ctx.recv_init(&buf, 0, bytes, 0, 0);
            let r = ctx.start(&ch);
            ctx.wait(&r.all);
        }
    });
    let json = rep.metrics.unwrap().to_json();
    assert!(json.contains("\"channel_ends\""), "{json}");
    assert!(json.contains("\"channel_starts\""), "{json}");
    assert!(json.contains("\"persistent\""), "{json}");
}

#[test]
#[should_panic(expected = "mpi_persistent is off")]
fn persistent_requires_capability_knob() {
    run_world(WorldConfig::new(summit_cluster(1), 2), move |ctx| {
        let m = ctx.machine();
        let buf = m.alloc_host_untimed(0, 0, 64);
        if ctx.rank() == 0 {
            ctx.send_init(&buf, 0, 64, 1, 0);
        }
    });
}

#[test]
#[should_panic(expected = "mpi_partitioned is off")]
fn partitioned_requires_capability_knob() {
    run_world(
        WorldConfig::new(summit_cluster(1), 2).mpi_persistent(true),
        move |ctx| {
            let m = ctx.machine();
            let buf = m.alloc_host_untimed(0, 0, 64);
            if ctx.rank() == 0 {
                ctx.psend_init(&buf, 0, 64, 1, 0, 2);
            }
        },
    );
}

#[test]
#[should_panic(expected = "host buffers")]
fn device_buffers_rejected_on_channels() {
    run_world(cfg(1, 2).cuda_aware(true), move |ctx| {
        let m = ctx.machine();
        if ctx.rank() == 0 {
            let buf = m.alloc_device_untimed(0, 64).unwrap();
            ctx.send_init(&buf, 0, 64, 1, 0);
        }
    });
}
