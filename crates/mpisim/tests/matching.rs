//! MPI semantics tests: tag matching order, send-before-recv and
//! recv-before-send symmetry, many-to-many stress, self-messaging, and the
//! rendezvous/eager latency split.

use std::sync::Arc;

use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use topo::summit::summit_cluster;

fn cfg(nodes: usize, rpn: usize) -> WorldConfig {
    WorldConfig::new(summit_cluster(nodes), rpn)
}

#[test]
fn same_tag_messages_match_in_post_order() {
    // MPI guarantees non-overtaking for identical (src, dst, tag):
    // the first send matches the first receive.
    let got: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let g2 = Arc::clone(&got);
    run_world(cfg(1, 2), move |ctx| {
        let m = ctx.machine();
        if ctx.rank() == 0 {
            for i in 0..4u8 {
                let buf = m.alloc_host_untimed(0, 0, 64);
                buf.write(0, &[i; 64]);
                ctx.send(&buf, 0, 64, 1, 9);
            }
        } else {
            for _ in 0..4 {
                let buf = m.alloc_host_untimed(0, 1, 64);
                ctx.recv(&buf, 0, 64, 0, 9);
                let mut b = [0u8; 1];
                buf.read(0, &mut b);
                g2.lock().push(b[0]);
            }
        }
    });
    assert_eq!(*got.lock(), vec![0, 1, 2, 3]);
}

#[test]
fn send_first_and_recv_first_both_work() {
    for recv_first in [false, true] {
        let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
        let o2 = Arc::clone(&ok);
        run_world(cfg(1, 2), move |ctx| {
            let m = ctx.machine();
            if ctx.rank() == 0 {
                if !recv_first {
                    // let the receiver post first
                    ctx.sim().delay(detsim::SimDuration::from_micros(50));
                }
                let buf = m.alloc_host_untimed(0, 0, 128);
                buf.write(0, &[7; 128]);
                ctx.send(&buf, 0, 128, 1, 0);
            } else {
                if recv_first {
                    ctx.sim().delay(detsim::SimDuration::from_micros(50));
                }
                let buf = m.alloc_host_untimed(0, 1, 128);
                ctx.recv(&buf, 0, 128, 0, 0);
                let mut b = [0u8; 128];
                buf.read(0, &mut b);
                *o2.lock() = b.iter().all(|&v| v == 7);
            }
        });
        assert!(*ok.lock(), "recv_first={recv_first}");
    }
}

#[test]
fn distinct_tags_do_not_cross_match() {
    let got: Arc<Mutex<(u8, u8)>> = Arc::new(Mutex::new((0, 0)));
    let g2 = Arc::clone(&got);
    run_world(cfg(1, 2), move |ctx| {
        let m = ctx.machine();
        if ctx.rank() == 0 {
            let a = m.alloc_host_untimed(0, 0, 8);
            a.write(0, &[1; 8]);
            let b = m.alloc_host_untimed(0, 0, 8);
            b.write(0, &[2; 8]);
            // send tag 5 first, then tag 4
            let r1 = ctx.isend(&a, 0, 8, 1, 5);
            let r2 = ctx.isend(&b, 0, 8, 1, 4);
            ctx.wait_all(&[r1, r2]);
        } else {
            // receive tag 4 first: must get payload 2 despite arriving later
            let b4 = m.alloc_host_untimed(0, 1, 8);
            ctx.recv(&b4, 0, 8, 0, 4);
            let b5 = m.alloc_host_untimed(0, 1, 8);
            ctx.recv(&b5, 0, 8, 0, 5);
            let mut x = [0u8; 1];
            let mut y = [0u8; 1];
            b4.read(0, &mut x);
            b5.read(0, &mut y);
            *g2.lock() = (x[0], y[0]);
        }
    });
    assert_eq!(*got.lock(), (2, 1));
}

#[test]
fn self_send_works() {
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let o2 = Arc::clone(&ok);
    run_world(cfg(1, 1), move |ctx| {
        let m = ctx.machine();
        let s = m.alloc_host_untimed(0, 0, 32);
        s.write(0, &[9; 32]);
        let r = m.alloc_host_untimed(0, 0, 32);
        let rr = ctx.irecv(&r, 0, 32, 0, 3);
        let rs = ctx.isend(&s, 0, 32, 0, 3);
        ctx.wait_all(&[rr, rs]);
        let mut b = [0u8; 32];
        r.read(0, &mut b);
        *o2.lock() = b.iter().all(|&v| v == 9);
    });
    assert!(*ok.lock());
}

#[test]
fn all_to_all_stress_delivers_every_payload() {
    let bad: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let b2 = Arc::clone(&bad);
    run_world(cfg(2, 6), move |ctx| {
        let m = ctx.machine();
        let n = ctx.size();
        let me = ctx.rank();
        let sbufs: Vec<_> = (0..n)
            .map(|peer| {
                let b = m.alloc_host_untimed(ctx.node(), 0, 256);
                b.write(0, &[(me * 16 + peer) as u8; 256]);
                b
            })
            .collect();
        let rbufs: Vec<_> = (0..n)
            .map(|_| m.alloc_host_untimed(ctx.node(), 0, 256))
            .collect();
        let mut reqs = Vec::new();
        for peer in 0..n {
            if peer == me {
                continue;
            }
            reqs.push(ctx.irecv(&rbufs[peer], 0, 256, peer, 77));
            reqs.push(ctx.isend(&sbufs[peer], 0, 256, peer, 77));
        }
        ctx.wait_all(&reqs);
        for (peer, rbuf) in rbufs.iter().enumerate() {
            if peer == me {
                continue;
            }
            let mut b = [0u8; 256];
            rbuf.read(0, &mut b);
            if !b.iter().all(|&v| v == (peer * 16 + me) as u8) {
                *b2.lock() += 1;
            }
        }
    });
    assert_eq!(*bad.lock(), 0);
}

#[test]
fn eager_messages_skip_rendezvous_latency() {
    // A small (eager) message completes faster than a just-above-threshold
    // (rendezvous) one beyond the pure bandwidth difference.
    let times: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = Arc::clone(&times);
    let world = cfg(1, 2).data_mode(DataMode::Virtual);
    run_world(world, move |ctx| {
        let m = ctx.machine();
        for bytes in [512u64, 8193] {
            ctx.barrier();
            if ctx.rank() == 0 {
                let b = m.alloc_host_untimed(0, 0, bytes);
                let t0 = ctx.wtime();
                ctx.send(&b, 0, bytes, 1, bytes);
                t2.lock().push(ctx.wtime() - t0);
            } else {
                let b = m.alloc_host_untimed(0, 1, bytes);
                ctx.recv(&b, 0, bytes, 0, bytes);
            }
        }
    });
    let t = times.lock();
    let bandwidth_delta = (8193.0 - 512.0) / 10e9; // shm rate
    let extra = t[1] - t[0] - bandwidth_delta;
    // the rendezvous handshake (3us) must be visible
    assert!(
        extra > 2.5e-6,
        "rendezvous latency not charged: {:?} extra {extra}",
        *t
    );
}

#[test]
fn barrier_cost_grows_with_world_size() {
    let time_barrier = |nodes: usize| {
        let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
        let o2 = Arc::clone(&out);
        run_world(cfg(nodes, 6), move |ctx| {
            ctx.barrier(); // align
            let t0 = ctx.wtime();
            ctx.barrier();
            if ctx.rank() == 0 {
                *o2.lock() = ctx.wtime() - t0;
            }
        });
        let v = *out.lock();
        v
    };
    let small = time_barrier(1);
    let large = time_barrier(8);
    assert!(large > small, "log-tree barrier: {small} vs {large}");
}
