//! The cluster world: builds the whole simulated machine and runs one
//! program per MPI rank.

use std::sync::Arc;

use detsim::{Program, Sim, SimDuration};
use faultsim::FaultSchedule;
use gpusim::{DataMode, GpuCostModel, GpuMachine};
use topo::ClusterSpec;

use crate::config::MpiCostModel;
use crate::rank::RankCtx;
use crate::transport::MpiState;

/// Everything needed to stand up a simulated job.
#[derive(Clone)]
pub struct WorldConfig {
    /// The machine.
    pub cluster: ClusterSpec,
    /// MPI ranks per node (must divide the node's GPU count).
    pub ranks_per_node: usize,
    /// GPU runtime cost model.
    pub gpu_cost: GpuCostModel,
    /// MPI cost model.
    pub mpi_cost: MpiCostModel,
    /// Whether buffers carry real bytes.
    pub data_mode: DataMode,
    /// Whether the MPI library accepts device pointers.
    pub cuda_aware: bool,
    /// Whether the MPI library implements persistent requests
    /// (`send_init`/`recv_init`/`start`). Off by default, like
    /// `cuda_aware`: runs that never ask for the capability are
    /// bit-identical to builds without it.
    pub mpi_persistent: bool,
    /// Whether the MPI library implements partitioned communication
    /// (`psend_init`/`precv_init`/`pready`). Off by default.
    pub mpi_partitioned: bool,
    /// Record a timeline trace.
    pub trace: bool,
    /// Record metrics (counters, gauges, histograms across every layer).
    pub metrics: bool,
    /// Deterministic fault schedule installed at virtual time zero. The
    /// default (empty) schedule registers no events, leaving the run
    /// bit-identical to one without fault injection.
    pub faults: FaultSchedule,
}

impl WorldConfig {
    /// Defaults: full data, no CUDA-aware, no trace.
    pub fn new(cluster: ClusterSpec, ranks_per_node: usize) -> Self {
        WorldConfig {
            cluster,
            ranks_per_node,
            gpu_cost: GpuCostModel::default(),
            mpi_cost: MpiCostModel::default(),
            data_mode: DataMode::Full,
            cuda_aware: false,
            mpi_persistent: false,
            mpi_partitioned: false,
            trace: false,
            metrics: false,
            faults: FaultSchedule::new(),
        }
    }

    /// Enable/disable CUDA-aware MPI.
    pub fn cuda_aware(mut self, on: bool) -> Self {
        self.cuda_aware = on;
        self
    }

    /// Enable/disable persistent-request support in the simulated MPI.
    pub fn mpi_persistent(mut self, on: bool) -> Self {
        self.mpi_persistent = on;
        self
    }

    /// Enable/disable partitioned-communication support in the simulated
    /// MPI.
    pub fn mpi_partitioned(mut self, on: bool) -> Self {
        self.mpi_partitioned = on;
        self
    }

    /// Set the data mode.
    pub fn data_mode(mut self, mode: DataMode) -> Self {
        self.data_mode = mode;
        self
    }

    /// Enable timeline tracing.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable metrics collection (disabled by default; zero overhead when
    /// off). The collected registry is returned as
    /// [`WorldReport::metrics`].
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Install a deterministic fault schedule (see [`faultsim`]). Event
    /// offsets are measured from virtual time zero.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = schedule;
        self
    }

    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.cluster.num_nodes * self.ranks_per_node
    }
}

/// Results of a completed run.
pub struct WorldReport {
    /// Final virtual time (job duration).
    pub elapsed: SimDuration,
    /// Bytes injected into the network by each node (diagnostics).
    pub nic_injected: Vec<u64>,
    /// Peak utilization of each node's injection link (diagnostics; > 1.0
    /// would indicate a flow-model bug).
    pub nic_peak_util: Vec<f64>,
    /// Load-integral bytes for each node's injection link (diagnostics).
    pub nic_busy_bytes: Vec<f64>,
    /// Number of simulator events executed (diagnostics).
    pub executed_events: u64,
    /// Chrome trace JSON, if tracing was enabled.
    pub trace_json: Option<String>,
    /// ASCII timeline, if tracing was enabled.
    pub trace_ascii: Option<String>,
    /// Metrics registry snapshot, if metrics were enabled.
    pub metrics: Option<detsim::MetricsReport>,
}

/// Run `program` once per rank on a freshly built world. Blocks until every
/// rank returns; returns timing and (optionally) trace output.
///
/// The program receives a [`RankCtx`]; share results out through captured
/// `Arc<Mutex<..>>` state.
pub fn run_world<F>(config: WorldConfig, program: F) -> WorldReport
where
    F: Fn(&RankCtx) + Send + Sync + 'static,
{
    let num_ranks = config.num_ranks();
    assert!(num_ranks > 0, "world with zero ranks");
    assert!(
        config
            .cluster
            .node
            .num_gpus()
            .is_multiple_of(config.ranks_per_node),
        "ranks per node ({}) must divide GPUs per node ({})",
        config.ranks_per_node,
        config.cluster.node.num_gpus()
    );
    let mut sim = Sim::new();
    let st = sim.with_kernel(|k| {
        if config.trace {
            k.trace.enable();
        }
        if config.metrics {
            k.metrics.enable();
        }
        let machine = GpuMachine::new(
            k,
            config.cluster.clone(),
            config.gpu_cost.clone(),
            config.data_mode,
        );
        config.faults.install(k, &machine);
        let st = MpiState::new(
            k,
            machine,
            config.mpi_cost.clone(),
            config.cuda_aware,
            config.mpi_persistent,
            config.mpi_partitioned,
            config.ranks_per_node,
        );
        // Link/device events were installed above; rank kill/respawn events
        // need the communicator state and are installed here. A schedule
        // without rank events registers nothing (faults-off runs untouched).
        st.install_rank_faults(k, &config.faults, detsim::SimTime::ZERO);
        st
    });
    let program = Arc::new(program);
    let programs: Vec<Program> = (0..num_ranks)
        .map(|rank| {
            let st = Arc::clone(&st);
            let program = Arc::clone(&program);
            Box::new(move |sim_ctx: &detsim::SimCtx| {
                debug_assert_eq!(sim_ctx.tid(), rank);
                let ctx = RankCtx {
                    sim: sim_ctx,
                    st,
                    rank,
                };
                program(&ctx);
            }) as Program
        })
        .collect();
    sim.run_programs(programs);
    let elapsed = sim.now().since(detsim::SimTime::ZERO);
    let machine = st.machine.clone();
    sim.with_kernel(|k| WorldReport {
        elapsed,
        nic_injected: if machine.num_nodes() > 1 {
            (0..machine.num_nodes())
                .map(|n| k.link_delivered(machine.fabric().injection_link(n)))
                .collect()
        } else {
            Vec::new()
        },
        nic_peak_util: if machine.num_nodes() > 1 {
            (0..machine.num_nodes())
                .map(|n| k.link_peak_utilization(machine.fabric().injection_link(n)))
                .collect()
        } else {
            Vec::new()
        },
        nic_busy_bytes: if machine.num_nodes() > 1 {
            (0..machine.num_nodes())
                .map(|n| k.link_busy_bytes(machine.fabric().injection_link(n)))
                .collect()
        } else {
            Vec::new()
        },
        executed_events: k.executed_events(),
        trace_json: k.trace.is_enabled().then(|| k.trace.to_chrome_json()),
        trace_ascii: k.trace.is_enabled().then(|| k.trace.to_ascii(100)),
        metrics: k.metrics.is_enabled().then(|| k.metrics.report()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use topo::summit::summit_cluster;

    fn cfg(nodes: usize, rpn: usize) -> WorldConfig {
        WorldConfig::new(summit_cluster(nodes), rpn)
    }

    #[test]
    fn world_runs_every_rank() {
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h = Arc::clone(&hits);
        run_world(cfg(2, 6), move |ctx| {
            h.lock().push((ctx.rank(), ctx.node()));
        });
        let mut v = hits.lock().clone();
        v.sort();
        assert_eq!(v.len(), 12);
        assert_eq!(v[0], (0, 0));
        assert_eq!(v[11], (11, 1));
    }

    #[test]
    fn gpu_assignment_partitions_node() {
        let out = Arc::new(Mutex::new(vec![Vec::new(); 4]));
        let o = Arc::clone(&out);
        run_world(cfg(2, 2), move |ctx| {
            o.lock()[ctx.rank()] = ctx.gpus();
        });
        let v = out.lock().clone();
        assert_eq!(v[0], vec![0, 1, 2]);
        assert_eq!(v[1], vec![3, 4, 5]);
        assert_eq!(v[2], vec![6, 7, 8]);
        assert_eq!(v[3], vec![9, 10, 11]);
    }

    #[test]
    fn single_rank_per_node_owns_all_gpus() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        run_world(cfg(1, 1), move |ctx| {
            *o.lock() = ctx.gpus();
        });
        assert_eq!(*out.lock(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn uneven_rank_split_rejected() {
        run_world(cfg(1, 4), |_| {});
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&times);
        run_world(cfg(1, 6), move |ctx| {
            // stagger arrivals
            ctx.sim()
                .delay(SimDuration::from_micros(10 * ctx.rank() as u64));
            ctx.barrier();
            t.lock().push(ctx.wtime());
        });
        let v = times.lock().clone();
        assert_eq!(v.len(), 6);
        let first = v[0];
        for &x in &v {
            assert!((x - first).abs() < 1e-12, "all exit barrier together");
        }
        assert!(first >= 50e-6, "barrier waits for slowest arrival");
    }

    #[test]
    fn host_send_recv_moves_data_intra_node() {
        let ok = Arc::new(Mutex::new(false));
        let o = Arc::clone(&ok);
        run_world(cfg(1, 2), move |ctx| {
            let m = ctx.machine();
            if ctx.rank() == 0 {
                let buf = m.alloc_host_untimed(0, 0, 1024);
                buf.write(0, &[42u8; 1024]);
                ctx.send(&buf, 0, 1024, 1, 7);
            } else {
                let buf = m.alloc_host_untimed(0, 1, 1024);
                ctx.recv(&buf, 0, 1024, 0, 7);
                let mut got = [0u8; 1024];
                buf.read(0, &mut got);
                *o.lock() = got.iter().all(|&b| b == 42);
            }
        });
        assert!(*ok.lock());
    }

    #[test]
    fn internode_transfer_charges_nic_time() {
        let dt = Arc::new(Mutex::new(0.0));
        let d = Arc::clone(&dt);
        run_world(cfg(2, 1), move |ctx| {
            let m = ctx.machine();
            let bytes = 25_000_000u64; // 1 ms at 25 GB/s injection
            if ctx.rank() == 0 {
                let buf = m.alloc_host_untimed(0, 0, bytes);
                ctx.send(&buf, 0, bytes, 1, 0);
            } else {
                let buf = m.alloc_host_untimed(1, 0, bytes);
                let t0 = ctx.wtime();
                ctx.recv(&buf, 0, bytes, 0, 0);
                *d.lock() = ctx.wtime() - t0;
            }
        });
        let secs = *dt.lock();
        assert!(secs > 0.001 && secs < 0.00105, "25MB over IB ~1ms: {secs}");
    }

    #[test]
    fn shm_transfer_slower_than_nvlink_rate() {
        let dt = Arc::new(Mutex::new(0.0));
        let d = Arc::clone(&dt);
        run_world(cfg(1, 2), move |ctx| {
            let m = ctx.machine();
            let bytes = 10_000_000u64; // 1 ms at shm 10 GB/s
            if ctx.rank() == 0 {
                let buf = m.alloc_host_untimed(0, 0, bytes);
                let t0 = ctx.wtime();
                ctx.send(&buf, 0, bytes, 1, 0);
                *d.lock() = ctx.wtime() - t0;
            } else {
                let buf = m.alloc_host_untimed(0, 1, bytes);
                ctx.recv(&buf, 0, bytes, 0, 0);
            }
        });
        let secs = *dt.lock();
        assert!(secs > 0.001 && secs < 0.0011, "10MB over shm ~1ms: {secs}");
    }

    #[test]
    fn one_rank_sends_serialize_on_progress_engine() {
        // Rank 0 sends two large messages to ranks 1 and 2 concurrently:
        // both flow through rank 0's shm engine and share its bandwidth.
        let dt = Arc::new(Mutex::new(0.0));
        let d = Arc::clone(&dt);
        run_world(cfg(1, 3), move |ctx| {
            let m = ctx.machine();
            let bytes = 10_000_000u64;
            if ctx.rank() == 0 {
                let a = m.alloc_host_untimed(0, 0, bytes);
                let b = m.alloc_host_untimed(0, 0, bytes);
                let t0 = ctx.wtime();
                let r1 = ctx.isend(&a, 0, bytes, 1, 0);
                let r2 = ctx.isend(&b, 0, bytes, 2, 0);
                ctx.wait_all(&[r1, r2]);
                *d.lock() = ctx.wtime() - t0;
            } else {
                let buf = m.alloc_host_untimed(0, 0, bytes);
                ctx.recv(&buf, 0, bytes, 0, 0);
            }
        });
        let secs = *dt.lock();
        assert!(secs > 0.0019, "two 1ms sends share one engine: {secs}");
    }

    #[test]
    fn obj_channel_round_trip() {
        #[derive(Clone, PartialEq, Debug)]
        struct Meta {
            id: usize,
            shape: [u64; 3],
        }
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        run_world(cfg(1, 2), move |ctx| {
            if ctx.rank() == 0 {
                ctx.send_obj(
                    1,
                    3,
                    Meta {
                        id: 9,
                        shape: [1, 2, 3],
                    },
                );
            } else {
                *g.lock() = Some(ctx.recv_obj::<Meta>(0, 3));
            }
        });
        assert_eq!(
            got.lock().clone().unwrap(),
            Meta {
                id: 9,
                shape: [1, 2, 3]
            }
        );
    }

    #[test]
    fn all_gather_obj_collects_in_rank_order() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        run_world(cfg(1, 6), move |ctx| {
            let all = ctx.all_gather_obj(11, ctx.rank() * 10);
            if ctx.rank() == 3 {
                *o.lock() = all;
            }
        });
        assert_eq!(*out.lock(), vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "CUDA-aware support is disabled")]
    fn device_buffer_without_cuda_aware_panics() {
        run_world(cfg(1, 2), move |ctx| {
            let m = ctx.machine();
            if ctx.rank() == 0 {
                let buf = m.alloc_device_untimed(0, 1024).unwrap();
                ctx.send(&buf, 0, 1024, 1, 0);
            } else {
                let buf = m.alloc_host_untimed(0, 1, 1024);
                ctx.recv(&buf, 0, 1024, 0, 0);
            }
        });
    }

    #[test]
    fn cuda_aware_device_transfer_works_and_serializes() {
        // Two CUDA-aware messages from the same source GPU serialize on its
        // default stream.
        let dt = Arc::new(Mutex::new(0.0));
        let d = Arc::clone(&dt);
        run_world(cfg(1, 3).cuda_aware(true), move |ctx| {
            let m = ctx.machine();
            let bytes = 50_000_000u64; // 1 ms on NVLink
            if ctx.rank() == 0 {
                let a = m.alloc_device_untimed(0, bytes).unwrap();
                let t0 = ctx.wtime();
                let r1 = ctx.isend(&a, 0, bytes, 1, 0);
                let r2 = ctx.isend(&a, 0, bytes, 2, 1);
                ctx.wait_all(&[r1, r2]);
                *d.lock() = ctx.wtime() - t0;
            } else {
                // gpu of rank 1 is 2? ranks_per_node=3 => 2 gpus per rank
                let g = ctx.gpus()[0];
                let b = m.alloc_device_untimed(g, bytes).unwrap();
                ctx.recv(&b, 0, bytes, 0, ctx.rank() as u64 - 1);
            }
        });
        let secs = *dt.lock();
        assert!(
            secs > 0.002,
            "two CA transfers from one GPU must serialize on its default stream: {secs}"
        );
    }

    #[test]
    fn cuda_aware_moves_real_bytes() {
        let ok = Arc::new(Mutex::new(false));
        let o = Arc::clone(&ok);
        run_world(cfg(2, 1).cuda_aware(true), move |ctx| {
            let m = ctx.machine();
            if ctx.rank() == 0 {
                let buf = m.alloc_device_untimed(0, 64).unwrap();
                buf.write(0, &[9u8; 64]);
                ctx.send(&buf, 0, 64, 1, 0);
            } else {
                let buf = m.alloc_device_untimed(6, 64).unwrap();
                ctx.recv(&buf, 0, 64, 0, 0);
                let mut got = [0u8; 64];
                buf.read(0, &mut got);
                *o.lock() = got.iter().all(|&b| b == 9);
            }
        });
        assert!(*ok.lock());
    }

    #[test]
    fn report_contains_trace_when_enabled() {
        let rep = run_world(cfg(1, 2).trace(true), move |ctx| {
            let m = ctx.machine();
            if ctx.rank() == 0 {
                let buf = m.alloc_host_untimed(0, 0, 4096 * 10);
                ctx.send(&buf, 0, 40960, 1, 0);
            } else {
                let buf = m.alloc_host_untimed(0, 1, 4096 * 10);
                ctx.recv(&buf, 0, 40960, 0, 0);
            }
        });
        assert!(rep.trace_json.unwrap().contains("MPI shm"));
        assert!(rep.elapsed.picos() > 0);
        assert!(rep.executed_events > 0);
    }

    #[test]
    fn nic_flap_stalls_and_resumes_internode_transfer() {
        use faultsim::FaultSchedule;
        let xfer = |faults: FaultSchedule| {
            run_world(cfg(2, 1).faults(faults), move |ctx| {
                let m = ctx.machine();
                let bytes = 25_000_000u64; // 1 ms at 25 GB/s injection
                if ctx.rank() == 0 {
                    let buf = m.alloc_host_untimed(0, 0, bytes);
                    ctx.send(&buf, 0, bytes, 1, 0);
                } else {
                    let buf = m.alloc_host_untimed(1, 0, bytes);
                    ctx.recv(&buf, 0, bytes, 0, 0);
                }
            })
            .elapsed
            .as_secs_f64()
        };
        let clean = xfer(FaultSchedule::new());
        // NIC down for 2 ms in the middle of the ~1 ms transfer: the flow
        // trickles during the stall and resumes after the restore.
        let flapped = xfer(FaultSchedule::flapping_nic(
            0,
            SimDuration::from_micros(200),
            SimDuration::from_micros(2000),
            SimDuration::from_micros(100),
            1,
        ));
        assert!(
            flapped > clean + 0.0015,
            "flap should add ~2ms of stall: clean {clean}, flapped {flapped}"
        );
        assert!(
            flapped < clean + 0.0025,
            "transfer should resume after restore: clean {clean}, flapped {flapped}"
        );
    }

    #[test]
    fn kill_revokes_pending_ops_and_shrinks_barrier() {
        use faultsim::FaultSchedule;
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let faults = FaultSchedule::kill(1, SimDuration::from_micros(100));
        run_world(cfg(1, 2).faults(faults), move |ctx| {
            let m = ctx.machine();
            if ctx.rank() == 0 {
                // Receive from rank 1 that will never be satisfied: rank 1
                // dies at t=100us with the recv still pending.
                let buf = m.alloc_host_untimed(0, 0, 1024);
                let r = ctx.irecv(&buf, 0, 1024, 1, 7);
                ctx.wait(&r);
                o.lock().push(("revoked", r.is_revoked()));
                assert!(!ctx.is_alive(1));
                assert_eq!(ctx.alive_ranks(), vec![0]);
                assert_eq!(ctx.failure_epoch(), 1);
                // Post-kill ops against the dead rank revoke immediately.
                let r2 = ctx.isend(&buf, 0, 1024, 1, 8);
                o.lock().push(("posted-dead", r2.is_revoked()));
                // The shrunken barrier releases with only rank 0 arriving.
                ctx.barrier();
                o.lock().push(("past-barrier", true));
            } else {
                // Rank 1 parks on a message nobody sends; its death revokes
                // the recv so the coroutine unwinds instead of deadlocking.
                let buf = m.alloc_host_untimed(0, 1, 1024);
                let r = ctx.irecv(&buf, 0, 1024, 0, 9);
                ctx.wait(&r);
            }
        });
        let v = out.lock().clone();
        assert_eq!(
            v,
            vec![
                ("revoked", true),
                ("posted-dead", true),
                ("past-barrier", true)
            ]
        );
    }

    #[test]
    fn respawn_rejoins_and_rehandshakes_channels() {
        use faultsim::FaultSchedule;
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let faults = FaultSchedule::kill_respawn(
            1,
            SimDuration::from_micros(100),
            SimDuration::from_micros(300),
        );
        run_world(cfg(1, 2).faults(faults).mpi_persistent(true), move |ctx| {
            let m = ctx.machine();
            let bytes = 4096u64;
            if ctx.rank() == 0 {
                let buf = m.alloc_host_untimed(0, 0, bytes);
                let ch = ctx.send_init(&buf, 0, bytes, 1, 5);
                // Round 0 lands before the kill.
                let r0 = ctx.start(&ch);
                ctx.wait(&r0.all);
                o.lock().push(("round0-revoked", r0.all.is_revoked()));
                // Step into the death window, wait it out, then observe
                // the revoked handle: starting it resolves immediately.
                ctx.sim().delay(SimDuration::from_micros(200));
                ctx.await_all_alive();
                o.lock().push(("handle-revoked", ctx.channel_revoked(&ch)));
                let dead_round = ctx.start(&ch);
                ctx.wait(&dead_round.all);
                o.lock().push(("dead-start", dead_round.all.is_revoked()));
                // Re-handshake: fresh channel under the same key works.
                let ch2 = ctx.send_init(&buf, 0, bytes, 1, 5);
                let r1 = ctx.start(&ch2);
                ctx.wait(&r1.all);
                o.lock().push(("round1-revoked", r1.all.is_revoked()));
            } else {
                let buf = m.alloc_host_untimed(0, 1, bytes);
                let ch = ctx.recv_init(&buf, 0, bytes, 0, 5);
                let r0 = ctx.start(&ch);
                ctx.wait(&r0.all);
                // Simulated death window: the coroutine idles past it,
                // then rejoins with a fresh channel.
                ctx.sim().delay(SimDuration::from_micros(200));
                ctx.await_all_alive();
                assert_eq!(ctx.failure_epoch(), 2);
                let ch2 = ctx.recv_init(&buf, 0, bytes, 0, 5);
                let r1 = ctx.start(&ch2);
                ctx.wait(&r1.all);
            }
        });
        let v = out.lock().clone();
        assert_eq!(
            v,
            vec![
                ("round0-revoked", false),
                ("handle-revoked", true),
                ("dead-start", true),
                ("round1-revoked", false),
            ]
        );
    }

    #[test]
    fn await_respawn_wakes_at_respawn_time() {
        use faultsim::FaultSchedule;
        let t = Arc::new(Mutex::new(0.0));
        let tt = Arc::clone(&t);
        let faults = FaultSchedule::kill_respawn(
            1,
            SimDuration::from_micros(100),
            SimDuration::from_micros(400),
        );
        run_world(cfg(1, 2).faults(faults), move |ctx| {
            if ctx.rank() == 0 {
                ctx.sim().delay(SimDuration::from_micros(200));
                assert!(!ctx.is_alive(1));
                ctx.await_respawn(1);
                *tt.lock() = ctx.wtime();
                assert!(ctx.is_alive(1));
                // Already-alive waits return immediately.
                ctx.await_respawn(1);
                ctx.await_all_alive();
            }
        });
        let secs = *t.lock();
        assert!(
            (secs - 500e-6).abs() < 1e-9,
            "respawn waiter wakes at kill+down_for = 500us: {secs}"
        );
    }

    #[test]
    fn kill_respawn_deterministic_across_runs() {
        use faultsim::FaultSchedule;
        let run = || {
            let faults = FaultSchedule::kill_respawn(
                3,
                SimDuration::from_micros(50),
                SimDuration::from_micros(200),
            );
            run_world(cfg(1, 6).faults(faults), move |ctx| {
                let m = ctx.machine();
                let bytes = 100_000u64;
                let n = ctx.size();
                let me = ctx.rank();
                let sbuf = m.alloc_host_untimed(ctx.node(), 0, bytes);
                let rbuf = m.alloc_host_untimed(ctx.node(), 0, bytes * n as u64);
                let _ = n;
                // Fault-tolerant round structure: the barrier keeps even a
                // dead rank's coroutine in lockstep (it parks on the same
                // release the survivors get), and each round exchanges only
                // among the ranks alive at the release instant.
                for round in 0..4u64 {
                    ctx.barrier();
                    let alive = ctx.alive_ranks();
                    if !alive.contains(&me) {
                        continue; // dead this round: skip the exchange
                    }
                    let mut reqs = Vec::new();
                    for &peer in &alive {
                        if peer == me {
                            continue;
                        }
                        let tag = round * 100;
                        reqs.push(ctx.isend(&sbuf, 0, bytes, peer, tag + me as u64));
                        reqs.push(ctx.irecv(
                            &rbuf,
                            peer as u64 * bytes,
                            bytes,
                            peer,
                            tag + peer as u64,
                        ));
                    }
                    ctx.wait_all(&reqs);
                }
            })
            .elapsed
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_world(cfg(2, 6), move |ctx| {
                let m = ctx.machine();
                let bytes = 1_000_000u64;
                let n = ctx.size();
                let me = ctx.rank();
                let sbuf = m.alloc_host_untimed(ctx.node(), 0, bytes);
                let rbuf = m.alloc_host_untimed(ctx.node(), 0, bytes * n as u64);
                let mut reqs = Vec::new();
                for peer in 0..n {
                    if peer == me {
                        continue;
                    }
                    reqs.push(ctx.isend(&sbuf, 0, bytes, peer, me as u64));
                    reqs.push(ctx.irecv(&rbuf, peer as u64 * bytes, bytes, peer, peer as u64));
                }
                ctx.wait_all(&reqs);
                ctx.barrier();
            })
            .elapsed
        };
        assert_eq!(run(), run());
    }
}
