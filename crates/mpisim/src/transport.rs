//! Message matching and the three transports: shared-memory (intra-node),
//! NIC (inter-node), and CUDA-aware (device buffers passed straight to MPI).

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use detsim::{Completion, Kernel, LinkId, SimDuration, SimTime};
use gpusim::{Buffer, GpuMachine, Placement};
use parking_lot::Mutex;

use crate::config::MpiCostModel;

/// A pending non-blocking operation. Wait on it via
/// [`RankCtx::wait`](crate::RankCtx::wait).
#[derive(Clone, Debug)]
pub struct Request(pub(crate) Completion);

impl Request {
    /// Whether the operation has completed.
    pub fn is_done(&self) -> bool {
        self.0.is_done()
    }

    /// The underlying completion (for mixing with stream events in
    /// `wait_any`-style polling).
    pub fn completion(&self) -> &Completion {
        &self.0
    }
}

type MatchKey = (usize, usize, u64); // (dst, src, tag)

struct PendingMsg {
    buf: Buffer,
    off: u64,
    len: u64,
    done: Completion,
    rank: usize,
    /// When the operation was posted (for match-latency metrics).
    posted: SimTime,
}

#[derive(Default)]
struct MatchQueue {
    sends: VecDeque<PendingMsg>,
    recvs: VecDeque<PendingMsg>,
}

#[derive(Default)]
struct ObjQueue {
    items: VecDeque<Box<dyn Any + Send>>,
    waiters: VecDeque<Completion>,
}

pub(crate) struct BarrierState {
    pub arrived: usize,
    pub release: Completion,
}

/// Shared state of the simulated MPI library.
pub(crate) struct MpiState {
    pub machine: GpuMachine,
    pub cfg: MpiCostModel,
    pub cuda_aware: bool,
    pub num_ranks: usize,
    pub ranks_per_node: usize,
    /// Per-rank shared-memory progress-engine link: all of a rank's
    /// intra-node host messages flow through it.
    pub shm_link: Vec<LinkId>,
    /// Per-rank trace track for MPI spans.
    pub rank_track: Vec<detsim::trace::TrackId>,
    queues: Mutex<HashMap<MatchKey, MatchQueue>>,
    objs: Mutex<HashMap<MatchKey, ObjQueue>>,
    pub barrier: Mutex<BarrierState>,
    /// Memoized deterministic setup artifacts shared across the world's
    /// ranks (see [`RankCtx::cached_setup`](crate::RankCtx::cached_setup)).
    pub(crate) setup_cache: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
}

impl MpiState {
    pub fn new(
        k: &mut Kernel,
        machine: GpuMachine,
        cfg: MpiCostModel,
        cuda_aware: bool,
        ranks_per_node: usize,
    ) -> Arc<MpiState> {
        assert!(ranks_per_node >= 1);
        let num_ranks = machine.num_nodes() * ranks_per_node;
        let mut shm_link = Vec::with_capacity(num_ranks);
        let mut rank_track = Vec::with_capacity(num_ranks);
        for r in 0..num_ranks {
            shm_link.push(k.add_link(format!("r{r}.shm"), cfg.shm_bandwidth, cfg.shm_latency));
            rank_track.push(k.trace.add_track(format!("rank{r} mpi")));
        }
        let release = k.completion();
        Arc::new(MpiState {
            machine,
            cfg,
            cuda_aware,
            num_ranks,
            ranks_per_node,
            shm_link,
            rank_track,
            queues: Mutex::new(HashMap::new()),
            objs: Mutex::new(HashMap::new()),
            barrier: Mutex::new(BarrierState {
                arrived: 0,
                release,
            }),
            setup_cache: Mutex::new(HashMap::new()),
        })
    }

    pub fn node_of_rank(&self, r: usize) -> usize {
        r / self.ranks_per_node
    }

    /// Post a non-blocking send. Matching (and the transfer) happens when
    /// the peer's receive is also posted.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI signature
    pub fn isend(
        &self,
        k: &mut Kernel,
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        buf: &Buffer,
        off: u64,
        len: u64,
    ) -> Request {
        assert!(off + len <= buf.len(), "isend region out of range");
        assert!(
            dst_rank < self.num_ranks,
            "isend to invalid rank {dst_rank}"
        );
        let done = k.completion();
        let msg = PendingMsg {
            buf: buf.clone(),
            off,
            len,
            done: done.clone(),
            rank: src_rank,
            posted: k.now(),
        };
        let matched = {
            let mut q = self.queues.lock();
            let entry = q.entry((dst_rank, src_rank, tag)).or_default();
            match entry.recvs.pop_front() {
                Some(recv) => Ok((msg, recv)),
                None => {
                    entry.sends.push_back(msg);
                    Err(())
                }
            }
        };
        if let Ok((send, recv)) = matched {
            self.record_match(k, "recv", recv.posted);
            self.start_transfer(k, send, recv);
        }
        Request(done)
    }

    /// Post a non-blocking receive.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI signature
    pub fn irecv(
        &self,
        k: &mut Kernel,
        dst_rank: usize,
        src_rank: usize,
        tag: u64,
        buf: &Buffer,
        off: u64,
        len: u64,
    ) -> Request {
        assert!(off + len <= buf.len(), "irecv region out of range");
        assert!(
            src_rank < self.num_ranks,
            "irecv from invalid rank {src_rank}"
        );
        let done = k.completion();
        let msg = PendingMsg {
            buf: buf.clone(),
            off,
            len,
            done: done.clone(),
            rank: dst_rank,
            posted: k.now(),
        };
        let matched = {
            let mut q = self.queues.lock();
            let entry = q.entry((dst_rank, src_rank, tag)).or_default();
            match entry.sends.pop_front() {
                Some(send) => Ok((send, msg)),
                None => {
                    entry.recvs.push_back(msg);
                    Err(())
                }
            }
        };
        if let Ok((send, recv)) = matched {
            self.record_match(k, "send", send.posted);
            self.start_transfer(k, send, recv);
        }
        Request(done)
    }

    /// Record how long the queued side of a newly matched pair sat waiting
    /// for its partner. `side` names the operation that was posted first.
    fn record_match(&self, k: &mut Kernel, side: &'static str, posted: SimTime) {
        if k.metrics.is_enabled() {
            let wait = k.now().since(posted).picos() as f64;
            k.metrics
                .observe("mpi", "match_wait_ps", &[("side", side)], wait);
        }
    }

    fn start_transfer(&self, k: &mut Kernel, send: PendingMsg, recv: PendingMsg) {
        assert!(
            recv.len >= send.len,
            "receive buffer region ({}) smaller than message ({})",
            recv.len,
            send.len
        );
        if k.metrics.is_enabled() {
            let protocol = if send.len > self.cfg.eager_threshold {
                "rendezvous"
            } else {
                "eager"
            };
            k.metrics
                .counter_add("mpi", "messages", &[("protocol", protocol)], 1);
            k.metrics
                .counter_add("mpi", "message_bytes", &[("protocol", protocol)], send.len);
        }
        let device_involved = send.buf.device().is_some() || recv.buf.device().is_some();
        if device_involved {
            assert!(
                self.cuda_aware,
                "device buffer passed to MPI but CUDA-aware support is disabled"
            );
            self.cuda_aware_transfer(k, send, recv);
        } else {
            self.host_transfer(k, send, recv);
        }
    }

    fn protocol_latency(&self, bytes: u64) -> SimDuration {
        if bytes > self.cfg.eager_threshold {
            self.cfg.rendezvous_latency
        } else {
            SimDuration::ZERO
        }
    }

    fn host_transfer(&self, k: &mut Kernel, send: PendingMsg, recv: PendingMsg) {
        let (Placement::Host(n1, s1), Placement::Host(n2, s2)) =
            (send.buf.placement(), recv.buf.placement())
        else {
            unreachable!("host_transfer with device buffers");
        };
        let fabric = self.machine.fabric();
        let path = if n1 == n2 {
            // Shared-memory transport: the sender's progress engine pumps
            // the bytes; cross-socket copies also ride the X-Bus.
            let mut p = vec![self.shm_link[send.rank]];
            p.extend(fabric.node_path(n1, fabric.node_spec().cpu(s1), fabric.node_spec().cpu(s2)));
            p
        } else {
            fabric.internode_host_path(n1, s1, n2, s2)
        };
        let label = if n1 == n2 { "MPI shm" } else { "MPI net" };
        if k.metrics.is_enabled() {
            let transport = if n1 == n2 { "shm" } else { "net" };
            k.metrics.counter_add(
                "mpi",
                "transport_bytes",
                &[("transport", transport)],
                send.len,
            );
        }
        self.flow_transfer(k, path, self.protocol_latency(send.len), send, recv, label);
    }

    fn flow_transfer(
        &self,
        k: &mut Kernel,
        path: Vec<LinkId>,
        extra_latency: SimDuration,
        send: PendingMsg,
        recv: PendingMsg,
        label: &'static str,
    ) {
        let bytes = send.len;
        let track = self.rank_track[send.rank];
        let start = k.now();
        k.schedule_in(extra_latency, move |k| {
            k.start_flow(&path, bytes, move |k| {
                recv.buf.copy_from(recv.off, &send.buf, send.off, bytes);
                if k.trace.is_enabled() {
                    k.trace
                        .record(track, format!("{label} {bytes}B"), "mpi", start, k.now());
                }
                k.complete(&send.done);
                k.complete(&recv.done);
            });
        });
    }

    /// CUDA-aware transfer: the MPI library moves device buffers itself.
    /// Models the pathology the paper profiles (§IV-D): the library runs its
    /// transfers through the *default* stream of each involved device (so
    /// concurrent CUDA-aware messages on one GPU serialize) and performs
    /// per-message synchronization/setup (`cuda_aware_overhead`).
    fn cuda_aware_transfer(&self, k: &mut Kernel, send: PendingMsg, recv: PendingMsg) {
        let fabric = self.machine.fabric();
        let spec = fabric.node_spec();
        let comp_of = |b: &Buffer| match b.placement() {
            Placement::Device(d) => (self.machine.node_of(d), spec.gpu(self.machine.local_of(d))),
            Placement::Host(n, s) => (n, spec.cpu(s)),
        };
        let (n1, c1) = comp_of(&send.buf);
        let (n2, c2) = comp_of(&recv.buf);
        let path = if n1 == n2 {
            fabric.node_path(n1, c1, c2)
        } else {
            fabric.internode_comp_path(n1, c1, n2, c2)
        };
        let overhead = self.cfg.cuda_aware_overhead + self.protocol_latency(send.len);
        let bytes = send.len;
        if k.metrics.is_enabled() {
            k.metrics.counter_add(
                "mpi",
                "transport_bytes",
                &[("transport", "cuda-aware")],
                bytes,
            );
        }
        let track = self.rank_track[send.rank];

        let landed = k.completion();
        // The transfer occupies the default stream of *every* involved
        // device until the data lands: the MPI library stages its transfers
        // through the default stream and synchronizes around them, so all
        // CUDA-aware messages touching one GPU — sends and receives alike —
        // serialize. This is the pathology the paper profiles in §IV-D and
        // the mechanism behind Fig. 12c's degradation at scale: off-node
        // transfers are slow (NIC shares), and holding the device hostage
        // for each one prevents any overlap.
        let src_dev = send.buf.device();
        let dst_dev = recv.buf.device().filter(|d| Some(*d) != send.buf.device());
        let primary = src_dev
            .or(recv.buf.device())
            .expect("cuda-aware without device");

        let machine = self.machine.clone();
        let fifo_primary = machine.stream_fifo(machine.default_stream(primary));
        let landed2 = landed.clone();
        k.fifo_submit(fifo_primary, move |k, token| {
            let start = k.now();
            let landed3 = landed2.clone();
            k.schedule_in(overhead, move |k| {
                k.start_flow(&path, bytes, move |k| {
                    recv.buf.copy_from(recv.off, &send.buf, send.off, bytes);
                    if k.trace.is_enabled() {
                        k.trace.record(
                            track,
                            format!("MPI cuda-aware {bytes}B"),
                            "mpi",
                            start,
                            k.now(),
                        );
                    }
                    k.complete(&send.done);
                    k.complete(&recv.done);
                    k.complete(&landed3);
                });
            });
            k.on_complete(&landed2.clone(), move |k| k.fifo_task_done(token));
        });
        if let Some(other) = dst_dev {
            let fifo_other = self.machine.stream_fifo(self.machine.default_stream(other));
            k.fifo_submit(fifo_other, move |k, token| {
                k.on_complete(&landed, move |k| k.fifo_task_done(token));
            });
        }
    }

    // ----- out-of-band typed messages (setup metadata, IPC handles) -------

    /// Send a typed value to `(dst, tag)`. Delivery is charged
    /// `obj_latency`; payloads are not byte-serialized (they model small
    /// setup messages whose transfer time is latency-dominated).
    pub fn send_obj(
        self: &Arc<Self>,
        k: &mut Kernel,
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        obj: Box<dyn Any + Send>,
    ) {
        let key = (dst_rank, src_rank, tag);
        let state = Arc::clone(self);
        k.schedule_in(self.cfg.obj_latency, move |k| {
            let mut q = state.objs.lock();
            let entry = q.entry(key).or_default();
            entry.items.push_back(obj);
            if let Some(w) = entry.waiters.pop_front() {
                drop(q);
                k.complete(&w);
            }
        });
    }

    /// Take the next typed value from `(src, tag)`, if one has arrived.
    /// Otherwise returns a completion to wait on before retrying.
    pub fn try_recv_obj(
        &self,
        k: &mut Kernel,
        dst_rank: usize,
        src_rank: usize,
        tag: u64,
    ) -> Result<Box<dyn Any + Send>, Completion> {
        let mut q = self.objs.lock();
        let entry = q.entry((dst_rank, src_rank, tag)).or_default();
        match entry.items.pop_front() {
            Some(obj) => Ok(obj),
            None => {
                let c = k.completion();
                entry.waiters.push_back(c.clone());
                Err(c)
            }
        }
    }
}
