//! Message matching and the three transports: shared-memory (intra-node),
//! NIC (inter-node), and CUDA-aware (device buffers passed straight to MPI).

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use detsim::{Completion, Kernel, LinkId, SimDuration, SimTime};
use faultsim::{FaultAction, FaultSchedule};
use gpusim::{Buffer, GpuMachine, Placement};
use parking_lot::Mutex;

use crate::config::MpiCostModel;

/// A pending non-blocking operation. Wait on it via
/// [`RankCtx::wait`](crate::RankCtx::wait).
#[derive(Clone, Debug)]
pub struct Request {
    pub(crate) done: Completion,
    /// Set when the operation resolved as *revoked* (ULFM-style): one of
    /// its endpoints died while the operation was still pending. A revoked
    /// request is complete (waits return immediately) but moved no bytes.
    pub(crate) revoked: Arc<AtomicBool>,
}

impl Request {
    pub(crate) fn new(done: Completion) -> Request {
        Request {
            done,
            revoked: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether the operation has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_done()
    }

    /// Whether the operation resolved as revoked: an endpoint rank died
    /// while it was pending, so it completed without transferring data
    /// (see `docs/RESILIENCE.md` for the shrink-or-respawn contract).
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Relaxed)
    }

    /// The underlying completion (for mixing with stream events in
    /// `wait_any`-style polling).
    pub fn completion(&self) -> &Completion {
        &self.done
    }
}

type MatchKey = (usize, usize, u64); // (dst, src, tag)

/// Which family of setup-once channel semantics a [`Channel`] carries
/// (`docs/TRANSPORTS.md`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChanKind {
    /// `MPI_Send_init`/`MPI_Recv_init`: the whole message flies on each
    /// `start`, but matching and protocol negotiation were paid at init.
    Persistent,
    /// `MPI_Psend_init`/`MPI_Precv_init`: the message is split into
    /// partitions that fly individually as the sender marks them ready.
    Partitioned,
}

impl ChanKind {
    fn label(self) -> &'static str {
        match self {
            ChanKind::Persistent => "persistent",
            ChanKind::Partitioned => "partitioned",
        }
    }
}

/// Which end of a channel a handle controls.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChanSide {
    /// The sending end (`send_init`/`psend_init`).
    Send,
    /// The receiving end (`recv_init`/`precv_init`).
    Recv,
}

/// Handle to one end of a persistent or partitioned channel, created once
/// at setup by [`RankCtx::send_init`](crate::RankCtx::send_init) and
/// friends, then driven every iteration with
/// [`RankCtx::start`](crate::RankCtx::start) (and, for partitioned sends,
/// [`RankCtx::pready`](crate::RankCtx::pready)).
#[derive(Clone, Debug)]
pub struct Channel {
    pub(crate) id: usize,
    pub(crate) kind: ChanKind,
    pub(crate) side: ChanSide,
    pub(crate) parts: usize,
}

impl Channel {
    /// Number of partitions (1 for persistent channels).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The channel family.
    pub fn kind(&self) -> ChanKind {
        self.kind
    }
}

/// One round of a channel, returned by
/// [`RankCtx::start`](crate::RankCtx::start): wait on [`Self::all`] for the
/// whole round; poll [`Self::parts`] for per-partition arrival
/// (`MPI_Parrived`).
pub struct ChannelRound {
    /// Completes when every partition of this side's round has landed.
    pub all: Request,
    /// Per-partition completions, in partition order.
    pub parts: Vec<Completion>,
}

/// One registered end of a channel: the buffer region pinned at init time.
struct ChanEnd {
    buf: Buffer,
    off: u64,
    len: u64,
    rank: usize,
}

/// Per-round state: which sides have started, which partitions are ready,
/// and the completions each side's `start` handed out.
struct ChannelRoundState {
    send_parts: Option<Vec<Completion>>,
    recv_parts: Option<Vec<Completion>>,
    /// Revocation flags handed out with each side's round requests, so a
    /// kill can mark in-flight rounds revoked.
    send_flag: Option<Arc<AtomicBool>>,
    recv_flag: Option<Arc<AtomicBool>>,
    ready: Vec<bool>,
    launched: Vec<bool>,
    remaining: usize,
    /// When the earlier side started (match-wait metrics).
    first_started: SimTime,
}

struct ChannelState {
    kind: ChanKind,
    parts: usize,
    send: Option<ChanEnd>,
    recv: Option<ChanEnd>,
    /// Completed rounds. Round 0 pays the protocol handshake
    /// (rendezvous); later rounds reuse the negotiated match.
    rounds_done: u64,
    cur: Option<ChannelRoundState>,
    /// A rank death revokes the communicator's channels (ULFM
    /// `MPI_Comm_revoke` semantics): every later `start` on an old handle
    /// completes immediately as revoked. Survivors re-init fresh channels
    /// under the same keys (the index entry is cleared at kill time).
    revoked: bool,
}

struct PendingMsg {
    buf: Buffer,
    off: u64,
    len: u64,
    done: Completion,
    revoked: Arc<AtomicBool>,
    rank: usize,
    /// When the operation was posted (for match-latency metrics).
    posted: SimTime,
}

#[derive(Default)]
struct MatchQueue {
    sends: VecDeque<PendingMsg>,
    recvs: VecDeque<PendingMsg>,
}

#[derive(Default)]
struct ObjQueue {
    items: VecDeque<Box<dyn Any + Send>>,
    waiters: VecDeque<Completion>,
}

pub(crate) struct BarrierState {
    /// Which ranks have arrived in the current round.
    pub arrived: Vec<bool>,
    /// How many *alive* ranks have arrived. The barrier releases when this
    /// reaches the alive count — a shrunken world's barrier waits only for
    /// its survivors.
    pub alive_arrived: usize,
    pub release: Completion,
}

/// Rank-lifecycle state: who is alive, how often the membership changed,
/// and who is parked waiting for a membership transition.
pub(crate) struct LifeState {
    alive: Vec<bool>,
    dead: usize,
    /// Bumped on every kill or respawn — the communicator epoch. Cached
    /// plans or channels built under an older epoch are suspect.
    epoch: u64,
    /// `(rank, completion)` pairs released when `rank` respawns.
    respawn_waiters: Vec<(usize, Completion)>,
    /// Completions released when every rank is alive again.
    all_alive_waiters: Vec<Completion>,
}

/// Shared state of the simulated MPI library.
pub(crate) struct MpiState {
    pub machine: GpuMachine,
    pub cfg: MpiCostModel,
    pub cuda_aware: bool,
    /// Whether the simulated stack implements persistent requests.
    pub persistent: bool,
    /// Whether the simulated stack implements partitioned communication.
    pub partitioned: bool,
    pub num_ranks: usize,
    pub ranks_per_node: usize,
    /// Per-rank shared-memory progress-engine link: all of a rank's
    /// intra-node host messages flow through it.
    pub shm_link: Vec<LinkId>,
    /// Per-rank trace track for MPI spans.
    pub rank_track: Vec<detsim::trace::TrackId>,
    queues: Mutex<HashMap<MatchKey, MatchQueue>>,
    /// Persistent/partitioned channels: both ends register under the same
    /// `(dst, src, tag)` key at init time; the index maps it to a slot in
    /// `channels`.
    chan_index: Mutex<HashMap<MatchKey, usize>>,
    channels: Mutex<Vec<Arc<Mutex<ChannelState>>>>,
    objs: Mutex<HashMap<MatchKey, ObjQueue>>,
    pub barrier: Mutex<BarrierState>,
    life: Mutex<LifeState>,
    /// Memoized deterministic setup artifacts shared across the world's
    /// ranks (see [`RankCtx::cached_setup`](crate::RankCtx::cached_setup)).
    pub(crate) setup_cache: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
}

impl MpiState {
    pub fn new(
        k: &mut Kernel,
        machine: GpuMachine,
        cfg: MpiCostModel,
        cuda_aware: bool,
        persistent: bool,
        partitioned: bool,
        ranks_per_node: usize,
    ) -> Arc<MpiState> {
        assert!(ranks_per_node >= 1);
        let num_ranks = machine.num_nodes() * ranks_per_node;
        let mut shm_link = Vec::with_capacity(num_ranks);
        let mut rank_track = Vec::with_capacity(num_ranks);
        for r in 0..num_ranks {
            shm_link.push(k.add_link(format!("r{r}.shm"), cfg.shm_bandwidth, cfg.shm_latency));
            rank_track.push(k.trace.add_track(format!("rank{r} mpi")));
        }
        let release = k.completion();
        Arc::new(MpiState {
            machine,
            cfg,
            cuda_aware,
            persistent,
            partitioned,
            num_ranks,
            ranks_per_node,
            shm_link,
            rank_track,
            queues: Mutex::new(HashMap::new()),
            chan_index: Mutex::new(HashMap::new()),
            channels: Mutex::new(Vec::new()),
            objs: Mutex::new(HashMap::new()),
            barrier: Mutex::new(BarrierState {
                arrived: vec![false; num_ranks],
                alive_arrived: 0,
                release,
            }),
            life: Mutex::new(LifeState {
                alive: vec![true; num_ranks],
                dead: 0,
                epoch: 0,
                respawn_waiters: Vec::new(),
                all_alive_waiters: Vec::new(),
            }),
            setup_cache: Mutex::new(HashMap::new()),
        })
    }

    pub fn node_of_rank(&self, r: usize) -> usize {
        r / self.ranks_per_node
    }

    /// Post a non-blocking send. Matching (and the transfer) happens when
    /// the peer's receive is also posted.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI signature
    pub fn isend(
        &self,
        k: &mut Kernel,
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        buf: &Buffer,
        off: u64,
        len: u64,
    ) -> Request {
        assert!(off + len <= buf.len(), "isend region out of range");
        assert!(
            dst_rank < self.num_ranks,
            "isend to invalid rank {dst_rank}"
        );
        if let Some(req) = self.revoked_if_dead(k, src_rank, dst_rank) {
            return req;
        }
        let done = k.completion();
        let req = Request::new(done.clone());
        let msg = PendingMsg {
            buf: buf.clone(),
            off,
            len,
            done,
            revoked: Arc::clone(&req.revoked),
            rank: src_rank,
            posted: k.now(),
        };
        let matched = {
            let mut q = self.queues.lock();
            let entry = q.entry((dst_rank, src_rank, tag)).or_default();
            match entry.recvs.pop_front() {
                Some(recv) => Ok((msg, recv)),
                None => {
                    entry.sends.push_back(msg);
                    Err(())
                }
            }
        };
        if let Ok((send, recv)) = matched {
            self.record_match(k, "recv", recv.posted);
            self.start_transfer(k, send, recv);
        }
        req
    }

    /// If either endpoint of an operation is currently dead, resolve it as
    /// revoked on the spot: complete, no bytes, `is_revoked()` set. On the
    /// (fault-free) fast path this is two boolean reads.
    fn revoked_if_dead(&self, k: &mut Kernel, a: usize, b: usize) -> Option<Request> {
        let dead = {
            let life = self.life.lock();
            !life.alive[a] || !life.alive[b]
        };
        if !dead {
            return None;
        }
        let done = k.completion();
        k.complete(&done);
        if k.metrics.is_enabled() {
            k.metrics
                .counter_add("mpisim", "revoked_ops", &[("when", "posted")], 1);
        }
        Some(Request {
            done,
            revoked: Arc::new(AtomicBool::new(true)),
        })
    }

    /// Post a non-blocking receive.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI signature
    pub fn irecv(
        &self,
        k: &mut Kernel,
        dst_rank: usize,
        src_rank: usize,
        tag: u64,
        buf: &Buffer,
        off: u64,
        len: u64,
    ) -> Request {
        assert!(off + len <= buf.len(), "irecv region out of range");
        assert!(
            src_rank < self.num_ranks,
            "irecv from invalid rank {src_rank}"
        );
        if let Some(req) = self.revoked_if_dead(k, dst_rank, src_rank) {
            return req;
        }
        let done = k.completion();
        let req = Request::new(done.clone());
        let msg = PendingMsg {
            buf: buf.clone(),
            off,
            len,
            done,
            revoked: Arc::clone(&req.revoked),
            rank: dst_rank,
            posted: k.now(),
        };
        let matched = {
            let mut q = self.queues.lock();
            let entry = q.entry((dst_rank, src_rank, tag)).or_default();
            match entry.sends.pop_front() {
                Some(send) => Ok((send, msg)),
                None => {
                    entry.recvs.push_back(msg);
                    Err(())
                }
            }
        };
        if let Ok((send, recv)) = matched {
            self.record_match(k, "send", send.posted);
            self.start_transfer(k, send, recv);
        }
        req
    }

    /// Record how long the queued side of a newly matched pair sat waiting
    /// for its partner. `side` names the operation that was posted first.
    fn record_match(&self, k: &mut Kernel, side: &'static str, posted: SimTime) {
        if k.metrics.is_enabled() {
            let wait = k.now().since(posted).picos() as f64;
            k.metrics
                .observe("mpi", "match_wait_ps", &[("side", side)], wait);
        }
    }

    fn start_transfer(&self, k: &mut Kernel, send: PendingMsg, recv: PendingMsg) {
        assert!(
            recv.len >= send.len,
            "receive buffer region ({}) smaller than message ({})",
            recv.len,
            send.len
        );
        if k.metrics.is_enabled() {
            let protocol = if send.len > self.cfg.eager_threshold {
                "rendezvous"
            } else {
                "eager"
            };
            k.metrics
                .counter_add("mpi", "messages", &[("protocol", protocol)], 1);
            k.metrics
                .counter_add("mpi", "message_bytes", &[("protocol", protocol)], send.len);
        }
        let device_involved = send.buf.device().is_some() || recv.buf.device().is_some();
        if device_involved {
            assert!(
                self.cuda_aware,
                "device buffer passed to MPI but CUDA-aware support is disabled"
            );
            self.cuda_aware_transfer(k, send, recv);
        } else {
            self.host_transfer(k, send, recv);
        }
    }

    fn protocol_latency(&self, bytes: u64) -> SimDuration {
        if bytes > self.cfg.eager_threshold {
            self.cfg.rendezvous_latency
        } else {
            SimDuration::ZERO
        }
    }

    fn host_transfer(&self, k: &mut Kernel, send: PendingMsg, recv: PendingMsg) {
        let (Placement::Host(n1, s1), Placement::Host(n2, s2)) =
            (send.buf.placement(), recv.buf.placement())
        else {
            unreachable!("host_transfer with device buffers");
        };
        let fabric = self.machine.fabric();
        let path = if n1 == n2 {
            // Shared-memory transport: the sender's progress engine pumps
            // the bytes; cross-socket copies also ride the X-Bus.
            let mut p = vec![self.shm_link[send.rank]];
            p.extend(fabric.node_path(n1, fabric.node_spec().cpu(s1), fabric.node_spec().cpu(s2)));
            p
        } else {
            fabric.internode_host_path(n1, s1, n2, s2)
        };
        let label = if n1 == n2 { "MPI shm" } else { "MPI net" };
        if k.metrics.is_enabled() {
            let transport = if n1 == n2 { "shm" } else { "net" };
            k.metrics.counter_add(
                "mpi",
                "transport_bytes",
                &[("transport", transport)],
                send.len,
            );
        }
        self.flow_transfer(k, path, self.protocol_latency(send.len), send, recv, label);
    }

    fn flow_transfer(
        &self,
        k: &mut Kernel,
        path: Vec<LinkId>,
        extra_latency: SimDuration,
        send: PendingMsg,
        recv: PendingMsg,
        label: &'static str,
    ) {
        let bytes = send.len;
        let track = self.rank_track[send.rank];
        let start = k.now();
        k.schedule_in(extra_latency, move |k| {
            k.start_flow(&path, bytes, move |k| {
                recv.buf.copy_from(recv.off, &send.buf, send.off, bytes);
                if k.trace.is_enabled() {
                    k.trace
                        .record(track, format!("{label} {bytes}B"), "mpi", start, k.now());
                }
                k.complete(&send.done);
                k.complete(&recv.done);
            });
        });
    }

    /// CUDA-aware transfer: the MPI library moves device buffers itself.
    /// Models the pathology the paper profiles (§IV-D): the library runs its
    /// transfers through the *default* stream of each involved device (so
    /// concurrent CUDA-aware messages on one GPU serialize) and performs
    /// per-message synchronization/setup (`cuda_aware_overhead`).
    fn cuda_aware_transfer(&self, k: &mut Kernel, send: PendingMsg, recv: PendingMsg) {
        let fabric = self.machine.fabric();
        let spec = fabric.node_spec();
        let comp_of = |b: &Buffer| match b.placement() {
            Placement::Device(d) => (self.machine.node_of(d), spec.gpu(self.machine.local_of(d))),
            Placement::Host(n, s) => (n, spec.cpu(s)),
        };
        let (n1, c1) = comp_of(&send.buf);
        let (n2, c2) = comp_of(&recv.buf);
        let path = if n1 == n2 {
            fabric.node_path(n1, c1, c2)
        } else {
            fabric.internode_comp_path(n1, c1, n2, c2)
        };
        let overhead = self.cfg.cuda_aware_overhead + self.protocol_latency(send.len);
        let bytes = send.len;
        if k.metrics.is_enabled() {
            k.metrics.counter_add(
                "mpi",
                "transport_bytes",
                &[("transport", "cuda-aware")],
                bytes,
            );
        }
        let track = self.rank_track[send.rank];

        let landed = k.completion();
        // The transfer occupies the default stream of *every* involved
        // device until the data lands: the MPI library stages its transfers
        // through the default stream and synchronizes around them, so all
        // CUDA-aware messages touching one GPU — sends and receives alike —
        // serialize. This is the pathology the paper profiles in §IV-D and
        // the mechanism behind Fig. 12c's degradation at scale: off-node
        // transfers are slow (NIC shares), and holding the device hostage
        // for each one prevents any overlap.
        let src_dev = send.buf.device();
        let dst_dev = recv.buf.device().filter(|d| Some(*d) != send.buf.device());
        let primary = src_dev
            .or(recv.buf.device())
            .expect("cuda-aware without device");

        let machine = self.machine.clone();
        let fifo_primary = machine.stream_fifo(machine.default_stream(primary));
        let landed2 = landed.clone();
        k.fifo_submit(fifo_primary, move |k, token| {
            let start = k.now();
            let landed3 = landed2.clone();
            k.schedule_in(overhead, move |k| {
                k.start_flow(&path, bytes, move |k| {
                    recv.buf.copy_from(recv.off, &send.buf, send.off, bytes);
                    if k.trace.is_enabled() {
                        k.trace.record(
                            track,
                            format!("MPI cuda-aware {bytes}B"),
                            "mpi",
                            start,
                            k.now(),
                        );
                    }
                    k.complete(&send.done);
                    k.complete(&recv.done);
                    k.complete(&landed3);
                });
            });
            k.on_complete(&landed2.clone(), move |k| k.fifo_task_done(token));
        });
        if let Some(other) = dst_dev {
            let fifo_other = self.machine.stream_fifo(self.machine.default_stream(other));
            k.fifo_submit(fifo_other, move |k, token| {
                k.on_complete(&landed, move |k| k.fifo_task_done(token));
            });
        }
    }

    // ----- persistent / partitioned channels ------------------------------

    /// Register one end of a persistent or partitioned channel. Both ends
    /// must register under the same `(dst, src, tag)` key (in any order)
    /// before either side starts a round.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI *_init signature
    pub fn channel_init(
        &self,
        k: &mut Kernel,
        kind: ChanKind,
        side: ChanSide,
        my_rank: usize,
        peer: usize,
        tag: u64,
        buf: &Buffer,
        off: u64,
        len: u64,
        parts: usize,
    ) -> Channel {
        match kind {
            ChanKind::Persistent => assert!(
                self.persistent,
                "persistent channels used but WorldConfig::mpi_persistent is off"
            ),
            ChanKind::Partitioned => assert!(
                self.partitioned,
                "partitioned channels used but WorldConfig::mpi_partitioned is off"
            ),
        }
        assert!(off + len <= buf.len(), "channel region out of range");
        assert!(peer < self.num_ranks, "channel peer rank out of range");
        assert!(
            buf.device().is_none(),
            "persistent/partitioned channels require host buffers \
             (CUDA-aware persistent requests are not modeled)"
        );
        assert!(
            parts >= 1 && parts as u64 <= len.max(1),
            "bad partition count"
        );
        let key = match side {
            ChanSide::Send => (peer, my_rank, tag),
            ChanSide::Recv => (my_rank, peer, tag),
        };
        let end = ChanEnd {
            buf: buf.clone(),
            off,
            len,
            rank: my_rank,
        };
        let mut index = self.chan_index.lock();
        let mut channels = self.channels.lock();
        let id = *index.entry(key).or_insert_with(|| {
            channels.push(Arc::new(Mutex::new(ChannelState {
                kind,
                parts,
                send: None,
                recv: None,
                rounds_done: 0,
                cur: None,
                revoked: false,
            })));
            channels.len() - 1
        });
        {
            let mut st = channels[id].lock();
            assert_eq!(st.kind, kind, "channel ends disagree on kind (key {key:?})");
            assert_eq!(
                st.parts, parts,
                "channel ends disagree on partition count (key {key:?})"
            );
            if let (ChanSide::Recv, Some(send)) = (side, &st.send) {
                assert!(len >= send.len, "channel receive region smaller than send");
            }
            if let (ChanSide::Send, Some(recv)) = (side, &st.recv) {
                assert!(recv.len >= len, "channel receive region smaller than send");
            }
            let slot = match side {
                ChanSide::Send => &mut st.send,
                ChanSide::Recv => &mut st.recv,
            };
            assert!(
                slot.is_none(),
                "duplicate channel init for the same end (key {key:?})"
            );
            *slot = Some(end);
        }
        if k.metrics.is_enabled() {
            let s = match side {
                ChanSide::Send => "send",
                ChanSide::Recv => "recv",
            };
            k.metrics.counter_add(
                "mpi",
                "channel_ends",
                &[("kind", kind.label()), ("side", s)],
                1,
            );
        }
        Channel {
            id,
            kind,
            side,
            parts,
        }
    }

    /// Start one round on a channel end. Returns the per-partition
    /// completions for this side (persistent channels have exactly one)
    /// plus the round's revocation flag. Partitions of a persistent
    /// channel — and none of a partitioned send until
    /// [`Self::channel_pready`] — begin flying as soon as both sides of
    /// the round have started. On a revoked channel the round resolves
    /// immediately: all completions done, flag set, no bytes.
    pub fn channel_start(
        &self,
        k: &mut Kernel,
        ch: &Channel,
    ) -> (Vec<Completion>, Arc<AtomicBool>) {
        let state = Arc::clone(&self.channels.lock()[ch.id]);
        let mut st = state.lock();
        assert!(
            st.send.is_some() && st.recv.is_some(),
            "channel started before both ends were initialized"
        );
        if st.revoked {
            let mine: Vec<Completion> = (0..st.parts).map(|_| k.completion()).collect();
            drop(st);
            for c in &mine {
                k.complete(c);
            }
            if k.metrics.is_enabled() {
                k.metrics
                    .counter_add("mpisim", "revoked_ops", &[("when", "channel-start")], 1);
            }
            return (mine, Arc::new(AtomicBool::new(true)));
        }
        let parts = st.parts;
        let round = st.cur.get_or_insert_with(|| ChannelRoundState {
            send_parts: None,
            recv_parts: None,
            send_flag: None,
            recv_flag: None,
            ready: vec![false; parts],
            launched: vec![false; parts],
            remaining: parts,
            first_started: k.now(),
        });
        let mine: Vec<Completion> = (0..parts).map(|_| k.completion()).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let (slot, flag_slot, other_started, waited_side) = match ch.side {
            ChanSide::Send => (
                &mut round.send_parts,
                &mut round.send_flag,
                round.recv_parts.is_some(),
                "recv",
            ),
            ChanSide::Recv => (
                &mut round.recv_parts,
                &mut round.recv_flag,
                round.send_parts.is_some(),
                "send",
            ),
        };
        assert!(slot.is_none(), "channel end started twice in one round");
        *slot = Some(mine.clone());
        *flag_slot = Some(Arc::clone(&flag));
        if ch.side == ChanSide::Send && ch.kind == ChanKind::Persistent {
            // The whole persistent message is implicitly ready at start.
            round.ready.iter_mut().for_each(|r| *r = true);
        }
        if k.metrics.is_enabled() {
            let s = match ch.side {
                ChanSide::Send => "send",
                ChanSide::Recv => "recv",
            };
            k.metrics.counter_add(
                "mpi",
                "channel_starts",
                &[("kind", ch.kind.label()), ("side", s)],
                1,
            );
            if ch.side == ChanSide::Send {
                let label = ch.kind.label();
                let len = st.send.as_ref().unwrap().len;
                k.metrics
                    .counter_add("mpi", "messages", &[("protocol", label)], 1);
                k.metrics
                    .counter_add("mpi", "message_bytes", &[("protocol", label)], len);
            }
            if other_started {
                let waited = k
                    .now()
                    .since(st.cur.as_ref().unwrap().first_started)
                    .picos() as f64;
                k.metrics
                    .observe("mpi", "match_wait_ps", &[("side", waited_side)], waited);
            }
        }
        self.channel_try_launch(k, &state, &mut st);
        (mine, flag)
    }

    /// `MPI_Pready`: mark one partition of a partitioned send ready. Its
    /// bytes begin flying immediately if the receiver's round has started.
    pub fn channel_pready(&self, k: &mut Kernel, ch: &Channel, part: usize) {
        assert_eq!(ch.side, ChanSide::Send, "pready on a receive channel");
        assert_eq!(
            ch.kind,
            ChanKind::Partitioned,
            "pready on a persistent channel"
        );
        assert!(part < ch.parts, "partition index out of range");
        let state = Arc::clone(&self.channels.lock()[ch.id]);
        let mut st = state.lock();
        if st.revoked {
            // The round already resolved as revoked; readiness is moot.
            return;
        }
        let round = st
            .cur
            .as_mut()
            .expect("pready before the send side started the round");
        assert!(
            round.send_parts.is_some(),
            "pready before the send side started the round"
        );
        assert!(!round.ready[part], "partition marked ready twice");
        round.ready[part] = true;
        if k.metrics.is_enabled() {
            k.metrics.counter_add("mpi", "partition_ready", &[], 1);
        }
        self.channel_try_launch(k, &state, &mut st);
    }

    /// Launch every partition that is ready and unlaunched, provided both
    /// sides of the round have started. Round 0 of a channel additionally
    /// pays the protocol handshake latency (rendezvous for large messages);
    /// later rounds reuse the negotiated match — the persistent win.
    fn channel_try_launch(
        &self,
        k: &mut Kernel,
        state: &Arc<Mutex<ChannelState>>,
        st: &mut ChannelState,
    ) {
        let Some(round) = st.cur.as_mut() else {
            return;
        };
        let (Some(send_parts), Some(recv_parts)) = (&round.send_parts, &round.recv_parts) else {
            return;
        };
        let send = st.send.as_ref().unwrap();
        let recv = st.recv.as_ref().unwrap();
        let (Placement::Host(n1, s1), Placement::Host(n2, s2)) =
            (send.buf.placement(), recv.buf.placement())
        else {
            unreachable!("channel ends are asserted host-resident at init");
        };
        let fabric = self.machine.fabric();
        let path: Vec<LinkId> = if n1 == n2 {
            let mut p = vec![self.shm_link[send.rank]];
            p.extend(fabric.node_path(n1, fabric.node_spec().cpu(s1), fabric.node_spec().cpu(s2)));
            p
        } else {
            fabric.internode_host_path(n1, s1, n2, s2)
        };
        let transport = if n1 == n2 { "shm" } else { "net" };
        let label: &'static str = match (st.kind, n1 == n2) {
            (ChanKind::Persistent, true) => "MPI persistent shm",
            (ChanKind::Persistent, false) => "MPI persistent net",
            (ChanKind::Partitioned, true) => "MPI partitioned shm",
            (ChanKind::Partitioned, false) => "MPI partitioned net",
        };
        let extra = if st.rounds_done == 0 {
            self.protocol_latency(send.len)
        } else {
            SimDuration::ZERO
        };
        let chunk = send.len.div_ceil(st.parts as u64);
        let track = self.rank_track[send.rank];
        for part in 0..st.parts {
            if !round.ready[part] || round.launched[part] {
                continue;
            }
            round.launched[part] = true;
            let rel = part as u64 * chunk;
            let bytes = chunk.min(send.len - rel);
            if k.metrics.is_enabled() {
                k.metrics
                    .counter_add("mpi", "transport_bytes", &[("transport", transport)], bytes);
            }
            let send_done = send_parts[part].clone();
            let recv_done = recv_parts[part].clone();
            let sbuf = send.buf.clone();
            let rbuf = recv.buf.clone();
            let (soff, roff) = (send.off + rel, recv.off + rel);
            let chan = Arc::clone(state);
            let path = path.clone();
            let start = k.now();
            k.schedule_in(extra, move |k| {
                k.start_flow(&path, bytes, move |k| {
                    rbuf.copy_from(roff, &sbuf, soff, bytes);
                    if k.trace.is_enabled() {
                        k.trace
                            .record(track, format!("{label} {bytes}B"), "mpi", start, k.now());
                    }
                    k.complete(&send_done);
                    k.complete(&recv_done);
                    let mut st = chan.lock();
                    // A kill may have revoked the round out from under an
                    // in-flight partition; the late finish is then a no-op.
                    if let Some(r) = st.cur.as_mut() {
                        r.remaining -= 1;
                        if r.remaining == 0 {
                            st.cur = None;
                            st.rounds_done += 1;
                        }
                    }
                });
            });
        }
    }

    // ----- out-of-band typed messages (setup metadata, IPC handles) -------

    /// Send a typed value to `(dst, tag)`. Delivery is charged
    /// `obj_latency`; payloads are not byte-serialized (they model small
    /// setup messages whose transfer time is latency-dominated).
    pub fn send_obj(
        self: &Arc<Self>,
        k: &mut Kernel,
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        obj: Box<dyn Any + Send>,
    ) {
        let key = (dst_rank, src_rank, tag);
        let state = Arc::clone(self);
        k.schedule_in(self.cfg.obj_latency, move |k| {
            let mut q = state.objs.lock();
            let entry = q.entry(key).or_default();
            entry.items.push_back(obj);
            if let Some(w) = entry.waiters.pop_front() {
                drop(q);
                k.complete(&w);
            }
        });
    }

    /// Take the next typed value from `(src, tag)`, if one has arrived.
    /// Otherwise returns a completion to wait on before retrying.
    pub fn try_recv_obj(
        &self,
        k: &mut Kernel,
        dst_rank: usize,
        src_rank: usize,
        tag: u64,
    ) -> Result<Box<dyn Any + Send>, Completion> {
        let mut q = self.objs.lock();
        let entry = q.entry((dst_rank, src_rank, tag)).or_default();
        match entry.items.pop_front() {
            Some(obj) => Ok(obj),
            None => {
                let c = k.completion();
                entry.waiters.push_back(c.clone());
                Err(c)
            }
        }
    }

    // ----- rank lifecycle (kill / shrink / respawn) ------------------------

    /// Whether `rank` is currently alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.life.lock().alive[rank]
    }

    /// Number of currently alive ranks.
    pub fn alive_count(&self) -> usize {
        let life = self.life.lock();
        life.alive.len() - life.dead
    }

    /// The currently alive ranks, ascending — the membership of the
    /// shrunken world every survivor agrees on (reads of shared state at
    /// one virtual instant are identical across ranks).
    pub fn alive_ranks(&self) -> Vec<usize> {
        let life = self.life.lock();
        (0..life.alive.len()).filter(|&r| life.alive[r]).collect()
    }

    /// The communicator epoch: bumped on every kill and respawn. A
    /// fault-free world stays at epoch 0.
    pub fn failure_epoch(&self) -> u64 {
        self.life.lock().epoch
    }

    /// A completion released when `rank` respawns, or `None` if it is
    /// already alive.
    pub fn respawn_completion(&self, k: &mut Kernel, rank: usize) -> Option<Completion> {
        let mut life = self.life.lock();
        if life.alive[rank] {
            return None;
        }
        let c = k.completion();
        life.respawn_waiters.push((rank, c.clone()));
        Some(c)
    }

    /// A completion released when every rank is alive, or `None` if the
    /// world is already whole.
    pub fn all_alive_completion(&self, k: &mut Kernel) -> Option<Completion> {
        let mut life = self.life.lock();
        if life.dead == 0 {
            return None;
        }
        let c = k.completion();
        life.all_alive_waiters.push(c.clone());
        Some(c)
    }

    /// Whether a channel handle has been revoked by a rank death. A
    /// revoked handle never transfers again; both ends must `*_init` a
    /// fresh channel (the re-handshake).
    pub fn channel_revoked(&self, ch: &Channel) -> bool {
        self.channels.lock()[ch.id].lock().revoked
    }

    /// Install the rank kill/respawn events of `schedule` as kernel
    /// timers, offsets measured from `base`. Link/device events are *not*
    /// installed here — pair with [`FaultSchedule::install_at`], which
    /// skips rank events; together the two passes install every event
    /// exactly once. A schedule without rank events registers nothing.
    pub fn install_rank_faults(
        self: &Arc<Self>,
        k: &mut Kernel,
        schedule: &FaultSchedule,
        base: SimTime,
    ) {
        for (at, rank, action) in schedule.rank_events() {
            assert!(rank < self.num_ranks, "rank fault target out of range");
            let st = Arc::clone(self);
            match action {
                FaultAction::Kill => {
                    k.schedule_at(base + at, move |k| st.kill_rank(k, rank));
                }
                FaultAction::Respawn => {
                    k.schedule_at(base + at, move |k| st.respawn_rank(k, rank));
                }
                _ => unreachable!("rank events carry only Kill/Respawn (validated at build)"),
            }
        }
    }

    /// Kill `rank`: the ULFM-style failure transition.
    ///
    /// * Pending (unmatched) sends/receives with `rank` as either endpoint
    ///   resolve as revoked. Matched transfers already in flight land
    ///   normally — the bytes were on the wire.
    /// * Every channel is revoked, communicator-wide (`MPI_Comm_revoke`):
    ///   in-flight rounds resolve as revoked, old handles are dead, and
    ///   the channel index is cleared so survivors and a respawned rank
    ///   re-handshake fresh channels under the same keys.
    /// * Receivers parked on out-of-band objects from `rank` are woken
    ///   (they re-park; see `RankCtx::recv_obj` — resilient protocols must
    ///   not block on a dead peer's setup messages).
    /// * The barrier stops counting `rank`: a round waiting only on dead
    ///   ranks releases to its survivors — the shrunken-world agreement.
    ///
    /// Idempotent; killing a dead rank is a no-op.
    pub fn kill_rank(self: &Arc<Self>, k: &mut Kernel, rank: usize) {
        {
            let mut life = self.life.lock();
            if !life.alive[rank] {
                return;
            }
            life.alive[rank] = false;
            life.dead += 1;
            life.epoch += 1;
        }
        let mut to_complete: Vec<Completion> = Vec::new();
        let mut revoked_ops = 0u64;
        {
            let mut q = self.queues.lock();
            for (key, mq) in q.iter_mut() {
                if key.0 != rank && key.1 != rank {
                    continue;
                }
                for msg in mq.sends.drain(..).chain(mq.recvs.drain(..)) {
                    msg.revoked.store(true, Ordering::Relaxed);
                    to_complete.push(msg.done);
                    revoked_ops += 1;
                }
            }
        }
        {
            let index_len = {
                let mut index = self.chan_index.lock();
                let n = index.len();
                index.clear();
                n
            };
            let channels = self.channels.lock();
            for chan in channels.iter() {
                let mut st = chan.lock();
                if st.revoked {
                    continue;
                }
                st.revoked = true;
                if let Some(round) = st.cur.take() {
                    for flag in [&round.send_flag, &round.recv_flag].into_iter().flatten() {
                        flag.store(true, Ordering::Relaxed);
                    }
                    for parts in [round.send_parts, round.recv_parts].into_iter().flatten() {
                        to_complete.extend(parts);
                        revoked_ops += 1;
                    }
                }
            }
            let _ = index_len;
        }
        {
            let mut q = self.objs.lock();
            for (key, oq) in q.iter_mut() {
                if key.0 == rank || key.1 == rank {
                    to_complete.extend(oq.waiters.drain(..));
                }
            }
        }
        self.barrier_drop_rank(k, rank);
        for c in &to_complete {
            k.complete(c);
        }
        if k.metrics.is_enabled() {
            k.metrics
                .counter_add("mpisim", "rank_transitions", &[("action", "kill")], 1);
            if revoked_ops > 0 {
                k.metrics
                    .counter_add("mpisim", "revoked_ops", &[("when", "kill")], revoked_ops);
            }
        }
    }

    /// Respawn `rank`: it rejoins the world (epoch bumps again), waiters
    /// parked on its return — and, once the world is whole, on
    /// all-alive — are released, and the barrier counts it again.
    /// Idempotent; respawning a live rank is a no-op.
    pub fn respawn_rank(self: &Arc<Self>, k: &mut Kernel, rank: usize) {
        let mut wake: Vec<Completion> = Vec::new();
        {
            let mut life = self.life.lock();
            if life.alive[rank] {
                return;
            }
            life.alive[rank] = true;
            life.dead -= 1;
            life.epoch += 1;
            let mut i = 0;
            while i < life.respawn_waiters.len() {
                if life.respawn_waiters[i].0 == rank {
                    wake.push(life.respawn_waiters.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            if life.dead == 0 {
                wake.append(&mut life.all_alive_waiters);
            }
        }
        // If the rank is parked at the barrier (it arrived dead, or died
        // after arriving), its arrival counts again.
        {
            let mut b = self.barrier.lock();
            if b.arrived[rank] {
                b.alive_arrived += 1;
            }
        }
        self.barrier_maybe_release(k);
        for c in &wake {
            k.complete(c);
        }
        if k.metrics.is_enabled() {
            k.metrics
                .counter_add("mpisim", "rank_transitions", &[("action", "respawn")], 1);
        }
    }

    /// Barrier bookkeeping for a kill: the dead rank's arrival (if any)
    /// stops counting, and a round now waiting only on dead ranks releases
    /// to its survivors.
    fn barrier_drop_rank(&self, k: &mut Kernel, rank: usize) {
        {
            let mut b = self.barrier.lock();
            if b.arrived[rank] {
                b.alive_arrived -= 1;
            }
        }
        self.barrier_maybe_release(k);
    }

    /// One rank arrives at the barrier. Returns the round's release
    /// completion to park on.
    pub fn barrier_arrive(&self, k: &mut Kernel, rank: usize) -> Completion {
        let (me_alive, rel) = {
            let alive = self.is_alive(rank);
            let mut b = self.barrier.lock();
            debug_assert!(!b.arrived[rank], "rank re-entered barrier before release");
            b.arrived[rank] = true;
            if alive {
                b.alive_arrived += 1;
            }
            (alive, b.release.clone())
        };
        if me_alive {
            self.barrier_maybe_release(k);
        }
        rel
    }

    /// Release the barrier if every alive rank has arrived. The release
    /// delay models the `ceil(log2 n)` hops of a dissemination barrier,
    /// unchanged from the fault-free path.
    fn barrier_maybe_release(&self, k: &mut Kernel) {
        let alive_total = self.alive_count();
        let mut b = self.barrier.lock();
        if b.alive_arrived == 0 || b.alive_arrived != alive_total {
            return;
        }
        b.arrived.iter_mut().for_each(|f| *f = false);
        b.alive_arrived = 0;
        let rel = std::mem::replace(&mut b.release, k.completion());
        drop(b);
        let n = self.num_ranks;
        let hops = (n as f64).log2().ceil() as u64;
        let d = SimDuration::from_picos(self.cfg.barrier_hop.picos() * hops.max(1));
        k.schedule_in(d, move |k| k.complete(&rel));
    }
}
