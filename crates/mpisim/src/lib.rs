//! # mpisim — a simulated MPI library
//!
//! Ranks run as deterministic cooperative threads ([`run_world`] spawns one
//! per rank); each gets a [`RankCtx`] with the MPI subset the paper's
//! stencil library needs:
//!
//! * non-blocking point-to-point ([`RankCtx::isend`] / [`RankCtx::irecv`] /
//!   [`RankCtx::wait_all`]) with tag matching and rendezvous latency;
//! * three transports chosen by buffer placement:
//!   **shared-memory** (intra-node host buffers; pumped through the sending
//!   rank's progress engine — more ranks per node ⇒ more parallel pumping,
//!   the staged-exchange effect of paper Fig. 12a),
//!   **NIC** (inter-node host buffers; all of a node's traffic shares its
//!   injection/ejection bandwidth), and
//!   **CUDA-aware** (device buffers passed straight to MPI; reproduces the
//!   default-stream serialization and per-message synchronization the paper
//!   profiles in §IV-D);
//! * persistent requests ([`RankCtx::send_init`] / [`RankCtx::recv_init`] /
//!   [`RankCtx::start`]) and partitioned communication
//!   ([`RankCtx::psend_init`] / [`RankCtx::pready`]), gated behind
//!   [`WorldConfig::mpi_persistent`] / [`WorldConfig::mpi_partitioned`]
//!   (see `docs/TRANSPORTS.md`);
//! * `MPI_Barrier`, `MPI_Wtime`;
//! * a typed out-of-band channel for setup metadata and `cudaIpc` handles
//!   ([`RankCtx::send_obj`] / [`RankCtx::recv_obj`]).
//!
//! Enable [`WorldConfig::metrics`] to collect message/transport counters and
//! match-latency histograms in [`WorldReport::metrics`] (see
//! `docs/OBSERVABILITY.md`).
//!
//! ## Example: a two-rank ping
//!
//! ```
//! use mpisim::{run_world, WorldConfig};
//! use topo::summit::summit_cluster;
//!
//! let report = run_world(WorldConfig::new(summit_cluster(1), 2), |ctx| {
//!     let m = ctx.machine();
//!     if ctx.rank() == 0 {
//!         let buf = m.alloc_host_untimed(0, 0, 64);
//!         buf.write(0, &[42u8; 64]);
//!         ctx.send(&buf, 0, 64, 1, 7);
//!     } else {
//!         let buf = m.alloc_host_untimed(0, 1, 64);
//!         ctx.recv(&buf, 0, 64, 0, 7);
//!         let mut got = [0u8; 64];
//!         buf.read(0, &mut got);
//!         assert_eq!(got, [42u8; 64]);
//!     }
//! });
//! assert!(report.elapsed > detsim::SimDuration::ZERO);
//! ```

#![warn(missing_docs)]

mod config;
mod rank;
mod transport;
mod world;

pub use config::MpiCostModel;
pub use rank::RankCtx;
pub use transport::{ChanKind, ChanSide, Channel, ChannelRound, Request};
pub use world::{run_world, WorldConfig, WorldReport};
