//! # mpisim — a simulated MPI library
//!
//! Ranks run as deterministic cooperative threads ([`run_world`] spawns one
//! per rank); each gets a [`RankCtx`] with the MPI subset the paper's
//! stencil library needs:
//!
//! * non-blocking point-to-point ([`RankCtx::isend`] / [`RankCtx::irecv`] /
//!   [`RankCtx::wait_all`]) with tag matching and rendezvous latency;
//! * three transports chosen by buffer placement:
//!   **shared-memory** (intra-node host buffers; pumped through the sending
//!   rank's progress engine — more ranks per node ⇒ more parallel pumping,
//!   the staged-exchange effect of paper Fig. 12a),
//!   **NIC** (inter-node host buffers; all of a node's traffic shares its
//!   injection/ejection bandwidth), and
//!   **CUDA-aware** (device buffers passed straight to MPI; reproduces the
//!   default-stream serialization and per-message synchronization the paper
//!   profiles in §IV-D);
//! * `MPI_Barrier`, `MPI_Wtime`;
//! * a typed out-of-band channel for setup metadata and `cudaIpc` handles
//!   ([`RankCtx::send_obj`] / [`RankCtx::recv_obj`]).

#![warn(missing_docs)]

mod config;
mod rank;
mod transport;
mod world;

pub use config::MpiCostModel;
pub use rank::RankCtx;
pub use transport::Request;
pub use world::{run_world, WorldConfig, WorldReport};
