//! Cost-model constants for the simulated MPI library.

use detsim::SimDuration;

/// Fixed costs and rates of the simulated MPI implementation. Defaults model
/// IBM Spectrum MPI on Summit at the fidelity the paper's effects need.
#[derive(Clone, Debug)]
pub struct MpiCostModel {
    /// CPU time the calling thread spends in any MPI call
    /// (`MPI_Isend`/`MPI_Irecv` posting, matching).
    pub call_overhead: SimDuration,
    /// Extra handshake latency for messages above the eager threshold
    /// (rendezvous protocol round trip).
    pub rendezvous_latency: SimDuration,
    /// Messages at or below this size skip the rendezvous handshake.
    pub eager_threshold: u64,
    /// Bandwidth of one rank's shared-memory progress engine: intra-node
    /// host-to-host messages from a rank are pumped through its engine at
    /// this rate and contend with each other. This is what makes staged
    /// exchange improve as ranks-per-node grows (paper Fig. 12a).
    pub shm_bandwidth: f64,
    /// Latency of the shared-memory path.
    pub shm_latency: SimDuration,
    /// Latency of a typed out-of-band message (setup metadata, IPC handles).
    pub obj_latency: SimDuration,
    /// Per-hop latency of the barrier's reduction tree:
    /// `barrier cost = ceil(log2 n) * barrier_hop`.
    pub barrier_hop: SimDuration,
    /// Per-message overhead of a CUDA-aware transfer: the library's internal
    /// device synchronization and per-message IPC/pipelining setup (the
    /// paper observes `cudaDeviceSynchronize` calls and default-stream use).
    pub cuda_aware_overhead: SimDuration,
    /// CPU time of `MPI_Start` on a persistent or partitioned channel. The
    /// heart of the persistent win: the argument checking, matching, and
    /// protocol negotiation that `call_overhead` models were done once at
    /// `*_init` time, so each iteration's start is much cheaper.
    pub persistent_start_overhead: SimDuration,
    /// CPU time of `MPI_Pready`, marking one partition of a partitioned
    /// send ready to fly.
    pub partition_ready_overhead: SimDuration,
}

impl Default for MpiCostModel {
    fn default() -> Self {
        MpiCostModel {
            call_overhead: SimDuration::from_micros(1),
            rendezvous_latency: SimDuration::from_micros(3),
            eager_threshold: 8192,
            shm_bandwidth: 10e9,
            shm_latency: SimDuration::from_nanos(600),
            obj_latency: SimDuration::from_micros(2),
            barrier_hop: SimDuration::from_micros(3),
            cuda_aware_overhead: SimDuration::from_micros(12),
            persistent_start_overhead: SimDuration::from_nanos(200),
            partition_ready_overhead: SimDuration::from_nanos(150),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MpiCostModel::default();
        assert!(c.shm_bandwidth > 1e9);
        assert!(c.eager_threshold > 0);
        assert!(c.cuda_aware_overhead > c.call_overhead);
        assert!(
            c.persistent_start_overhead < c.call_overhead,
            "persistent start must amortize the per-call cost"
        );
        assert!(c.partition_ready_overhead <= c.persistent_start_overhead);
    }
}
