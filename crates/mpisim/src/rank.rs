//! The per-rank API: what a simulated MPI rank program sees.

use std::any::Any;
use std::sync::Arc;

use detsim::{Completion, SimCtx, SimTime};
use faultsim::FaultSchedule;
use gpusim::{Buffer, GpuMachine};

use crate::transport::{ChanKind, ChanSide, Channel, ChannelRound, MpiState, Request};

/// Handle given to each rank program: its identity, its GPUs, and the MPI
/// operations. Mirrors the subset of MPI + CUDA context the paper's library
/// uses.
pub struct RankCtx<'a> {
    pub(crate) sim: &'a SimCtx,
    pub(crate) st: Arc<MpiState>,
    pub(crate) rank: usize,
}

impl<'a> RankCtx<'a> {
    /// This rank's id in the world communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (total ranks).
    pub fn size(&self) -> usize {
        self.st.num_ranks
    }

    /// Node index this rank runs on.
    pub fn node(&self) -> usize {
        self.st.node_of_rank(self.rank)
    }

    /// Ranks co-located on each node.
    pub fn ranks_per_node(&self) -> usize {
        self.st.ranks_per_node
    }

    /// Whether the MPI library is CUDA-aware in this run.
    pub fn cuda_aware(&self) -> bool {
        self.st.cuda_aware
    }

    /// Whether the MPI library implements persistent requests
    /// (`send_init`/`recv_init`/`start`) in this run.
    pub fn mpi_persistent(&self) -> bool {
        self.st.persistent
    }

    /// Whether the MPI library implements partitioned communication
    /// (`psend_init`/`precv_init`/`pready`) in this run.
    pub fn mpi_partitioned(&self) -> bool {
        self.st.partitioned
    }

    /// Global device ids of the GPUs this rank controls (GPUs of its node
    /// split evenly among the node's ranks).
    pub fn gpus(&self) -> Vec<usize> {
        let gpn = self.st.machine.gpus_per_node();
        let rpn = self.st.ranks_per_node;
        assert!(
            gpn.is_multiple_of(rpn),
            "gpus per node ({gpn}) must divide evenly among ranks per node ({rpn})"
        );
        let per_rank = gpn / rpn;
        let node = self.node();
        let slot = self.rank % rpn;
        (0..per_rank)
            .map(|i| self.st.machine.device_at(node, slot * per_rank + i))
            .collect()
    }

    /// The simulated GPU machine.
    pub fn machine(&self) -> &GpuMachine {
        &self.st.machine
    }

    /// The underlying simulation context (delays, waits, kernel access).
    pub fn sim(&self) -> &SimCtx {
        self.sim
    }

    /// `MPI_Wtime`: virtual seconds since simulation start.
    pub fn wtime(&self) -> f64 {
        self.sim.now().as_secs_f64()
    }

    /// Memoize a deterministic setup computation across the world's ranks.
    ///
    /// Every rank of a world often derives the *same* pure function of the
    /// world's geometry during setup (partitions, placements, plan shapes).
    /// Under the coroutine runtime all ranks share one address space and one
    /// OS thread, so recomputing it per rank multiplies a milliseconds-scale
    /// computation by the world size for no semantic benefit. This helper
    /// runs `build` on the first rank to ask for `key` and hands every later
    /// caller the shared result.
    ///
    /// Correctness contract (the caller's obligations):
    ///
    /// * `build` must be **pure compute**: it must not perform simulation
    ///   operations (no delays, sends, waits — nothing that advances
    ///   virtual time or yields the run token). The cache lock is held
    ///   while it runs, and virtual time must not depend on which rank
    ///   happened to populate the cache.
    /// * Every rank using `key` must pass a `build` that would produce a
    ///   value-identical result, so sharing is unobservable.
    ///
    /// Panics if `key` was previously populated with a different type.
    ///
    /// ```no_run
    /// # fn partition_for(_w: usize) -> Vec<usize> { Vec::new() }
    /// # fn demo(ctx: &mpisim::RankCtx) {
    /// let part = ctx.cached_setup("my-lib/partition", || partition_for(ctx.size()));
    /// # }
    /// ```
    pub fn cached_setup<T, F>(&self, key: &str, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        let mut cache = self.st.setup_cache.lock();
        let entry = match cache.get(key) {
            Some(v) => Arc::clone(v),
            None => {
                let v: Arc<dyn Any + Send + Sync> = Arc::new(build());
                cache.insert(key.to_string(), Arc::clone(&v));
                v
            }
        };
        entry
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("cached_setup: type mismatch for key {key:?}"))
    }

    // ----- point-to-point ---------------------------------------------------

    /// `MPI_Isend`: post a non-blocking send of `buf[off..off+len]`.
    pub fn isend(&self, buf: &Buffer, off: u64, len: u64, dst: usize, tag: u64) -> Request {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim
            .with_kernel(|k| self.st.isend(k, self.rank, dst, tag, buf, off, len))
    }

    /// `MPI_Irecv`: post a non-blocking receive into `buf[off..off+len]`.
    pub fn irecv(&self, buf: &Buffer, off: u64, len: u64, src: usize, tag: u64) -> Request {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim
            .with_kernel(|k| self.st.irecv(k, self.rank, src, tag, buf, off, len))
    }

    /// `MPI_Wait`. Returns normally for revoked requests too — check
    /// [`Request::is_revoked`] when running under rank faults.
    pub fn wait(&self, req: &Request) {
        self.sim.wait(&req.done);
    }

    /// `MPI_Waitall`.
    pub fn wait_all(&self, reqs: &[Request]) {
        for r in reqs {
            self.wait(r);
        }
    }

    /// Wait until at least one of `completions` fires (drive state
    /// machines).
    pub fn wait_any_completion(&self, completions: &[Completion]) -> usize {
        self.sim.wait_any(completions)
    }

    /// Blocking send (Isend + Wait).
    pub fn send(&self, buf: &Buffer, off: u64, len: u64, dst: usize, tag: u64) {
        let r = self.isend(buf, off, len, dst, tag);
        self.wait(&r);
    }

    /// Blocking receive (Irecv + Wait).
    pub fn recv(&self, buf: &Buffer, off: u64, len: u64, src: usize, tag: u64) {
        let r = self.irecv(buf, off, len, src, tag);
        self.wait(&r);
    }

    // ----- persistent / partitioned channels --------------------------------

    /// `MPI_Send_init`: set up a persistent send of `buf[off..off+len]` to
    /// `(dst, tag)`. Pays full `call_overhead` once, here; each later
    /// [`Self::start`] pays only `persistent_start_overhead`.
    pub fn send_init(&self, buf: &Buffer, off: u64, len: u64, dst: usize, tag: u64) -> Channel {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim.with_kernel(|k| {
            self.st.channel_init(
                k,
                ChanKind::Persistent,
                ChanSide::Send,
                self.rank,
                dst,
                tag,
                buf,
                off,
                len,
                1,
            )
        })
    }

    /// `MPI_Recv_init`: set up a persistent receive into
    /// `buf[off..off+len]` from `(src, tag)`.
    pub fn recv_init(&self, buf: &Buffer, off: u64, len: u64, src: usize, tag: u64) -> Channel {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim.with_kernel(|k| {
            self.st.channel_init(
                k,
                ChanKind::Persistent,
                ChanSide::Recv,
                self.rank,
                src,
                tag,
                buf,
                off,
                len,
                1,
            )
        })
    }

    /// `MPI_Psend_init`: set up a partitioned send of `buf[off..off+len]`
    /// split into `parts` equal partitions, each released individually with
    /// [`Self::pready`].
    pub fn psend_init(
        &self,
        buf: &Buffer,
        off: u64,
        len: u64,
        dst: usize,
        tag: u64,
        parts: usize,
    ) -> Channel {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim.with_kernel(|k| {
            self.st.channel_init(
                k,
                ChanKind::Partitioned,
                ChanSide::Send,
                self.rank,
                dst,
                tag,
                buf,
                off,
                len,
                parts,
            )
        })
    }

    /// `MPI_Precv_init`: set up a partitioned receive into
    /// `buf[off..off+len]` with `parts` partitions (must equal the
    /// sender's).
    pub fn precv_init(
        &self,
        buf: &Buffer,
        off: u64,
        len: u64,
        src: usize,
        tag: u64,
        parts: usize,
    ) -> Channel {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim.with_kernel(|k| {
            self.st.channel_init(
                k,
                ChanKind::Partitioned,
                ChanSide::Recv,
                self.rank,
                src,
                tag,
                buf,
                off,
                len,
                parts,
            )
        })
    }

    /// `MPI_Start` on a channel end: begin one round. Persistent sends fly
    /// as soon as both sides have started; partitioned sends additionally
    /// wait for each partition's [`Self::pready`]. Wait on
    /// [`ChannelRound::all`] (or the per-partition
    /// [`ChannelRound::parts`]) before starting the next round on this end.
    pub fn start(&self, ch: &Channel) -> ChannelRound {
        self.sim.delay(self.st.cfg.persistent_start_overhead);
        let (parts, revoked) = self.sim.with_kernel(|k| self.st.channel_start(k, ch));
        let all = self.sim.with_kernel(|k| k.completion_all(&parts));
        ChannelRound {
            all: Request { done: all, revoked },
            parts,
        }
    }

    /// `MPI_Pready`: release partition `part` of a started partitioned
    /// send. Its bytes begin flying immediately (if the receiver's round
    /// has started), overlapping with the packing of later partitions.
    pub fn pready(&self, ch: &Channel, part: usize) {
        self.sim.delay(self.st.cfg.partition_ready_overhead);
        self.sim
            .with_kernel(|k| self.st.channel_pready(k, ch, part));
    }

    // ----- typed out-of-band messages ---------------------------------------

    /// Send a small typed setup message (subdomain metadata, IPC handles) to
    /// `dst`. Models an eager small MPI message without byte serialization.
    pub fn send_obj<T: Any + Send>(&self, dst: usize, tag: u64, value: T) {
        self.sim.delay(self.st.cfg.call_overhead);
        self.sim
            .with_kernel(|k| self.st.send_obj(k, self.rank, dst, tag, Box::new(value)));
    }

    /// Receive a typed setup message from `src`. Blocks until it arrives;
    /// panics if the arriving payload has a different type.
    pub fn recv_obj<T: Any + Send>(&self, src: usize, tag: u64) -> T {
        self.sim.delay(self.st.cfg.call_overhead);
        loop {
            let got = self
                .sim
                .with_kernel(|k| self.st.try_recv_obj(k, self.rank, src, tag));
            match got {
                Ok(obj) => {
                    return *obj
                        .downcast::<T>()
                        .unwrap_or_else(|_| panic!("recv_obj: unexpected payload type"));
                }
                Err(arrival) => self.sim.wait(&arrival),
            }
        }
    }

    // ----- rank lifecycle (shrink-or-respawn worlds) ------------------------

    /// Whether `rank` is currently alive (`MPIX_Comm_failure_ack`-style
    /// local knowledge — in the simulator, exact and globally agreed).
    pub fn is_alive(&self, rank: usize) -> bool {
        self.st.is_alive(rank)
    }

    /// Number of currently alive ranks.
    pub fn alive_count(&self) -> usize {
        self.st.alive_count()
    }

    /// The alive ranks in ascending order: the membership of the shrunken
    /// world (`MPIX_Comm_shrink` semantics). Every rank reading this at the
    /// same virtual instant sees the same membership.
    pub fn alive_ranks(&self) -> Vec<usize> {
        self.st.alive_ranks()
    }

    /// The communicator epoch: bumped on every kill and respawn. Zero for
    /// a fault-free world. Compare epochs to detect membership changes
    /// since a plan or channel set was built.
    pub fn failure_epoch(&self) -> u64 {
        self.st.failure_epoch()
    }

    /// Block until `rank` is alive. Returns immediately if it already is.
    pub fn await_respawn(&self, rank: usize) {
        let waiter = self
            .sim
            .with_kernel(|k| self.st.respawn_completion(k, rank));
        if let Some(c) = waiter {
            self.sim.wait(&c);
        }
    }

    /// Block until every rank of the world is alive. Returns immediately
    /// if the world is already whole.
    pub fn await_all_alive(&self) {
        let waiter = self.sim.with_kernel(|k| self.st.all_alive_completion(k));
        if let Some(c) = waiter {
            self.sim.wait(&c);
        }
    }

    /// Whether a channel handle was revoked by a rank death. Revoked
    /// handles never transfer again; re-init a fresh channel under the
    /// same key (the re-handshake).
    pub fn channel_revoked(&self, ch: &Channel) -> bool {
        self.st.channel_revoked(ch)
    }

    /// Install a fault schedule mid-run, offsets measured from `base`:
    /// link/device events via [`faultsim::FaultSchedule::install_at`] and
    /// rank kill/respawn events as communicator transitions. Call from
    /// exactly one rank (events are world-global); a schedule installed a
    /// second time would fire twice.
    pub fn install_faults_at(&self, schedule: &FaultSchedule, base: SimTime) {
        self.sim.with_kernel(|k| {
            schedule.install_at(k, &self.st.machine, base);
            self.st.install_rank_faults(k, schedule, base);
        });
    }

    // ----- collectives -------------------------------------------------------

    /// `MPI_Barrier` over the world communicator. Under rank faults the
    /// barrier counts only *alive* ranks: a round whose missing arrivals
    /// are all dead releases to its survivors (the shrunken-world
    /// agreement). The release delay still models `ceil(log2 n)`
    /// dissemination hops of the full world size, so a fault-free run is
    /// bit-identical to the pre-resilience barrier.
    pub fn barrier(&self) {
        self.sim.delay(self.st.cfg.call_overhead);
        if self.st.num_ranks == 1 {
            return;
        }
        let release = self
            .sim
            .with_kernel(|k| self.st.barrier_arrive(k, self.rank));
        self.sim.wait(&release);
    }

    /// Gather one typed value from every rank onto all ranks, in rank order.
    /// Convenience for small-scale setup exchanges (O(n) messages per rank —
    /// fine at setup time; not used on hot paths).
    pub fn all_gather_obj<T: Any + Send + Clone>(&self, tag: u64, value: T) -> Vec<T> {
        let n = self.st.num_ranks;
        for dst in 0..n {
            if dst != self.rank {
                self.send_obj(dst, tag, value.clone());
            }
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        out[self.rank] = Some(value);
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                *slot = Some(self.recv_obj::<T>(src, tag));
            }
        }
        out.into_iter().map(|v| v.expect("gathered")).collect()
    }
}
