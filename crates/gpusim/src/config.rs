//! Cost-model constants for the simulated CUDA runtime, and the data mode
//! switch.

use detsim::SimDuration;

/// Whether simulated buffers carry real bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DataMode {
    /// Buffers are backed by host memory and every copy/kernel really moves
    /// bytes — numerics are end-to-end verifiable. Use for tests, examples,
    /// and small benchmarks.
    #[default]
    Full,
    /// Buffers track only sizes; copies and kernels charge virtual time but
    /// move no data. Use for paper-scale benchmarks (750³ per GPU × 1536
    /// GPUs would need terabytes of backing otherwise).
    Virtual,
}

/// Fixed costs and rates of the simulated GPUs and driver. Defaults model a
/// Summit node (V100, CUDA 10.1) at the fidelity the paper's effects need.
#[derive(Clone, Debug)]
pub struct GpuCostModel {
    /// CPU time consumed by the issuing thread per CUDA API call
    /// (`cudaMemcpyAsync`, kernel launch, `cudaEventRecord`, …). The paper's
    /// Fig. 9 shows this issue time is substantial when one rank drives
    /// many GPUs.
    pub call_overhead: SimDuration,
    /// GPU-side latency from a kernel reaching the head of its stream to
    /// doing useful work.
    pub kernel_launch_latency: SimDuration,
    /// Fixed device-side latency per memcpy, on top of link latency.
    pub memcpy_latency: SimDuration,
    /// Effective memory bandwidth of pack/unpack kernels (strided reads,
    /// coalesced writes), bytes/second. All concurrent kernels on one GPU
    /// share this.
    pub pack_bandwidth: f64,
    /// One-time cost of `cudaIpcOpenMemHandle` (setup phase only).
    pub ipc_open_overhead: SimDuration,
    /// Cost of `cudaMalloc`/`cudaMallocHost` (setup phase only).
    pub alloc_overhead: SimDuration,
    /// Device memory capacity per GPU, bytes.
    pub device_mem_limit: u64,
}

impl Default for GpuCostModel {
    fn default() -> Self {
        GpuCostModel {
            call_overhead: SimDuration::from_micros(4),
            kernel_launch_latency: SimDuration::from_micros(4),
            memcpy_latency: SimDuration::from_micros(6),
            pack_bandwidth: 350e9,
            ipc_open_overhead: SimDuration::from_micros(100),
            alloc_overhead: SimDuration::from_micros(50),
            device_mem_limit: 16 << 30,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GpuCostModel::default();
        assert!(c.pack_bandwidth > 100e9);
        assert_eq!(c.device_mem_limit, 16 << 30);
        assert!(c.call_overhead.picos() > 0);
        assert_eq!(DataMode::default(), DataMode::Full);
    }
}
