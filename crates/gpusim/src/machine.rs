//! The simulated multi-GPU machine: device registry, memory allocation,
//! streams, and peer-access management.

use std::collections::HashSet;
use std::sync::Arc;

use detsim::{FifoId, Kernel, LinkId, SimCtx};
use parking_lot::Mutex;
use topo::{ClusterSpec, Fabric, NodeDiscovery};

use crate::buffer::{Buffer, Placement};
use crate::config::{DataMode, GpuCostModel};
use crate::error::GpuError;

/// Handle to a CUDA-like stream: an in-order queue of device operations.
/// Copyable; valid for the machine that created it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stream(pub(crate) usize);

pub(crate) struct StreamInfo {
    pub device: usize,
    pub fifo: FifoId,
    pub track: detsim::trace::TrackId,
}

struct DeviceState {
    /// Flow link modeling the device's kernel/memory engine: concurrent
    /// kernels share its (pack) bandwidth.
    engine: LinkId,
    allocated: Mutex<u64>,
    /// Runtime override of [`GpuCostModel::device_mem_limit`] for this
    /// device — the fault-injection hook for mid-run memory shrink (a
    /// device "coming back sick" with less usable HBM). `None` means the
    /// configured limit applies.
    mem_limit: Mutex<Option<u64>>,
}

pub(crate) struct MachineInner {
    pub fabric: Fabric,
    pub discovery: NodeDiscovery,
    pub cfg: GpuCostModel,
    pub mode: DataMode,
    devices: Vec<DeviceState>,
    pub(crate) streams: Mutex<Vec<StreamInfo>>,
    /// Stream-registry indices per device (default stream first), so
    /// per-device lookups don't scan the whole registry.
    streams_by_device: Mutex<Vec<Vec<usize>>>,
    peer_enabled: Mutex<HashSet<(usize, usize)>>,
}

/// The simulated machine: a cluster of multi-GPU nodes with CUDA-like
/// semantics. Cheaply cloneable handle; share it across simulated ranks.
#[derive(Clone)]
pub struct GpuMachine {
    pub(crate) inner: Arc<MachineInner>,
}

impl GpuMachine {
    /// Build the machine inside `kernel` from a cluster description.
    pub fn new(
        kernel: &mut Kernel,
        cluster: ClusterSpec,
        cfg: GpuCostModel,
        mode: DataMode,
    ) -> Self {
        let discovery = NodeDiscovery::discover(&cluster.node);
        let gpus_per_node = cluster.node.num_gpus();
        let num_nodes = cluster.num_nodes;
        let fabric = Fabric::build(kernel, cluster);
        let mut devices = Vec::with_capacity(num_nodes * gpus_per_node);
        let mut streams = Vec::with_capacity(num_nodes * gpus_per_node);
        let mut streams_by_device = Vec::with_capacity(num_nodes * gpus_per_node);
        for node in 0..num_nodes {
            for g in 0..gpus_per_node {
                let engine = kernel.add_link(
                    format!("n{node}.g{g}.engine"),
                    cfg.pack_bandwidth,
                    cfg.kernel_launch_latency,
                );
                devices.push(DeviceState {
                    engine,
                    allocated: Mutex::new(0),
                    mem_limit: Mutex::new(None),
                });
                // Default stream: registry slot == global device id.
                let fifo = kernel.add_fifo(format!("n{node}.g{g}.s0"), 1);
                let track = kernel.trace.add_track(format!("n{node}.g{g} default"));
                streams_by_device.push(vec![streams.len()]);
                streams.push(StreamInfo {
                    device: node * gpus_per_node + g,
                    fifo,
                    track,
                });
            }
        }
        GpuMachine {
            inner: Arc::new(MachineInner {
                fabric,
                discovery,
                cfg,
                mode,
                devices,
                streams: Mutex::new(streams),
                streams_by_device: Mutex::new(streams_by_device),
                peer_enabled: Mutex::new(HashSet::new()),
            }),
        }
    }

    /// Number of GPUs in the whole machine.
    pub fn num_devices(&self) -> usize {
        self.inner.devices.len()
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.inner.fabric.node_spec().num_gpus()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.fabric.spec().num_nodes
    }

    /// Node of a global device id.
    pub fn node_of(&self, device: usize) -> usize {
        device / self.gpus_per_node()
    }

    /// Node-local GPU index of a global device id.
    pub fn local_of(&self, device: usize) -> usize {
        device % self.gpus_per_node()
    }

    /// Global device id from (node, local GPU).
    pub fn device_at(&self, node: usize, local: usize) -> usize {
        assert!(local < self.gpus_per_node());
        node * self.gpus_per_node() + local
    }

    /// Topology discovery results (NVML analogue).
    pub fn discovery(&self) -> &NodeDiscovery {
        &self.inner.discovery
    }

    /// The instantiated link fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &GpuCostModel {
        &self.inner.cfg
    }

    /// Data mode in effect.
    pub fn data_mode(&self) -> DataMode {
        self.inner.mode
    }

    /// Flow link modeling `device`'s kernel/memory engine. Kernels, packs,
    /// and same-device copies ride this link, so scaling its capacity (see
    /// [`GpuMachine::set_device_speed_factor`]) models a straggler device.
    pub fn engine_link(&self, device: usize) -> LinkId {
        self.inner.devices[device].engine
    }

    /// Scale a device's engine throughput to `factor` x its configured
    /// [`GpuCostModel::pack_bandwidth`] — the fault-injection hook for
    /// straggler GPUs. `factor` must be positive and finite; `1.0` restores
    /// nominal speed. In-flight work on the engine is re-rated by the flow
    /// network. The engine link's capacity is absolute, so repeated calls
    /// do not compound.
    pub fn set_device_speed_factor(&self, kernel: &mut Kernel, device: usize, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "device speed factor must be positive and finite"
        );
        let engine = self.inner.devices[device].engine;
        kernel.set_link_capacity(engine, self.inner.cfg.pack_bandwidth * factor);
    }

    // ----- memory management ---------------------------------------------

    /// Allocate device memory on `device` (global id). Fails when the
    /// device's memory limit would be exceeded.
    pub fn alloc_device(&self, ctx: &SimCtx, device: usize, len: u64) -> Result<Buffer, GpuError> {
        ctx.delay(self.inner.cfg.alloc_overhead);
        self.alloc_device_untimed(device, len)
    }

    /// As [`Self::alloc_device`] without charging setup time (tests,
    /// initialization outside the timed region).
    pub fn alloc_device_untimed(&self, device: usize, len: u64) -> Result<Buffer, GpuError> {
        let limit = self.device_mem_limit(device);
        let mut used = self.inner.devices[device].allocated.lock();
        if *used + len > limit {
            return Err(GpuError::OutOfMemory {
                device,
                requested: len,
                in_use: *used,
                limit,
            });
        }
        *used += len;
        Ok(Buffer::new(
            Placement::Device(device),
            len,
            self.inner.mode == DataMode::Full,
        ))
    }

    /// Release a device allocation's accounting. (Data is freed when the
    /// last handle drops.)
    pub fn free_device(&self, buf: &Buffer) {
        if let Placement::Device(d) = buf.placement {
            let mut used = self.inner.devices[d].allocated.lock();
            *used = used.saturating_sub(buf.len);
        }
    }

    /// Device memory currently allocated on `device`.
    pub fn device_mem_used(&self, device: usize) -> u64 {
        *self.inner.devices[device].allocated.lock()
    }

    /// Effective memory limit of `device`: the runtime override if one is
    /// set, else the configured [`GpuCostModel::device_mem_limit`].
    pub fn device_mem_limit(&self, device: usize) -> u64 {
        self.inner.devices[device]
            .mem_limit
            .lock()
            .unwrap_or(self.inner.cfg.device_mem_limit)
    }

    /// Override (or with `None`, clear back to configured) the memory
    /// limit of `device` — the fault-injection hook for mid-run memory
    /// shrink. Allocations already accounted are untouched; only future
    /// [`Self::alloc_device`] calls see the new limit, mirroring a driver
    /// that fenced off bad pages. The override is absolute, so repeated
    /// shrinks do not compound.
    pub fn set_device_mem_limit(&self, device: usize, limit: Option<u64>) {
        *self.inner.devices[device].mem_limit.lock() = limit;
    }

    /// Allocate pinned host memory on the socket nearest to `device`
    /// (where its staging buffers live).
    pub fn alloc_host_for(&self, ctx: &SimCtx, device: usize, len: u64) -> Buffer {
        ctx.delay(self.inner.cfg.alloc_overhead);
        self.alloc_host_untimed(
            self.node_of(device),
            self.inner
                .fabric
                .node_spec()
                .gpu_socket(self.local_of(device)),
            len,
        )
    }

    /// Allocate pinned host memory at an explicit (node, socket).
    pub fn alloc_host_untimed(&self, node: usize, socket: usize, len: u64) -> Buffer {
        Buffer::new(
            Placement::Host(node, socket),
            len,
            self.inner.mode == DataMode::Full,
        )
    }

    // ----- streams --------------------------------------------------------

    /// The device's default stream (used implicitly by the CUDA-aware MPI
    /// pathology model).
    pub fn default_stream(&self, device: usize) -> Stream {
        Stream(device)
    }

    /// Create a new stream on `device`.
    pub fn create_stream(&self, k: &mut Kernel, device: usize) -> Stream {
        let mut streams = self.inner.streams.lock();
        let mut by_dev = self.inner.streams_by_device.lock();
        let idx = streams.len();
        let node = self.node_of(device);
        let local = self.local_of(device);
        let per_dev = by_dev[device].len();
        let fifo = k.add_fifo(format!("n{node}.g{local}.s{per_dev}"), 1);
        let track = k
            .trace
            .add_track(format!("n{node}.g{local} stream{per_dev}"));
        by_dev[device].push(idx);
        streams.push(StreamInfo {
            device,
            fifo,
            track,
        });
        Stream(idx)
    }

    /// Device owning a stream.
    pub fn stream_device(&self, s: Stream) -> usize {
        self.inner.streams.lock()[s.0].device
    }

    /// The FIFO resource backing a stream (used by the simulated MPI's
    /// CUDA-aware transport to model default-stream serialization).
    pub fn stream_fifo(&self, s: Stream) -> FifoId {
        self.inner.streams.lock()[s.0].fifo
    }

    /// The trace track of a stream.
    pub fn stream_track(&self, s: Stream) -> detsim::trace::TrackId {
        self.inner.streams.lock()[s.0].track
    }

    /// All streams currently on `device` (default first).
    pub fn device_streams(&self, device: usize) -> Vec<Stream> {
        self.inner.streams_by_device.lock()[device]
            .iter()
            .map(|&i| Stream(i))
            .collect()
    }

    // ----- peer access ----------------------------------------------------

    /// `cudaDeviceCanAccessPeer`: whether two (same-node) devices can be
    /// peers.
    pub fn can_access_peer(&self, a: usize, b: usize) -> bool {
        if self.node_of(a) != self.node_of(b) {
            return false;
        }
        self.inner
            .discovery
            .can_peer(self.local_of(a), self.local_of(b))
    }

    /// `cudaDeviceEnablePeerAccess`: enable direct copies between two
    /// devices. Idempotent.
    pub fn enable_peer_access(&self, a: usize, b: usize) -> Result<(), GpuError> {
        if !self.can_access_peer(a, b) {
            return Err(GpuError::PeerAccessUnavailable { a, b });
        }
        let mut set = self.inner.peer_enabled.lock();
        set.insert((a, b));
        set.insert((b, a));
        Ok(())
    }

    /// Whether peer access has been enabled for a pair.
    pub fn peer_enabled(&self, a: usize, b: usize) -> bool {
        a == b || self.inner.peer_enabled.lock().contains(&(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::summit::summit_cluster;

    fn machine(nodes: usize) -> (Kernel, GpuMachine) {
        let mut k = Kernel::new();
        let m = GpuMachine::new(
            &mut k,
            summit_cluster(nodes),
            GpuCostModel::default(),
            DataMode::Full,
        );
        (k, m)
    }

    #[test]
    fn device_indexing() {
        let (_k, m) = machine(3);
        assert_eq!(m.num_devices(), 18);
        assert_eq!(m.gpus_per_node(), 6);
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.node_of(13), 2);
        assert_eq!(m.local_of(13), 1);
        assert_eq!(m.device_at(2, 1), 13);
    }

    #[test]
    fn allocation_respects_memory_limit() {
        let (_k, m) = machine(1);
        let b = m.alloc_device_untimed(0, 10 << 30).unwrap();
        assert_eq!(m.device_mem_used(0), 10 << 30);
        let err = m.alloc_device_untimed(0, 10 << 30).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { device: 0, .. }));
        m.free_device(&b);
        assert_eq!(m.device_mem_used(0), 0);
        assert!(m.alloc_device_untimed(0, 10 << 30).is_ok());
    }

    #[test]
    fn mem_limit_override_shrinks_and_restores() {
        let (_k, m) = machine(1);
        let nominal = m.device_mem_limit(3);
        let b = m.alloc_device_untimed(3, 1 << 30).unwrap();
        // Shrink below current usage: existing allocations survive, new
        // ones fail against the overridden limit.
        m.set_device_mem_limit(3, Some(1 << 20));
        assert_eq!(m.device_mem_limit(3), 1 << 20);
        assert_eq!(m.device_mem_used(3), 1 << 30);
        let err = m.alloc_device_untimed(3, 1 << 20).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { device: 3, limit, .. } if limit == 1 << 20));
        // Other devices are unaffected.
        assert!(m.alloc_device_untimed(4, 1 << 20).is_ok());
        // Clearing the override restores the configured limit.
        m.set_device_mem_limit(3, None);
        assert_eq!(m.device_mem_limit(3), nominal);
        m.free_device(&b);
        assert!(m.alloc_device_untimed(3, 1 << 20).is_ok());
    }

    #[test]
    fn virtual_mode_allocates_no_data() {
        let mut k = Kernel::new();
        let m = GpuMachine::new(
            &mut k,
            summit_cluster(1),
            GpuCostModel::default(),
            DataMode::Virtual,
        );
        let b = m.alloc_device_untimed(0, 8 << 30).unwrap();
        assert!(!b.has_data());
    }

    #[test]
    fn default_streams_exist_per_device() {
        let (_k, m) = machine(2);
        for d in 0..m.num_devices() {
            assert_eq!(m.stream_device(m.default_stream(d)), d);
        }
    }

    #[test]
    fn created_streams_attach_to_device() {
        let (mut k, m) = machine(1);
        let s1 = m.create_stream(&mut k, 4);
        let s2 = m.create_stream(&mut k, 4);
        assert_ne!(s1, s2);
        assert_eq!(m.stream_device(s1), 4);
        let streams = m.device_streams(4);
        assert_eq!(streams.len(), 3); // default + 2
        assert_eq!(streams[0], m.default_stream(4));
    }

    #[test]
    fn peer_access_same_node_only() {
        let (_k, m) = machine(2);
        assert!(m.can_access_peer(0, 5));
        assert!(!m.can_access_peer(0, 6)); // different node
        assert!(m.enable_peer_access(0, 5).is_ok());
        assert!(m.peer_enabled(0, 5));
        assert!(m.peer_enabled(5, 0));
        assert!(!m.peer_enabled(0, 1));
        assert!(m.peer_enabled(3, 3)); // self always
        assert!(m.enable_peer_access(0, 7).is_err());
    }

    #[test]
    fn host_alloc_picks_gpu_socket() {
        let (_k, m) = machine(1);
        let b = m.alloc_host_untimed(0, 1, 64);
        assert_eq!(b.placement(), Placement::Host(0, 1));
    }
}
