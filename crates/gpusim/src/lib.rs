//! # gpusim — a simulated CUDA runtime
//!
//! Reproduces, over the `detsim` event kernel and the `topo` hardware model,
//! the CUDA object model and semantics the paper's stencil library is built
//! on:
//!
//! * devices with bounded memory ([`GpuMachine::alloc_device`]);
//! * pinned host buffers ([`GpuMachine::alloc_host_for`]);
//! * in-order [`Stream`]s with asynchronous memcpy (H2D/D2H/D2D/peer) and
//!   kernel launches that contend for per-device engine bandwidth;
//! * events and cross-stream synchronization
//!   ([`GpuMachine::record_event`], [`GpuMachine::stream_wait_event`]);
//! * peer access management ([`GpuMachine::enable_peer_access`]);
//! * `cudaIpc*` handles for cross-process buffer sharing
//!   ([`GpuMachine::ipc_get_handle`] / [`GpuMachine::ipc_open`]).
//!
//! Transfers move real bytes in [`DataMode::Full`] (verifiable numerics) and
//! only virtual time in [`DataMode::Virtual`] (paper-scale benchmarks). Time
//! comes from the fabric's link model plus a small [`GpuCostModel`] of
//! driver/launch overheads.
//!
//! When metrics are enabled on the `detsim` kernel, every memcpy and kernel
//! launch is counted per device and direction (see `docs/OBSERVABILITY.md`).
//!
//! ## Example: a machine over one simulated Summit node
//!
//! ```
//! use detsim::Kernel;
//! use gpusim::{DataMode, GpuCostModel, GpuMachine};
//! use topo::summit::summit_cluster;
//!
//! let mut k = Kernel::new();
//! let m = GpuMachine::new(&mut k, summit_cluster(1), GpuCostModel::default(), DataMode::Full);
//! assert_eq!(m.num_devices(), 6);
//! let buf = m.alloc_device_untimed(0, 1 << 20).unwrap();
//! assert_eq!(m.device_mem_used(0), 1 << 20);
//! m.free_device(&buf);
//! ```

#![warn(missing_docs)]

mod buffer;
mod config;
mod error;
mod machine;
mod ops;

pub use buffer::{Buffer, Placement};
pub use config::{DataMode, GpuCostModel};
pub use error::GpuError;
pub use machine::{GpuMachine, Stream};
pub use ops::{IpcMemHandle, Work};
