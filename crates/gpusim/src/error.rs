//! Error type for the simulated CUDA runtime.

use std::fmt;

/// Errors surfaced by the simulated CUDA runtime. Mirrors the CUDA error
/// codes the paper's library must handle (allocation failure, missing peer
/// capability); programming errors (invalid transfer shapes) panic instead,
/// as they would abort a real CUDA application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpuError {
    /// Device memory exhausted.
    OutOfMemory {
        /// Global device id.
        device: usize,
        /// Bytes requested.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Device capacity.
        limit: u64,
    },
    /// `cudaDeviceEnablePeerAccess` on a pair that cannot be peers.
    PeerAccessUnavailable {
        /// First device.
        a: usize,
        /// Second device.
        b: usize,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                device,
                requested,
                in_use,
                limit,
            } => write!(
                f,
                "out of memory on device {device}: requested {requested} B with {in_use}/{limit} B in use"
            ),
            GpuError::PeerAccessUnavailable { a, b } => {
                write!(f, "peer access unavailable between devices {a} and {b}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GpuError::OutOfMemory {
            device: 2,
            requested: 10,
            in_use: 5,
            limit: 8,
        };
        assert!(e.to_string().contains("device 2"));
        let p = GpuError::PeerAccessUnavailable { a: 1, b: 7 };
        assert!(p.to_string().contains("1 and 7"));
    }
}
