//! Asynchronous device operations: memcpy, kernel launches, events, stream
//! and device synchronization, and IPC handles.
//!
//! Every operation has two forms:
//!
//! * a thread-level form taking [`SimCtx`] (e.g. [`GpuMachine::memcpy_async`])
//!   that charges the issuing thread the driver's per-call CPU overhead —
//!   this is what application code (and the stencil library) uses;
//! * a kernel-level `submit_*` form taking `&mut Kernel`, used from event
//!   callbacks (state machines, the MPI progress engine) where no thread
//!   context exists and no CPU issue time should be charged.
//!
//! Operations on one stream execute in order; operations on different
//! streams overlap freely, contending only for links and engines.

use detsim::{Completion, Kernel, LinkId, SimCtx};

use crate::buffer::{Buffer, Placement};
use crate::machine::{GpuMachine, Stream};

/// Host-side work executed when a simulated op completes (real data
/// movement or compute in full-data mode).
pub type Work = Box<dyn FnOnce() + Send>;

/// Opaque sharable reference to a device allocation
/// (`cudaIpcGetMemHandle` analogue). Send it to another rank (through the
/// simulated MPI's typed channel) and open it there.
pub struct IpcMemHandle {
    buf: Buffer,
}

impl GpuMachine {
    fn classify(&self, src: &Buffer, dst: &Buffer) -> (&'static str, Vec<LinkId>) {
        let fabric = self.fabric();
        match (src.placement(), dst.placement()) {
            (Placement::Device(a), Placement::Device(b)) => {
                if a == b {
                    ("D2D", vec![self.engine_link(a)])
                } else {
                    assert_eq!(
                        self.node_of(a),
                        self.node_of(b),
                        "cudaMemcpyPeer between devices on different nodes (use MPI)"
                    );
                    assert!(
                        self.peer_enabled(a, b),
                        "peer access not enabled between devices {a} and {b}"
                    );
                    (
                        "P2P",
                        fabric.gpu_gpu_path(self.node_of(a), self.local_of(a), self.local_of(b)),
                    )
                }
            }
            (Placement::Device(d), Placement::Host(n, s)) => {
                assert_eq!(self.node_of(d), n, "D2H copy to a different node's memory");
                (
                    "D2H",
                    fabric.node_path(
                        n,
                        fabric.node_spec().gpu(self.local_of(d)),
                        fabric.node_spec().cpu(s),
                    ),
                )
            }
            (Placement::Host(n, s), Placement::Device(d)) => {
                assert_eq!(
                    self.node_of(d),
                    n,
                    "H2D copy from a different node's memory"
                );
                (
                    "H2D",
                    fabric.node_path(
                        n,
                        fabric.node_spec().cpu(s),
                        fabric.node_spec().gpu(self.local_of(d)),
                    ),
                )
            }
            (Placement::Host(..), Placement::Host(..)) => {
                panic!("host-to-host copies are MPI's job, not the GPU runtime's")
            }
        }
    }

    /// `cudaMemcpyAsync`/`cudaMemcpyPeerAsync`: enqueue a copy on `stream`.
    /// Returns a completion that fires when the copy lands.
    #[allow(clippy::too_many_arguments)] // mirrors the CUDA signature
    pub fn memcpy_async(
        &self,
        ctx: &SimCtx,
        stream: Stream,
        dst: &Buffer,
        dst_off: u64,
        src: &Buffer,
        src_off: u64,
        len: u64,
    ) -> Completion {
        ctx.delay(self.cost_model().call_overhead);
        ctx.with_kernel(|k| self.submit_memcpy(k, stream, dst, dst_off, src, src_off, len))
    }

    /// Kernel-level form of [`Self::memcpy_async`].
    #[allow(clippy::too_many_arguments)] // mirrors the CUDA signature
    pub fn submit_memcpy(
        &self,
        k: &mut Kernel,
        stream: Stream,
        dst: &Buffer,
        dst_off: u64,
        src: &Buffer,
        src_off: u64,
        len: u64,
    ) -> Completion {
        assert!(src_off + len <= src.len(), "memcpy source out of range");
        assert!(
            dst_off + len <= dst.len(),
            "memcpy destination out of range"
        );
        let (label, path) = self.classify(src, dst);
        if k.metrics.is_enabled() {
            let device = self.stream_device(stream);
            let dev = format!("n{}.g{}", self.node_of(device), self.local_of(device));
            k.metrics.counter_add(
                "gpusim",
                "memcpy_bytes",
                &[("dev", &dev), ("dir", label)],
                len,
            );
            k.metrics.counter_add(
                "gpusim",
                "memcpy_count",
                &[("dev", &dev), ("dir", label)],
                1,
            );
        }
        let fifo = self.stream_fifo(stream);
        let track = self.stream_track(stream);
        let latency = self.cost_model().memcpy_latency;
        let done = k.completion();
        let d2 = done.clone();
        let dst = dst.clone();
        let src = src.clone();
        k.fifo_submit(fifo, move |k, token| {
            let start = k.now();
            k.schedule_in(latency, move |k| {
                k.start_flow(&path, len, move |k| {
                    dst.copy_from(dst_off, &src, src_off, len);
                    if k.trace.is_enabled() {
                        k.trace
                            .record(track, format!("{label} {len}B"), "memcpy", start, k.now());
                    }
                    k.fifo_task_done(token);
                    k.complete(&d2);
                });
            });
        });
        done
    }

    /// Launch a kernel on `stream` that touches `bytes` of device memory
    /// (pack/unpack/compute cost model) and, in full-data mode, runs `work`
    /// when it completes. Concurrent kernels on one device share its engine
    /// bandwidth.
    pub fn launch_kernel(
        &self,
        ctx: &SimCtx,
        stream: Stream,
        label: impl Into<String>,
        bytes: u64,
        work: Option<Work>,
    ) -> Completion {
        ctx.delay(self.cost_model().call_overhead);
        ctx.with_kernel(|k| self.submit_kernel(k, stream, label, bytes, work))
    }

    /// Kernel-level form of [`Self::launch_kernel`].
    pub fn submit_kernel(
        &self,
        k: &mut Kernel,
        stream: Stream,
        label: impl Into<String>,
        bytes: u64,
        work: Option<Work>,
    ) -> Completion {
        let device = self.stream_device(stream);
        let engine = self.engine_link(device);
        let fifo = self.stream_fifo(stream);
        let track = self.stream_track(stream);
        let label = label.into();
        if k.metrics.is_enabled() {
            let dev = format!("n{}.g{}", self.node_of(device), self.local_of(device));
            k.metrics
                .counter_add("gpusim", "kernel_launches", &[("dev", &dev)], 1);
            k.metrics
                .counter_add("gpusim", "kernel_bytes", &[("dev", &dev)], bytes);
        }
        let done = k.completion();
        let d2 = done.clone();
        k.fifo_submit(fifo, move |k, token| {
            let start = k.now();
            k.start_flow(&[engine], bytes, move |k| {
                if let Some(w) = work {
                    w();
                }
                k.trace.record(track, label, "kernel", start, k.now());
                k.fifo_task_done(token);
                k.complete(&d2);
            });
        });
        done
    }

    /// `cudaEventRecord`: returns a completion that fires when the stream
    /// reaches this point.
    pub fn record_event(&self, ctx: &SimCtx, stream: Stream) -> Completion {
        ctx.delay(self.cost_model().call_overhead);
        ctx.with_kernel(|k| self.submit_record_event(k, stream))
    }

    /// Kernel-level form of [`Self::record_event`].
    pub fn submit_record_event(&self, k: &mut Kernel, stream: Stream) -> Completion {
        let fifo = self.stream_fifo(stream);
        let done = k.completion();
        let d2 = done.clone();
        k.fifo_submit(fifo, move |k, token| {
            k.complete(&d2);
            k.fifo_task_done(token);
        });
        done
    }

    /// `cudaStreamWaitEvent`: `stream` stalls until `event` fires.
    pub fn stream_wait_event(&self, ctx: &SimCtx, stream: Stream, event: &Completion) {
        ctx.delay(self.cost_model().call_overhead);
        ctx.with_kernel(|k| self.submit_wait_event(k, stream, event));
    }

    /// Kernel-level form of [`Self::stream_wait_event`].
    pub fn submit_wait_event(&self, k: &mut Kernel, stream: Stream, event: &Completion) {
        let fifo = self.stream_fifo(stream);
        let ev = event.clone();
        k.fifo_submit(fifo, move |k, token| {
            k.on_complete(&ev, move |k| k.fifo_task_done(token));
        });
    }

    /// `cudaStreamSynchronize`: block the calling thread until everything
    /// enqueued on `stream` so far has completed.
    pub fn stream_sync(&self, ctx: &SimCtx, stream: Stream) {
        let c = self.record_event(ctx, stream);
        ctx.wait(&c);
    }

    /// `cudaDeviceSynchronize`: block until every stream of `device` drains.
    pub fn device_sync(&self, ctx: &SimCtx, device: usize) {
        ctx.delay(self.cost_model().call_overhead);
        let c = ctx.with_kernel(|k| self.submit_device_sync(k, device));
        ctx.wait(&c);
    }

    /// Kernel-level device sync: completion firing when every stream of
    /// `device` has drained (as of submission).
    pub fn submit_device_sync(&self, k: &mut Kernel, device: usize) -> Completion {
        let events: Vec<Completion> = self
            .device_streams(device)
            .into_iter()
            .map(|s| self.submit_record_event(k, s))
            .collect();
        k.completion_all(&events)
    }

    /// `cudaIpcGetMemHandle`: export a device buffer for another rank.
    pub fn ipc_get_handle(&self, buf: &Buffer) -> IpcMemHandle {
        assert!(
            buf.device().is_some(),
            "IPC handles only exist for device memory"
        );
        IpcMemHandle { buf: buf.clone() }
    }

    /// `cudaIpcOpenMemHandle`: map another rank's device buffer into this
    /// rank. One-time setup cost.
    pub fn ipc_open(&self, ctx: &SimCtx, handle: &IpcMemHandle) -> Buffer {
        ctx.delay(self.cost_model().ipc_open_overhead);
        handle.buf.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DataMode, GpuCostModel};
    use detsim::{Sim, SimDuration};
    use std::sync::Arc;
    use topo::summit::summit_cluster;

    fn setup(nodes: usize) -> (Sim, GpuMachine) {
        let sim = Sim::new();
        let m = sim.with_kernel(|k| {
            GpuMachine::new(
                k,
                summit_cluster(nodes),
                GpuCostModel::default(),
                DataMode::Full,
            )
        });
        (sim, m)
    }

    #[test]
    fn d2h_copy_time_matches_model() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let dev = m2.alloc_device_untimed(0, 50_000_000).unwrap();
            let host = m2.alloc_host_untimed(0, 0, 50_000_000);
            let t0 = ctx.now();
            let c = m2.memcpy_async(ctx, m2.default_stream(0), &host, 0, &dev, 0, 50_000_000);
            ctx.wait(&c);
            let dt = ctx.now().since(t0).as_secs_f64();
            // 50 MB over 50 GB/s = 1 ms, plus ~11 us of overheads.
            assert!(dt > 0.001 && dt < 0.00102, "dt = {dt}");
        });
    }

    #[test]
    fn data_really_moves_d2h() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let dev = m2.alloc_device_untimed(0, 8).unwrap();
            let host = m2.alloc_host_untimed(0, 0, 8);
            dev.write(0, &[7u8; 8]);
            let c = m2.memcpy_async(ctx, m2.default_stream(0), &host, 0, &dev, 0, 8);
            ctx.wait(&c);
            let mut out = [0u8; 8];
            host.read(0, &mut out);
            assert_eq!(out, [7u8; 8]);
        });
    }

    #[test]
    fn same_stream_copies_serialize() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let dev = m2.alloc_device_untimed(0, 100_000_000).unwrap();
            let host = m2.alloc_host_untimed(0, 0, 100_000_000);
            let s = m2.default_stream(0);
            let t0 = ctx.now();
            let c1 = m2.memcpy_async(ctx, s, &host, 0, &dev, 0, 50_000_000);
            let c2 = m2.memcpy_async(ctx, s, &host, 0, &dev, 0, 50_000_000);
            ctx.wait_all(&[c1, c2]);
            let dt = ctx.now().since(t0).as_secs_f64();
            assert!(
                dt > 0.002,
                "two 1ms copies on one stream must serialize: {dt}"
            );
        });
    }

    #[test]
    fn different_direction_copies_overlap() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let dev = m2.alloc_device_untimed(0, 100_000_000).unwrap();
            let host = m2.alloc_host_untimed(0, 0, 100_000_000);
            let (s1, s2) = ctx.with_kernel(|k| (m2.create_stream(k, 0), m2.create_stream(k, 0)));
            let t0 = ctx.now();
            // D2H and H2D use distinct directed links: full overlap.
            let c1 = m2.memcpy_async(ctx, s1, &host, 0, &dev, 0, 50_000_000);
            let c2 = m2.memcpy_async(ctx, s2, &dev, 0, &host, 0, 50_000_000);
            ctx.wait_all(&[c1, c2]);
            let dt = ctx.now().since(t0).as_secs_f64();
            assert!(dt < 0.0015, "duplex copies should overlap: {dt}");
        });
    }

    #[test]
    fn p2p_between_triad_gpus() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            m2.enable_peer_access(0, 1).unwrap();
            let a = m2.alloc_device_untimed(0, 50_000_000).unwrap();
            let b = m2.alloc_device_untimed(1, 50_000_000).unwrap();
            a.write(0, &[3u8; 4]);
            let t0 = ctx.now();
            let c = m2.memcpy_async(ctx, m2.default_stream(0), &b, 0, &a, 0, 50_000_000);
            ctx.wait(&c);
            let dt = ctx.now().since(t0).as_secs_f64();
            assert!(dt > 0.001 && dt < 0.00102, "NVLink P2P 50MB ~ 1ms: {dt}");
            let mut out = [0u8; 4];
            b.read(0, &mut out);
            assert_eq!(out, [3u8; 4]);
        });
    }

    #[test]
    #[should_panic(expected = "peer access not enabled")]
    fn p2p_without_enablement_panics() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let a = m2.alloc_device_untimed(0, 8).unwrap();
            let b = m2.alloc_device_untimed(1, 8).unwrap();
            let c = m2.memcpy_async(ctx, m2.default_stream(0), &b, 0, &a, 0, 8);
            ctx.wait(&c);
        });
    }

    #[test]
    #[should_panic(expected = "different nodes")]
    fn cross_node_p2p_panics() {
        let (mut sim, m) = setup(2);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let a = m2.alloc_device_untimed(0, 8).unwrap();
            let b = m2.alloc_device_untimed(6, 8).unwrap();
            let c = m2.memcpy_async(ctx, m2.default_stream(0), &b, 0, &a, 0, 8);
            ctx.wait(&c);
        });
    }

    #[test]
    fn kernels_share_engine_bandwidth() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let (s1, s2) = ctx.with_kernel(|k| (m2.create_stream(k, 0), m2.create_stream(k, 0)));
            let bytes = 350_000_000; // 1 ms at 350 GB/s alone
            let t0 = ctx.now();
            let c1 = m2.launch_kernel(ctx, s1, "pack", bytes, None);
            let c2 = m2.launch_kernel(ctx, s2, "pack", bytes, None);
            ctx.wait_all(&[c1, c2]);
            let dt = ctx.now().since(t0).as_secs_f64();
            assert!(dt > 0.0019 && dt < 0.0022, "two kernels share engine: {dt}");
        });
    }

    #[test]
    fn kernel_work_closure_runs_on_completion() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let dev = m2.alloc_device_untimed(0, 4).unwrap();
            let dev2 = dev.clone();
            let c = m2.launch_kernel(
                ctx,
                m2.default_stream(0),
                "init",
                4,
                Some(Box::new(move || dev2.write(0, &[1, 2, 3, 4]))),
            );
            ctx.wait(&c);
            let mut out = [0u8; 4];
            dev.read(0, &mut out);
            assert_eq!(out, [1, 2, 3, 4]);
        });
    }

    #[test]
    fn events_order_across_streams() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        let order: Arc<parking_lot::Mutex<Vec<&'static str>>> =
            Arc::new(parking_lot::Mutex::new(vec![]));
        let o2 = Arc::clone(&order);
        sim.run(1, move |ctx| {
            let (s1, s2) = ctx.with_kernel(|k| (m2.create_stream(k, 0), m2.create_stream(k, 0)));
            let o3 = Arc::clone(&o2);
            let o4 = Arc::clone(&o2);
            let k1 = m2.launch_kernel(
                ctx,
                s1,
                "first",
                350_000_000,
                Some(Box::new(move || o3.lock().push("first"))),
            );
            let ev = m2.record_event(ctx, s1);
            m2.stream_wait_event(ctx, s2, &ev);
            let k2 = m2.launch_kernel(
                ctx,
                s2,
                "second",
                1000,
                Some(Box::new(move || o4.lock().push("second"))),
            );
            ctx.wait_all(&[k1, k2]);
        });
        assert_eq!(*order.lock(), vec!["first", "second"]);
    }

    #[test]
    fn device_sync_drains_all_streams() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let (s1, s2) = ctx.with_kernel(|k| (m2.create_stream(k, 0), m2.create_stream(k, 0)));
            let _ = m2.launch_kernel(ctx, s1, "a", 350_000_000, None);
            let _ = m2.launch_kernel(ctx, s2, "b", 700_000_000, None);
            let t0 = ctx.now();
            m2.device_sync(ctx, 0);
            let dt = ctx.now().since(t0).as_secs_f64();
            assert!(dt > 0.0015, "device sync waits for slowest stream: {dt}");
        });
    }

    #[test]
    fn ipc_round_trip_shares_memory() {
        let (mut sim, m) = setup(1);
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let a = m2.alloc_device_untimed(2, 16).unwrap();
            let h = m2.ipc_get_handle(&a);
            let t0 = ctx.now();
            let opened = m2.ipc_open(ctx, &h);
            assert!(ctx.now().since(t0) >= SimDuration::from_micros(100));
            opened.write(0, &[5u8; 16]);
            let mut out = [0u8; 16];
            a.read(0, &mut out);
            assert_eq!(out, [5u8; 16]);
        });
    }

    #[test]
    fn trace_records_stream_spans() {
        let (mut sim, m) = setup(1);
        sim.with_kernel(|k| k.trace.enable());
        let m2 = m.clone();
        sim.run(1, move |ctx| {
            let dev = m2.alloc_device_untimed(0, 1024).unwrap();
            let host = m2.alloc_host_untimed(0, 0, 1024);
            let c = m2.memcpy_async(ctx, m2.default_stream(0), &host, 0, &dev, 0, 1024);
            ctx.wait(&c);
        });
        sim.with_kernel(|k| {
            assert_eq!(k.trace.spans().len(), 1);
            assert!(k.trace.spans()[0].name.contains("D2H"));
        });
    }
}
