//! Simulated device and pinned-host buffers.
//!
//! In [`DataMode::Full`](crate::DataMode::Full) a buffer owns real bytes
//! behind an `Arc<Mutex<Vec<u8>>>`; copies and kernels operate on them when
//! their simulated op completes. In `Virtual` mode only the length exists.
//!
//! Handles are cheaply cloneable and shareable across simulated ranks — the
//! virtual-memory isolation of real processes is modeled by *API
//! discipline*: ranks only learn about each other's device buffers through
//! [`IpcMemHandle`](crate::IpcMemHandle) exchange, as on real CUDA.

use std::sync::Arc;

use parking_lot::Mutex;

/// Shared byte storage (present only in full-data mode).
pub(crate) type Storage = Arc<Mutex<Vec<u8>>>;

/// Where a buffer physically lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Device memory of the global GPU id.
    Device(usize),
    /// Pinned host memory on `(node, socket)`.
    Host(usize, usize),
}

/// A simulated memory allocation (device or pinned host).
#[derive(Clone)]
pub struct Buffer {
    pub(crate) placement: Placement,
    pub(crate) len: u64,
    pub(crate) data: Option<Storage>,
}

impl Buffer {
    pub(crate) fn new(placement: Placement, len: u64, with_data: bool) -> Self {
        Buffer {
            placement,
            len,
            data: if with_data {
                Some(Arc::new(Mutex::new(vec![0u8; len as usize])))
            } else {
                None
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Where the buffer lives.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Global GPU id, if this is a device buffer.
    pub fn device(&self) -> Option<usize> {
        match self.placement {
            Placement::Device(d) => Some(d),
            Placement::Host(..) => None,
        }
    }

    /// Whether real bytes back this buffer (full-data mode).
    pub fn has_data(&self) -> bool {
        self.data.is_some()
    }

    /// Read bytes out (host-side debugging / initialization / verification;
    /// free in virtual time). Panics in virtual data mode or out of range.
    pub fn read(&self, offset: u64, out: &mut [u8]) {
        let data = self.data.as_ref().expect("read from virtual-mode buffer");
        let s = offset as usize;
        let g = data.lock();
        out.copy_from_slice(&g[s..s + out.len()]);
    }

    /// Write bytes in (initialization; free in virtual time). Panics in
    /// virtual data mode or out of range.
    pub fn write(&self, offset: u64, src: &[u8]) {
        let data = self.data.as_ref().expect("write to virtual-mode buffer");
        let s = offset as usize;
        let mut g = data.lock();
        g[s..s + src.len()].copy_from_slice(src);
    }

    /// Run `f` with mutable access to the backing bytes (used by simulated
    /// kernels for in-place compute). Panics in virtual data mode.
    pub fn with_data<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let data = self
            .data
            .as_ref()
            .expect("with_data on virtual-mode buffer");
        let mut g = data.lock();
        f(&mut g)
    }

    /// Typed convenience: view as `f32` slice (length must be 4-aligned).
    pub fn with_f32<R>(&self, f: impl FnOnce(&mut [f32]) -> R) -> R {
        self.with_data(|bytes| {
            assert!(bytes.len() % 4 == 0, "buffer not f32-aligned");
            // Safe reinterpretation: f32 has no invalid bit patterns and
            // alignment of Vec<u8> data is sufficient via chunking copy.
            // To stay fully safe, operate on a temporary view.
            let mut tmp: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let r = f(&mut tmp);
            for (c, v) in bytes.chunks_exact_mut(4).zip(&tmp) {
                c.copy_from_slice(&v.to_le_bytes());
            }
            r
        })
    }

    /// Copy `len` bytes from `src[src_off..]` into `self[dst_off..]`,
    /// handling the aliasing (same allocation) case. No-op in virtual mode.
    /// This is the zero-time data-plane primitive the simulated transports
    /// invoke when their op completes.
    pub fn copy_from(&self, dst_off: u64, src: &Buffer, src_off: u64, len: u64) {
        let (Some(d), Some(s)) = (self.data.as_ref(), src.data.as_ref()) else {
            return;
        };
        let (dst_off, src_off, len) = (dst_off as usize, src_off as usize, len as usize);
        if Arc::ptr_eq(d, s) {
            let mut g = d.lock();
            g.copy_within(src_off..src_off + len, dst_off);
        } else {
            let mut dg = d.lock();
            let sg = s.lock();
            dg[dst_off..dst_off + len].copy_from_slice(&sg[src_off..src_off + len]);
        }
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Buffer({:?}, {}B, {})",
            self.placement,
            self.len,
            if self.data.is_some() {
                "full"
            } else {
                "virtual"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let b = Buffer::new(Placement::Device(0), 16, true);
        b.write(4, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        b.read(4, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(b.len(), 16);
        assert!(!b.is_empty());
        assert_eq!(b.device(), Some(0));
    }

    #[test]
    fn copy_between_buffers() {
        let a = Buffer::new(Placement::Device(0), 8, true);
        let b = Buffer::new(Placement::Host(0, 0), 8, true);
        a.write(0, &[9; 8]);
        b.copy_from(2, &a, 1, 4);
        let mut out = [0u8; 8];
        b.read(0, &mut out);
        assert_eq!(out, [0, 0, 9, 9, 9, 9, 0, 0]);
        assert_eq!(b.device(), None);
    }

    #[test]
    fn aliased_copy_uses_copy_within() {
        let a = Buffer::new(Placement::Device(0), 8, true);
        a.write(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let a2 = a.clone();
        a.copy_from(0, &a2, 4, 4); // overlapping allocation, disjoint ranges
        let mut out = [0u8; 8];
        a.read(0, &mut out);
        assert_eq!(out, [5, 6, 7, 8, 5, 6, 7, 8]);
    }

    #[test]
    fn virtual_buffers_skip_data() {
        let a = Buffer::new(Placement::Device(0), 1 << 40, false); // 1 TiB, no alloc
        let b = Buffer::new(Placement::Device(1), 1 << 40, false);
        assert!(!a.has_data());
        b.copy_from(0, &a, 0, 1 << 39); // no-op, must not panic
    }

    #[test]
    fn f32_view_round_trips() {
        let b = Buffer::new(Placement::Device(0), 12, true);
        b.with_f32(|v| {
            assert_eq!(v.len(), 3);
            v[1] = 2.5;
        });
        b.with_f32(|v| assert_eq!(v[1], 2.5));
    }

    #[test]
    #[should_panic(expected = "virtual-mode")]
    fn reading_virtual_buffer_panics() {
        let a = Buffer::new(Placement::Device(0), 8, false);
        let mut out = [0u8; 1];
        a.read(0, &mut out);
    }
}
