//! CUDA-semantics tests for the simulated runtime: stream ordering across
//! mixed op types, event-based cross-stream dependencies, engine
//! contention, data-integrity of chained pipelines, and IPC sharing across
//! simulated ranks.

use std::sync::Arc;

use detsim::{Sim, SimDuration};
use gpusim::{DataMode, GpuCostModel, GpuMachine};
use parking_lot::Mutex;
use topo::summit::summit_cluster;

fn setup(nodes: usize) -> (Sim, GpuMachine) {
    let sim = Sim::new();
    let m = sim.with_kernel(|k| {
        GpuMachine::new(
            k,
            summit_cluster(nodes),
            GpuCostModel::default(),
            DataMode::Full,
        )
    });
    (sim, m)
}

#[test]
fn mixed_ops_on_one_stream_run_in_issue_order() {
    let (mut sim, m) = setup(1);
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&order);
    let m2 = m.clone();
    sim.run(1, move |ctx| {
        let dev = m2.alloc_device_untimed(0, 1024).unwrap();
        let host = m2.alloc_host_untimed(0, 0, 1024);
        let s = m2.default_stream(0);
        let o1 = Arc::clone(&o);
        let _k1 = m2.launch_kernel(
            ctx,
            s,
            "a",
            1 << 20,
            Some(Box::new(move || o1.lock().push("kernel-a"))),
        );
        let c = m2.memcpy_async(ctx, s, &host, 0, &dev, 0, 1024);
        let o2 = Arc::clone(&o);
        ctx.with_kernel(|k| {
            k.on_complete(&c, move |_| o2.lock().push("copy"));
        });
        let o3 = Arc::clone(&o);
        let k2 = m2.launch_kernel(
            ctx,
            s,
            "b",
            1 << 20,
            Some(Box::new(move || o3.lock().push("kernel-b"))),
        );
        ctx.wait(&k2);
    });
    assert_eq!(*order.lock(), vec!["kernel-a", "copy", "kernel-b"]);
}

#[test]
fn chained_pipeline_preserves_data() {
    // dev0 -> host -> dev1 -> host2: the classic staged pipeline, checked
    // byte-for-byte.
    let (mut sim, m) = setup(1);
    let m2 = m.clone();
    sim.run(1, move |ctx| {
        m2.enable_peer_access(0, 1).unwrap();
        let src = m2.alloc_device_untimed(0, 4096).unwrap();
        let host = m2.alloc_host_untimed(0, 0, 4096);
        let mid = m2.alloc_device_untimed(1, 4096).unwrap();
        let out = m2.alloc_host_untimed(0, 1, 4096);
        let payload: Vec<u8> = (0..4096).map(|i| (i % 255) as u8).collect();
        src.write(0, &payload);
        let s0 = m2.default_stream(0);
        let s1 = m2.default_stream(1);
        m2.memcpy_async(ctx, s0, &host, 0, &src, 0, 4096);
        let ev = m2.record_event(ctx, s0);
        m2.stream_wait_event(ctx, s1, &ev);
        m2.memcpy_async(ctx, s1, &mid, 0, &host, 0, 4096);
        let done = m2.memcpy_async(ctx, s1, &out, 0, &mid, 0, 4096);
        ctx.wait(&done);
        let mut got = vec![0u8; 4096];
        out.read(0, &mut got);
        assert_eq!(got, payload);
    });
}

#[test]
fn engine_contention_scales_with_concurrent_kernels() {
    let (mut sim, m) = setup(1);
    let m2 = m.clone();
    sim.run(1, move |ctx| {
        let bytes = 350_000_000u64; // 1 ms alone
        for n in [1usize, 2, 4] {
            let streams: Vec<_> =
                ctx.with_kernel(|k| (0..n).map(|_| m2.create_stream(k, 0)).collect());
            let t0 = ctx.now();
            let evs: Vec<_> = streams
                .iter()
                .map(|&s| m2.launch_kernel(ctx, s, "k", bytes, None))
                .collect();
            ctx.wait_all(&evs);
            let dt = ctx.now().since(t0).as_secs_f64();
            let expect = 0.001 * n as f64;
            assert!(
                (dt - expect).abs() < expect * 0.1,
                "{n} kernels should take ~{expect}s, got {dt}"
            );
        }
    });
}

#[test]
fn p2p_copies_on_disjoint_triad_links_overlap() {
    let (mut sim, m) = setup(1);
    let m2 = m.clone();
    sim.run(1, move |ctx| {
        m2.enable_peer_access(0, 1).unwrap();
        m2.enable_peer_access(0, 2).unwrap();
        let a = m2.alloc_device_untimed(0, 50_000_000).unwrap();
        let b = m2.alloc_device_untimed(1, 50_000_000).unwrap();
        let c = m2.alloc_device_untimed(2, 50_000_000).unwrap();
        let (s1, s2) = ctx.with_kernel(|k| (m2.create_stream(k, 0), m2.create_stream(k, 0)));
        let t0 = ctx.now();
        let c1 = m2.memcpy_async(ctx, s1, &b, 0, &a, 0, 50_000_000);
        let c2 = m2.memcpy_async(ctx, s2, &c, 0, &a, 0, 50_000_000);
        ctx.wait_all(&[c1, c2]);
        let dt = ctx.now().since(t0).as_secs_f64();
        // distinct NVLinks: both finish in ~1 ms, not 2
        assert!(dt < 0.0012, "triad P2P copies must overlap: {dt}");
    });
}

#[test]
fn ipc_handle_crosses_simulated_ranks() {
    // Rank 1 opens rank 0's buffer via an IPC handle sent through the
    // typed channel, then writes into it; rank 0 sees the bytes.
    use mpisim::{run_world, WorldConfig};
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let o2 = Arc::clone(&ok);
    run_world(WorldConfig::new(summit_cluster(1), 2), move |ctx| {
        let m = ctx.machine();
        if ctx.rank() == 0 {
            let mine = m.alloc_device_untimed(0, 256).unwrap();
            ctx.send_obj(1, 1, m.ipc_get_handle(&mine));
            // wait for peer's signal that it wrote
            let _: u8 = ctx.recv_obj(1, 2);
            let mut b = [0u8; 256];
            mine.read(0, &mut b);
            *o2.lock() = b.iter().all(|&v| v == 0xAB);
        } else {
            let handle: gpusim::IpcMemHandle = ctx.recv_obj(0, 1);
            let theirs = m.ipc_open(ctx.sim(), &handle);
            theirs.write(0, &[0xAB; 256]);
            ctx.send_obj(0, 2, 1u8);
        }
    });
    assert!(*ok.lock());
}

#[test]
fn virtual_mode_costs_identical_to_full_mode() {
    // The cost model must not depend on whether real bytes move.
    let run = |mode: DataMode| {
        let mut sim = Sim::new();
        let m = sim
            .with_kernel(|k| GpuMachine::new(k, summit_cluster(1), GpuCostModel::default(), mode));
        let out = Arc::new(Mutex::new(0u64));
        let o = Arc::clone(&out);
        sim.run(1, move |ctx| {
            let dev = m.alloc_device_untimed(0, 10_000_000).unwrap();
            let host = m.alloc_host_untimed(0, 0, 10_000_000);
            let c = m.memcpy_async(ctx, m.default_stream(0), &host, 0, &dev, 0, 10_000_000);
            ctx.wait(&c);
            *o.lock() = ctx.now().picos();
        });
        let v = *out.lock();
        v
    };
    assert_eq!(run(DataMode::Full), run(DataMode::Virtual));
}

#[test]
fn device_streams_are_isolated_per_device() {
    let (mut sim, m) = setup(2);
    let m2 = m.clone();
    sim.run(1, move |ctx| {
        // saturating device 0's engine must not slow device 6 (other node)
        let s0 = m2.default_stream(0);
        let s6 = m2.default_stream(6);
        let _ = m2.launch_kernel(ctx, s0, "big", 700_000_000, None);
        let t0 = ctx.now();
        let k = m2.launch_kernel(ctx, s6, "small", 350_000, None);
        ctx.wait(&k);
        let dt = ctx.now().since(t0).as_secs_f64();
        assert!(dt < 0.0001, "cross-device interference: {dt}");
    });
}

#[test]
fn stream_sync_blocks_exactly_until_drain() {
    let (mut sim, m) = setup(1);
    let m2 = m.clone();
    sim.run(1, move |ctx| {
        let s = ctx.with_kernel(|k| m2.create_stream(k, 3));
        let _ = m2.launch_kernel(ctx, s, "work", 350_000_000, None); // ~1ms
        let t0 = ctx.now();
        m2.stream_sync(ctx, s);
        let dt = ctx.now().since(t0).as_secs_f64();
        assert!((0.0009..0.0012).contains(&dt), "sync waited {dt}");
        // a second sync returns (almost) immediately
        let t1 = ctx.now();
        m2.stream_sync(ctx, s);
        assert!(ctx.now().since(t1) < SimDuration::from_micros(20));
    });
}
