//! Durable result persistence and cross-run comparison queries.
//!
//! A [`ResultStore`] is an append-only JSONL file: one
//! [`JobResult::to_json`] line per finished job. Appends are serialized
//! through a mutex so the service's workers can share one store; loads
//! parse the whole file back. The comparison queries group results by
//! workload digest ([`crate::spec::JobSpec::digest`]) — the determinism
//! audit ([`DigestGroup::bit_identical`]) checks that every completed
//! result of a workload committed the same virtual times, across runs of
//! the service and across PRs.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::result::{JobResult, JobStatus};

/// Append-only JSONL persistence for [`JobResult`]s.
pub struct ResultStore {
    path: PathBuf,
    file: Mutex<File>,
}

/// All persisted results for one workload digest.
#[derive(Clone, Debug)]
pub struct DigestGroup {
    /// The workload digest.
    pub digest: String,
    /// Every persisted result with that digest, in file order.
    pub results: Vec<JobResult>,
}

impl DigestGroup {
    /// The completed results of the group.
    pub fn completed(&self) -> Vec<&JobResult> {
        self.results
            .iter()
            .filter(|r| r.status == JobStatus::Completed)
            .collect()
    }

    /// Whether every completed result committed bit-identical virtual
    /// times. Vacuously true when fewer than two completed.
    pub fn bit_identical(&self) -> bool {
        let done = self.completed();
        done.windows(2).all(|w| w[0].bit_identical(w[1]))
    }

    /// Mean wall-clock run milliseconds over completed results.
    pub fn mean_run_ms(&self) -> f64 {
        let done = self.completed();
        if done.is_empty() {
            return 0.0;
        }
        done.iter().map(|r| r.run_ms).sum::<f64>() / done.len() as f64
    }
}

impl ResultStore {
    /// Open (creating if needed) the JSONL file at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<ResultStore> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(ResultStore {
            path,
            file: Mutex::new(file),
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one result as a JSONL line (serialized across threads).
    pub fn append(&self, result: &JobResult) -> std::io::Result<()> {
        let line = result.to_json();
        let mut f = self.file.lock();
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()
    }

    /// Load every persisted result, in file order. Malformed lines are an
    /// error (the store is the service's own output; corruption should be
    /// loud).
    pub fn load(&self) -> std::io::Result<Vec<JobResult>> {
        let reader = BufReader::new(File::open(&self.path)?);
        let mut out = Vec::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let r = JobResult::from_json(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", self.path.display(), idx + 1),
                )
            })?;
            out.push(r);
        }
        Ok(out)
    }

    /// Group every persisted result by workload digest.
    pub fn by_digest(&self) -> std::io::Result<Vec<DigestGroup>> {
        let mut groups: BTreeMap<String, Vec<JobResult>> = BTreeMap::new();
        for r in self.load()? {
            groups.entry(r.digest.clone()).or_default().push(r);
        }
        Ok(groups
            .into_iter()
            .map(|(digest, results)| DigestGroup { digest, results })
            .collect())
    }

    /// The persisted results of one workload.
    pub fn query(&self, digest: &str) -> std::io::Result<Option<DigestGroup>> {
        Ok(self.by_digest()?.into_iter().find(|g| g.digest == digest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterPreset, JobSpec};

    fn result(id: u64, tenant: &str, spec: &JobSpec, elapsed: u64) -> JobResult {
        JobResult {
            schema_version: detsim::SCHEMA_VERSION,
            job_id: id,
            tenant: tenant.into(),
            digest: spec.digest(),
            status: JobStatus::Completed,
            error: None,
            queue_ms: 0.5,
            run_ms: 10.0 + id as f64,
            total_ms: 10.5 + id as f64,
            per_iter_s: vec![1e-3, 2e-3],
            mean_s: 1.5e-3,
            elapsed_virtual_ps: elapsed,
            spec: spec.clone(),
            metrics_json: None,
        }
    }

    #[test]
    fn append_load_and_group() {
        let dir = std::env::temp_dir().join("svc_store_test_append");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(dir.join("results.jsonl")).unwrap();
        let spec_a = JobSpec::new("a", ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]);
        let spec_b = JobSpec::new("b", ClusterPreset::Summit { nodes: 1 }, 2, [96, 96, 96]);
        store.append(&result(1, "a", &spec_a, 1000)).unwrap();
        store.append(&result(2, "b", &spec_b, 2000)).unwrap();
        store.append(&result(3, "a2", &spec_a, 1000)).unwrap();
        let all = store.load().unwrap();
        assert_eq!(all.len(), 3);
        let groups = store.by_digest().unwrap();
        assert_eq!(groups.len(), 2);
        let ga = store.query(&spec_a.digest()).unwrap().unwrap();
        assert_eq!(ga.results.len(), 2);
        assert!(ga.bit_identical());
        assert!(ga.mean_run_ms() > 10.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergent_virtual_times_fail_the_audit() {
        let dir = std::env::temp_dir().join("svc_store_test_divergent");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(dir.join("results.jsonl")).unwrap();
        let spec = JobSpec::new("a", ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]);
        store.append(&result(1, "a", &spec, 1000)).unwrap();
        store.append(&result(2, "a", &spec, 1001)).unwrap();
        let g = store.query(&spec.digest()).unwrap().unwrap();
        assert!(!g.bit_identical());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_line_is_loud() {
        let dir = std::env::temp_dir().join("svc_store_test_malformed");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("results.jsonl");
        let store = ResultStore::open(&path).unwrap();
        let spec = JobSpec::new("a", ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]);
        store.append(&result(1, "a", &spec, 1000)).unwrap();
        std::fs::write(&path, "not json\n").unwrap();
        assert!(store.load().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
