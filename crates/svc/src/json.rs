//! Minimal JSON reader/writer for the service wire format.
//!
//! The workspace builds with no registry access, so — like
//! `MetricsReport::to_json` — the job-spec and job-result envelopes are
//! (de)serialized by hand. This module is the shared machinery: a small
//! recursive-descent parser into a [`Json`] value tree, plus escape/format
//! helpers for the writers. It supports exactly the JSON the service
//! emits: objects, arrays, strings, finite numbers, booleans and `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the wire format never needs
    /// integers beyond 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keyed by a sorted map: the service's writers emit keys
    /// in a fixed order, and lookups by name are what readers need.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Returns `Err` with a short position-
/// annotated message on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs never appear in this wire
                            // format (writers escape only control chars).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Append `s` to `out` with JSON string escaping (same rules as
/// `MetricsReport::to_json`).
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Shortest round-trip formatting for a finite `f64` (`null` otherwise,
/// which the wire format never produces for in-range values).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e1, "x\ny", true, null], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-25.0));
        assert_eq!(a[2].as_str(), Some("x\ny"));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(v.get("b"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("1e999").is_err(), "inf rejected");
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2 \"quoted\" back\\slash \u{1} é";
        let parsed = parse(&quote(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn u64_conversion_guards() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
