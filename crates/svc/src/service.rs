//! The long-running job service: bounded worker pool, weighted-fair
//! cross-tenant scheduling, admission control, timeout/cancellation, and
//! panic isolation.
//!
//! # Scheduling contract
//!
//! Jobs queue per tenant; dispatch order across tenants is **stride
//! scheduling**: each tenant carries a `pass` value advanced by
//! `STRIDE_UNIT / weight` per dispatched job, and the dispatcher always
//! picks the non-empty tenant with the smallest `(pass, name)`. Under
//! contention a tenant with weight 2 is therefore dispatched twice as
//! often as a tenant with weight 1; within a tenant, jobs run FIFO. A
//! tenant that goes idle re-enters at the current virtual time (its pass
//! is clamped up), so sleeping does not bank credit.
//!
//! # Admission control
//!
//! [`Service::submit`] rejects — synchronously, with an explicit
//! [`Rejection`] — rather than blocking: malformed specs
//! ([`crate::spec::JobSpec::validate`]) and submissions past the bounded
//! queue's capacity never reach a worker.
//!
//! # Isolation
//!
//! Each job runs one simulated world on one worker thread
//! ([`crate::runner::execute_with`]); worlds share nothing. A panicking
//! world (bug, or the `poison_at_iter` chaos hook) is caught on the
//! worker after the runtime's poison teardown, recorded as
//! [`JobStatus::Panicked`], and the worker keeps serving — one poisoned
//! world never takes down the service. Because each world is
//! single-threaded-deterministic, a job's committed virtual times are
//! bit-identical whether it runs alone or beside 63 neighbors, on any
//! worker count.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::result::{JobResult, JobStatus};
use crate::runner::{execute_with, RunHooks, CANCEL_PANIC};
use crate::spec::JobSpec;
use crate::store::ResultStore;

/// Pass-advance numerator for stride scheduling. A tenant of weight `w`
/// advances `STRIDE_UNIT / w` per dispatched job.
pub const STRIDE_UNIT: u64 = 1 << 24;

/// How often the monitor thread scans deadlines.
const MONITOR_TICK: Duration = Duration::from_millis(2);

/// Service construction knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (concurrent worlds). Clamped to ≥ 1.
    pub workers: usize,
    /// Admission bound: maximum jobs *queued* (excluding running).
    /// Submissions beyond it are rejected with [`Rejection::QueueFull`].
    pub queue_capacity: usize,
    /// Timeout applied to specs that do not carry their own.
    pub default_timeout_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_capacity: 256,
            default_timeout_ms: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is full; resubmit later.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The spec failed validation (or the service is shutting down).
    Invalid(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

/// Monotonic counters describing service activity so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled via their handle.
    pub cancelled: u64,
    /// Jobs that hit their wall-clock deadline.
    pub timed_out: u64,
    /// Jobs whose world panicked (worker survived).
    pub panicked: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected by validation.
    pub rejected_invalid: u64,
}

/// Completion slot + cancellation flag shared between a handle and the
/// worker executing the job.
struct JobCell {
    slot: Mutex<Option<JobResult>>,
    done_cv: Condvar,
    /// Held as its own `Arc` so the runner can poll the same flag the
    /// monitor and handle set ([`RunHooks::cancel`]).
    cancel: Arc<AtomicBool>,
}

/// A claim on one submitted job.
pub struct JobHandle {
    id: u64,
    cell: Arc<JobCell>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job finishes (any [`JobStatus`]) and return its
    /// result.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.cell.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.cell.done_cv.wait(slot).unwrap();
        }
    }

    /// The result, if the job has finished.
    pub fn try_result(&self) -> Option<JobResult> {
        self.cell.slot.lock().unwrap().clone()
    }

    /// Request cancellation: a queued job is resolved as
    /// [`JobStatus::Cancelled`] at dispatch; a running job unwinds at its
    /// next iteration boundary.
    pub fn cancel(&self) {
        self.cell.cancel.store(true, Ordering::Relaxed);
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    cell: Arc<JobCell>,
    submitted: Instant,
    deadline: Option<Instant>,
}

struct Tenant {
    weight: u64,
    pass: u64,
    queue: VecDeque<QueuedJob>,
}

#[derive(Default)]
struct Sched {
    tenants: BTreeMap<String, Tenant>,
    /// Jobs sitting in tenant queues (admission bound counts these).
    queued: usize,
    /// Virtual time: the pass of the most recently dispatched job, used
    /// to clamp re-activating tenants so idling banks no credit.
    vtime: u64,
    /// Deadline watch list: every live (queued or running) job with its
    /// optional deadline, scanned by the monitor.
    watched: Vec<(u64, Option<Instant>, Arc<JobCell>)>,
    shutdown: bool,
}

struct Shared {
    sched: Mutex<Sched>,
    work_cv: Condvar,
    stats: Mutex<ServiceStats>,
    store: Option<ResultStore>,
    next_id: AtomicU64,
    queue_capacity: usize,
    default_timeout_ms: Option<u64>,
}

/// The running service. Dropping it (or calling [`Service::shutdown`])
/// drains queued jobs and joins the workers.
pub struct Service {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Start a service with `config` and no result persistence.
    pub fn new(config: ServiceConfig) -> Service {
        Self::build(config, None)
    }

    /// Start a service persisting every finished job to `store`.
    pub fn with_store(config: ServiceConfig, store: ResultStore) -> Service {
        Self::build(config, Some(store))
    }

    fn build(config: ServiceConfig, store: Option<ResultStore>) -> Service {
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched::default()),
            work_cv: Condvar::new(),
            stats: Mutex::new(ServiceStats::default()),
            store,
            next_id: AtomicU64::new(1),
            queue_capacity: config.queue_capacity,
            default_timeout_ms: config.default_timeout_ms,
        });
        let mut threads = Vec::new();
        for w in 0..config.workers.max(1) {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("svc-worker-{w}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker"),
            );
        }
        {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("svc-monitor".into())
                    .spawn(move || monitor_loop(&sh))
                    .expect("spawn monitor"),
            );
        }
        Service { shared, threads }
    }

    /// Submit a job. Returns a handle on admission, or an explicit
    /// [`Rejection`] (validation failure / queue full) without blocking.
    pub fn submit(&self, mut spec: JobSpec) -> Result<JobHandle, Rejection> {
        if let Err(msg) = spec.validate() {
            self.shared.stats.lock().unwrap().rejected_invalid += 1;
            return Err(Rejection::Invalid(msg));
        }
        if spec.timeout_ms.is_none() {
            spec.timeout_ms = self.shared.default_timeout_ms;
        }
        let now = Instant::now();
        let deadline = spec.timeout_ms.map(|ms| now + Duration::from_millis(ms));
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(JobCell {
            slot: Mutex::new(None),
            done_cv: Condvar::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        });
        {
            let mut sched = self.shared.sched.lock().unwrap();
            if sched.shutdown {
                self.shared.stats.lock().unwrap().rejected_invalid += 1;
                return Err(Rejection::Invalid("service is shut down".into()));
            }
            if sched.queued >= self.shared.queue_capacity {
                self.shared.stats.lock().unwrap().rejected_queue_full += 1;
                return Err(Rejection::QueueFull {
                    capacity: self.shared.queue_capacity,
                });
            }
            let vtime = sched.vtime;
            let tenant = sched
                .tenants
                .entry(spec.tenant.clone())
                .or_insert_with(|| Tenant {
                    weight: spec.weight.max(1) as u64,
                    pass: vtime,
                    queue: VecDeque::new(),
                });
            if tenant.queue.is_empty() {
                // Re-activation: idling must not bank credit.
                tenant.pass = tenant.pass.max(vtime);
            }
            tenant.queue.push_back(QueuedJob {
                id,
                spec,
                cell: Arc::clone(&cell),
                submitted: now,
                deadline,
            });
            sched.queued += 1;
            sched.watched.push((id, deadline, Arc::clone(&cell)));
        }
        self.shared.stats.lock().unwrap().submitted += 1;
        self.shared.work_cv.notify_one();
        Ok(JobHandle { id, cell })
    }

    /// Counters so far.
    pub fn stats(&self) -> ServiceStats {
        *self.shared.stats.lock().unwrap()
    }

    /// Jobs currently queued (excluding running).
    pub fn queued(&self) -> usize {
        self.shared.sched.lock().unwrap().queued
    }

    /// Drain queued jobs, stop the workers, and join them.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut sched = self.shared.sched.lock().unwrap();
            sched.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Pick the next job: the non-empty tenant with the smallest
/// `(pass, name)`, FIFO within the tenant.
fn pick_next(sched: &mut Sched) -> Option<QueuedJob> {
    let name = sched
        .tenants
        .iter()
        .filter(|(_, t)| !t.queue.is_empty())
        .min_by(|(an, a), (bn, b)| a.pass.cmp(&b.pass).then_with(|| an.cmp(bn)))
        .map(|(n, _)| n.clone())?;
    let tenant = sched.tenants.get_mut(&name).unwrap();
    let job = tenant.queue.pop_front().unwrap();
    sched.vtime = tenant.pass;
    tenant.pass += STRIDE_UNIT / tenant.weight;
    sched.queued -= 1;
    Some(job)
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut sched = shared.sched.lock().unwrap();
            loop {
                if let Some(job) = pick_next(&mut sched) {
                    break Some(job);
                }
                if sched.shutdown {
                    break None;
                }
                sched = shared.work_cv.wait(sched).unwrap();
            }
        };
        let Some(job) = job else { return };
        run_one(shared, job);
    }
}

/// Execute one dispatched job with panic isolation and classify the
/// outcome.
fn run_one(shared: &Shared, job: QueuedJob) {
    let dispatched = Instant::now();
    let queue_ms = dispatched.duration_since(job.submitted).as_secs_f64() * 1e3;
    let deadline_passed = |at: Instant| job.deadline.is_some_and(|d| at >= d);

    let (status, error, outcome) = if job.cell.cancel.load(Ordering::Relaxed) {
        // Resolved before running: monitor timeout or explicit cancel.
        let status = if deadline_passed(dispatched) {
            JobStatus::TimedOut
        } else {
            JobStatus::Cancelled
        };
        (status, None, None)
    } else {
        let hooks = RunHooks {
            cancel: Some(Arc::clone(&job.cell.cancel)),
            ..Default::default()
        };
        let spec = job.spec.clone();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_with(&spec, hooks)))
        {
            Ok(outcome) => (JobStatus::Completed, None, Some(outcome)),
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                if msg == CANCEL_PANIC {
                    let status = if deadline_passed(Instant::now()) {
                        JobStatus::TimedOut
                    } else {
                        JobStatus::Cancelled
                    };
                    (status, None, None)
                } else {
                    (JobStatus::Panicked, Some(msg), None)
                }
            }
        }
    };
    let finished = Instant::now();
    let run_ms = finished.duration_since(dispatched).as_secs_f64() * 1e3;
    let total_ms = finished.duration_since(job.submitted).as_secs_f64() * 1e3;

    let result = JobResult {
        schema_version: detsim::SCHEMA_VERSION,
        job_id: job.id,
        tenant: job.spec.tenant.clone(),
        digest: job.spec.digest(),
        status,
        error,
        queue_ms,
        run_ms,
        total_ms,
        per_iter_s: outcome
            .as_ref()
            .map(|o| o.per_iter.clone())
            .unwrap_or_default(),
        mean_s: outcome.as_ref().map(|o| o.mean).unwrap_or(0.0),
        elapsed_virtual_ps: outcome.as_ref().map(|o| o.elapsed_virtual_ps).unwrap_or(0),
        spec: job.spec,
        metrics_json: outcome.and_then(|o| o.metrics).map(|m| m.to_json()),
    };

    if let Some(store) = &shared.store {
        if let Err(e) = store.append(&result) {
            eprintln!("svc: result store append failed: {e}");
        }
    }
    {
        let mut stats = shared.stats.lock().unwrap();
        match status {
            JobStatus::Completed => stats.completed += 1,
            JobStatus::Cancelled => stats.cancelled += 1,
            JobStatus::TimedOut => stats.timed_out += 1,
            JobStatus::Panicked => stats.panicked += 1,
        }
    }
    {
        let mut sched = shared.sched.lock().unwrap();
        sched.watched.retain(|(id, _, _)| *id != job.id);
    }
    let mut slot = job.cell.slot.lock().unwrap();
    *slot = Some(result);
    job.cell.done_cv.notify_all();
}

/// The monitor: periodically flips the cancel flag of any watched job
/// past its deadline; workers classify the resulting unwind (or pre-run
/// check) as [`JobStatus::TimedOut`].
fn monitor_loop(shared: &Shared) {
    loop {
        {
            let sched = shared.sched.lock().unwrap();
            if sched.shutdown {
                return;
            }
            let now = Instant::now();
            for (_, deadline, cell) in &sched.watched {
                if deadline.is_some_and(|d| now >= d) {
                    cell.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        std::thread::sleep(MONITOR_TICK);
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterPreset;

    fn enqueue(sched: &mut Sched, tenant: &str, weight: u64, id: u64) {
        let vtime = sched.vtime;
        let t = sched
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                weight,
                pass: vtime,
                queue: VecDeque::new(),
            });
        if t.queue.is_empty() {
            t.pass = t.pass.max(vtime);
        }
        t.queue.push_back(QueuedJob {
            id,
            spec: JobSpec::new(tenant, ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]),
            cell: Arc::new(JobCell {
                slot: Mutex::new(None),
                done_cv: Condvar::new(),
                cancel: Arc::new(AtomicBool::new(false)),
            }),
            submitted: Instant::now(),
            deadline: None,
        });
        sched.queued += 1;
    }

    #[test]
    fn stride_dispatch_is_weighted_fair() {
        let mut sched = Sched::default();
        // Tenant "a" has twice the weight of "b"; submit 9 jobs each.
        for i in 0..9 {
            enqueue(&mut sched, "a", 2, 100 + i);
            enqueue(&mut sched, "b", 1, 200 + i);
        }
        let mut first_six = Vec::new();
        for _ in 0..6 {
            first_six.push(pick_next(&mut sched).unwrap().spec.tenant.clone());
        }
        let a_count = first_six.iter().filter(|t| *t == "a").count();
        assert_eq!(
            a_count, 4,
            "weight-2 tenant should get 2/3 of early dispatches: {first_six:?}"
        );
        // Drain fully; FIFO within each tenant.
        let mut a_ids = Vec::new();
        while let Some(job) = pick_next(&mut sched) {
            if job.spec.tenant == "a" {
                a_ids.push(job.id);
            }
        }
        let mut sorted = a_ids.clone();
        sorted.sort_unstable();
        assert_eq!(a_ids, sorted, "FIFO within tenant");
        assert_eq!(sched.queued, 0);
    }

    #[test]
    fn idle_tenant_banks_no_credit() {
        let mut sched = Sched::default();
        // "busy" works alone for a while, advancing virtual time.
        for i in 0..8 {
            enqueue(&mut sched, "busy", 1, i);
        }
        for _ in 0..8 {
            pick_next(&mut sched).unwrap();
        }
        // "idle" (registered long ago at pass 0 conceptually) submits now:
        // its pass is clamped to vtime, so it must not monopolize.
        enqueue(&mut sched, "idle", 1, 100);
        enqueue(&mut sched, "idle", 1, 101);
        enqueue(&mut sched, "busy", 1, 8);
        enqueue(&mut sched, "busy", 1, 9);
        let order: Vec<String> = std::iter::from_fn(|| pick_next(&mut sched))
            .map(|j| j.spec.tenant.clone())
            .collect();
        // Interleaved, not idle-idle-busy-busy: equal weights means no
        // tenant is dispatched twice in a row while the other waits.
        assert_eq!(order.len(), 4);
        assert!(
            order.windows(2).all(|w| w[0] != w[1]),
            "re-activated tenant must not drain first: {order:?}"
        );
    }

    #[test]
    fn rejection_display_is_informative() {
        let r = Rejection::QueueFull { capacity: 4 };
        assert_eq!(r.to_string(), "queue full (capacity 4)");
        let r = Rejection::Invalid("bad domain".into());
        assert!(r.to_string().contains("bad domain"));
    }
}
