//! Spec → world construction and execution.
//!
//! [`execute_with`] is the one place in the tree that turns a declarative
//! workload description into a running simulated world: resolve the
//! cluster preset, install the fault schedule, build the distributed
//! domain inside the world, and run the measured exchange loop under the
//! paper's timing protocol (barrier, `wtime`, exchange, max across
//! ranks). The bench harness (`stencil_bench::measure_exchange`) and the
//! job service both delegate here, so every figure binary and every
//! service job measures through identical construction code.
//!
//! Each world runs on the coroutine runtime inside the calling OS thread
//! and shares nothing with other worlds, so a job's committed virtual
//! times are bit-identical no matter how many neighbors run concurrently
//! on other workers — the property `crates/svc/tests/determinism.rs`
//! pins.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use faultsim::FaultSchedule;
use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DomainBuilder, Method, Neighborhood, Placement};

use crate::spec::{FaultScenario, JobSpec};

/// Panic payload used to unwind a world whose job was cancelled (timeout
/// or explicit cancel). The service classifies unwinds carrying this
/// message as cancellation rather than a crashed job.
pub const CANCEL_PANIC: &str = "svc: job cancelled";

/// Panic payload produced by the [`JobSpec::poison_at_iter`] chaos hook.
pub const POISON_PANIC: &str = "svc: poisoned world (poison_at_iter hook)";

/// Caller-supplied extras that are not part of the declarative spec.
#[derive(Clone, Default)]
pub struct RunHooks {
    /// Precomputed per-node placements: skips the in-world placement
    /// phase (bench sweeps measuring one geometry under several method
    /// tiers pay the QAP cost once).
    pub preplaced: Option<Arc<Vec<Placement>>>,
    /// Replace the spec's named fault scenario with an explicit schedule
    /// (bench scenarios that aim faults at computed targets).
    pub fault_override: Option<FaultSchedule>,
    /// Cooperative cancellation: checked by every rank at each iteration
    /// boundary; when set, the world unwinds with [`CANCEL_PANIC`].
    pub cancel: Option<Arc<AtomicBool>>,
}

/// What one executed job measured.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Per-iteration max-across-ranks exchange seconds (virtual time).
    pub per_iter: Vec<f64>,
    /// Mean of `per_iter`.
    pub mean: f64,
    /// Human-readable plan summary from rank 0.
    pub plan: String,
    /// Metrics snapshot, if the spec asked for one.
    pub metrics: Option<detsim::MetricsReport>,
    /// Final virtual time of the world, picoseconds — the primary
    /// bit-identity anchor for determinism comparisons.
    pub elapsed_virtual_ps: u64,
}

/// Run the job described by `spec` to completion in a fresh world on the
/// calling thread. See [`execute_with`].
pub fn execute(spec: &JobSpec) -> RunOutcome {
    execute_with(spec, RunHooks::default())
}

/// Run `spec` with caller hooks. Panics propagate (after the runtime's
/// poison teardown) when a rank program panics — including cancellation
/// unwinds ([`CANCEL_PANIC`]) and the poison chaos hook
/// ([`POISON_PANIC`]); the service catches and classifies them.
pub fn execute_with(spec: &JobSpec, hooks: RunHooks) -> RunOutcome {
    let num_ranks = spec.num_ranks();
    let times: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let plan_out: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let t2 = Arc::clone(&times);
    let p2 = Arc::clone(&plan_out);
    // Rank kill/respawn scenarios cannot be installed at world start: the
    // kill could land mid-build (empirical probes, the IPC handshake),
    // where the domain has no recovery protocol. Defer the whole schedule
    // to a quiet point inside the rank program instead — the measured
    // iterations then run against the re-handshaked, post-respawn world.
    // Fault overrides (bench-aimed schedules) bypass the deferral.
    let spec_faults = spec.faults;
    let rank_fault = hooks.fault_override.is_none()
        && matches!(
            spec_faults,
            FaultScenario::KillRespawn { .. } | FaultScenario::OomRespawn { .. }
        );
    let kill_at_us = match spec_faults {
        FaultScenario::KillRespawn { at_us, .. } | FaultScenario::OomRespawn { at_us, .. } => at_us,
        _ => 0,
    };
    let faults = if rank_fault {
        FaultSchedule::new()
    } else {
        hooks
            .fault_override
            .unwrap_or_else(|| spec.faults.schedule())
    };
    // The MPI stack's transport capabilities follow the requested method
    // set: asking for persistent/partitioned rungs implies a stack that
    // provides them. No new wire fields — `methods_bits` already carries it.
    let world = WorldConfig::new(spec.cluster.cluster_spec(), spec.ranks_per_node)
        .cuda_aware(spec.cuda_aware)
        .mpi_persistent(spec.methods.contains(Method::PersistentStaged))
        .mpi_partitioned(spec.methods.contains(Method::PartitionedStaged))
        .data_mode(DataMode::Virtual)
        .metrics(spec.collect_metrics)
        .faults(faults);
    let domain = spec.domain;
    let radius = spec.radius;
    let quantities = spec.quantities;
    let methods = spec.methods;
    let placement = spec.placement;
    let consolidate = spec.consolidate;
    let iters = spec.iters;
    let poison_at_iter = spec.poison_at_iter;
    let preplaced = hooks.preplaced;
    let cancel = hooks.cancel;
    let report = run_world(world, move |ctx| {
        let mut builder = DomainBuilder::new(domain)
            .radius(radius)
            .quantities(quantities)
            .neighborhood(Neighborhood::Full26)
            .methods(methods)
            .placement(placement)
            .consolidate(consolidate);
        if let Some(pre) = &preplaced {
            builder = builder.preplaced(Arc::clone(pre));
        }
        let mut dom = builder.build(ctx);
        if ctx.rank() == 0 {
            *p2.lock() = dom.plan_summary().to_string();
        }
        if rank_fault {
            let me = ctx.rank();
            ctx.barrier();
            if me == 0 {
                let now = ctx.sim().with_kernel(|k| k.now());
                ctx.install_faults_at(&spec_faults.schedule(), now);
            }
            ctx.barrier();
            ctx.sim()
                .delay(detsim::SimDuration::from_micros(kill_at_us + 10));
            if !ctx.is_alive(me) {
                dom.abandon_local_state(ctx);
                ctx.await_respawn(me);
            } else {
                ctx.await_all_alive();
            }
            ctx.barrier();
            dom.rejoin_after_respawn(ctx);
        }
        let mut mine = Vec::with_capacity(iters);
        for i in 0..iters {
            if let Some(flag) = &cancel {
                if flag.load(Ordering::Relaxed) {
                    std::panic::panic_any(CANCEL_PANIC);
                }
            }
            if poison_at_iter == Some(i) && ctx.rank() == 0 {
                std::panic::panic_any(POISON_PANIC);
            }
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
        }
        t2.lock()[ctx.rank()] = mine;
    });
    let per_rank = times.lock().clone();
    let per_iter: Vec<f64> = (0..spec.iters)
        .map(|i| per_rank.iter().map(|r| r[i]).fold(0.0f64, f64::max))
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let plan = plan_out.lock().clone();
    RunOutcome {
        per_iter,
        mean,
        plan,
        metrics: report.metrics,
        elapsed_virtual_ps: report.elapsed.picos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterPreset, FaultScenario};

    fn tiny() -> JobSpec {
        JobSpec::new("t", ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]).iters(2)
    }

    #[test]
    fn executes_and_reports_virtual_times() {
        let out = execute(&tiny());
        assert_eq!(out.per_iter.len(), 2);
        assert!(out.mean > 0.0);
        assert!(out.elapsed_virtual_ps > 0);
        assert!(!out.plan.is_empty());
    }

    #[test]
    fn named_fault_scenario_slows_the_run() {
        // Full node so every device is placed, and a domain big enough
        // that pack/unpack time is visible next to link latency.
        let spec =
            JobSpec::new("t", ClusterPreset::Summit { nodes: 1 }, 6, [384, 384, 384]).iters(2);
        let clean = execute(&spec);
        let faulted = execute(&spec.clone().faults(FaultScenario::StragglerGpu {
            device: 2,
            at_us: 0,
            speed_factor: 0.05,
        }));
        assert!(
            faulted.mean > clean.mean * 1.5,
            "straggler must bite: clean {} faulted {}",
            clean.mean,
            faulted.mean
        );
    }

    #[test]
    fn metrics_requested_means_metrics_returned() {
        let out = execute(&tiny().collect_metrics(true));
        let json = out.metrics.expect("metrics requested").to_json();
        assert!(json.contains("\"exchange\""), "{json}");
    }

    #[test]
    fn cancel_flag_unwinds_with_cancel_payload() {
        let flag = Arc::new(AtomicBool::new(true));
        let hooks = RunHooks {
            cancel: Some(Arc::clone(&flag)),
            ..Default::default()
        };
        let spec = tiny();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_with(&spec, hooks)))
                .expect_err("pre-set cancel flag must unwind the world");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, CANCEL_PANIC);
    }

    #[test]
    fn poison_hook_unwinds_with_poison_payload() {
        let spec = tiny().poison_at_iter(1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(&spec)))
            .expect_err("poison hook must unwind the world");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, POISON_PANIC);
    }
}
