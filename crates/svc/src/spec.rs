//! Declarative job specifications — the service's request wire format.
//!
//! A [`JobSpec`] names everything needed to stand up one simulated world
//! and measure a halo-exchange workload on it: the cluster preset and
//! shape, the domain, the exchange method tier, the placement-ladder rung,
//! a named fault scenario, and scheduling attributes (tenant, fair-share
//! weight, timeout). Specs round-trip through JSON ([`JobSpec::to_json`] /
//! [`JobSpec::from_json`]) and carry a stable workload digest
//! ([`JobSpec::digest`]) so persisted results from different runs — and
//! different PRs — can be compared per workload. The schema is documented
//! in `docs/SERVICE.md`.

use faultsim::{FaultSchedule, Scenario};
use stencil_core::{Methods, PlacementStrategy};
use topo::presets::{dgx_cluster, fat_cluster, pcie_workstation_cluster};
use topo::summit::summit_cluster;
use topo::ClusterSpec;

use crate::json::{self, Json};

/// A named cluster shape a job can request. Each variant resolves to a
/// [`ClusterSpec`] via one of the `topo` presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterPreset {
    /// Summit-style nodes (2 sockets × 1 triad × 3 GPUs, 6 GPUs/node).
    Summit {
        /// Node count.
        nodes: usize,
    },
    /// DGX-style nodes (8 GPUs on a uniform NVSwitch).
    Dgx {
        /// Node count.
        nodes: usize,
    },
    /// Generalized fat nodes (`topo::presets::fat_cluster`); node sizes
    /// beyond 8 GPUs exercise the placement ladder's heuristic rungs.
    Fat {
        /// Node count.
        nodes: usize,
        /// CPU sockets per node.
        sockets: usize,
        /// NVLink islands per socket.
        islands_per_socket: usize,
        /// GPUs per island.
        gpus_per_island: usize,
    },
    /// A single PCIe workstation with `gpus` host-routed GPUs.
    Workstation {
        /// GPU count.
        gpus: usize,
    },
}

impl ClusterPreset {
    /// Resolve to the concrete machine description.
    pub fn cluster_spec(&self) -> ClusterSpec {
        match *self {
            ClusterPreset::Summit { nodes } => summit_cluster(nodes),
            ClusterPreset::Dgx { nodes } => dgx_cluster(nodes),
            ClusterPreset::Fat {
                nodes,
                sockets,
                islands_per_socket,
                gpus_per_island,
            } => fat_cluster(nodes, sockets, islands_per_socket, gpus_per_island),
            ClusterPreset::Workstation { gpus } => pcie_workstation_cluster(gpus),
        }
    }

    /// Node count of the resolved cluster.
    pub fn nodes(&self) -> usize {
        match *self {
            ClusterPreset::Summit { nodes } | ClusterPreset::Dgx { nodes } => nodes,
            ClusterPreset::Fat { nodes, .. } => nodes,
            ClusterPreset::Workstation { .. } => 1,
        }
    }

    /// GPUs per node of the resolved cluster.
    pub fn gpus_per_node(&self) -> usize {
        match *self {
            ClusterPreset::Summit { .. } => 6,
            ClusterPreset::Dgx { .. } => 8,
            ClusterPreset::Fat {
                sockets,
                islands_per_socket,
                gpus_per_island,
                ..
            } => sockets * islands_per_socket * gpus_per_island,
            ClusterPreset::Workstation { gpus } => gpus,
        }
    }

    fn write_json(&self, out: &mut String) {
        match *self {
            ClusterPreset::Summit { nodes } => {
                out.push_str(&format!("{{\"preset\":\"summit\",\"nodes\":{nodes}}}"))
            }
            ClusterPreset::Dgx { nodes } => {
                out.push_str(&format!("{{\"preset\":\"dgx\",\"nodes\":{nodes}}}"))
            }
            ClusterPreset::Fat {
                nodes,
                sockets,
                islands_per_socket,
                gpus_per_island,
            } => out.push_str(&format!(
                "{{\"preset\":\"fat\",\"nodes\":{nodes},\"sockets\":{sockets},\
                 \"islands_per_socket\":{islands_per_socket},\
                 \"gpus_per_island\":{gpus_per_island}}}"
            )),
            ClusterPreset::Workstation { gpus } => {
                out.push_str(&format!("{{\"preset\":\"workstation\",\"gpus\":{gpus}}}"))
            }
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let preset = v
            .get("preset")
            .and_then(Json::as_str)
            .ok_or("cluster.preset missing")?;
        let nodes = || {
            v.get("nodes")
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("cluster.nodes missing for preset {preset}"))
        };
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("cluster.{k} missing for preset {preset}"))
        };
        Ok(match preset {
            "summit" => ClusterPreset::Summit { nodes: nodes()? },
            "dgx" => ClusterPreset::Dgx { nodes: nodes()? },
            "fat" => ClusterPreset::Fat {
                nodes: nodes()?,
                sockets: field("sockets")?,
                islands_per_socket: field("islands_per_socket")?,
                gpus_per_island: field("gpus_per_island")?,
            },
            "workstation" => ClusterPreset::Workstation {
                gpus: field("gpus")?,
            },
            other => return Err(format!("unknown cluster preset {other}")),
        })
    }
}

/// A named, declarative fault scenario — the JSON-able face of the
/// `faultsim` scenario constructors. All times are virtual microseconds
/// from the start of the run.
///
/// Wire names come from the [`faultsim::Scenario`] registry (via
/// [`FaultScenario::scenario`]), so the strings a spec carries are exactly
/// the strings the `chaos` bench CLI accepts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultScenario {
    /// No faults: the run is bit-identical to one without fault injection.
    None,
    /// `FaultSchedule::flapping_nic` — node `node`'s NIC stalls and
    /// recovers `flaps` times.
    FlappingNic {
        /// Node whose NIC flaps.
        node: usize,
        /// Virtual µs until the first stall.
        first_down_us: u64,
        /// Stall duration, virtual µs.
        down_us: u64,
        /// Recovery duration between stalls, virtual µs.
        up_us: u64,
        /// Number of stall/recover cycles.
        flaps: usize,
    },
    /// `FaultSchedule::straggler_gpu` — one device's engines run at
    /// `speed_factor` of nominal from `at_us` on.
    StragglerGpu {
        /// Global device id.
        device: usize,
        /// Virtual µs until the slowdown.
        at_us: u64,
        /// Speed multiplier in (0, 1].
        speed_factor: f64,
    },
    /// `FaultSchedule::degraded_triad` — the NVLink joining GPUs `a`/`b`
    /// of `node` drops to `bandwidth_factor` of nominal at `at_us`.
    DegradedTriad {
        /// Node holding the pair.
        node: usize,
        /// First node-local GPU.
        a: usize,
        /// Second node-local GPU.
        b: usize,
        /// Virtual µs until the degradation.
        at_us: u64,
        /// Bandwidth multiplier in (0, 1].
        bandwidth_factor: f64,
    },
    /// `FaultSchedule::cascading` — triad degradation, NIC flap, then a
    /// straggler device, `spacing_us` apart.
    Cascading {
        /// Node holding the triad pair and flapping NIC.
        node: usize,
        /// First node-local GPU of the pair.
        a: usize,
        /// Second node-local GPU of the pair.
        b: usize,
        /// Global device id of the straggler.
        device: usize,
        /// Virtual µs until the first fault.
        at_us: u64,
        /// Virtual µs between the faults.
        spacing_us: u64,
    },
    /// `FaultSchedule::kill_respawn` — rank `rank` dies at `at_us` and
    /// respawns `down_us` later; its channels are revoked, pending
    /// operations resolve as revoked, and the rejoin re-handshakes.
    KillRespawn {
        /// World rank that dies.
        rank: usize,
        /// Virtual µs until the kill.
        at_us: u64,
        /// Virtual µs the rank stays down before respawning.
        down_us: u64,
    },
    /// `FaultSchedule::oom_respawn` — device `device`'s memory limit
    /// shrinks to `mem_factor` of nominal at `at_us`, killing `rank`; the
    /// limit restores and the rank respawns `down_us` later.
    OomRespawn {
        /// Global device id that OOMs.
        device: usize,
        /// World rank killed by the OOM.
        rank: usize,
        /// Virtual µs until the shrink + kill.
        at_us: u64,
        /// Virtual µs before the limit restores and the rank respawns.
        down_us: u64,
        /// Memory-limit multiplier in (0, 1) while down.
        mem_factor: f64,
    },
}

impl FaultScenario {
    /// The registry entry this spec variant instantiates — the single
    /// source of its wire/CLI name.
    pub fn scenario(&self) -> Scenario {
        match self {
            FaultScenario::None => Scenario::None,
            FaultScenario::FlappingNic { .. } => Scenario::FlappingNic,
            FaultScenario::StragglerGpu { .. } => Scenario::StragglerGpu,
            FaultScenario::DegradedTriad { .. } => Scenario::DegradedTriad,
            FaultScenario::Cascading { .. } => Scenario::Cascading,
            FaultScenario::KillRespawn { .. } => Scenario::KillRespawn,
            FaultScenario::OomRespawn { .. } => Scenario::OomRespawn,
        }
    }

    /// Resolve to an installable schedule.
    pub fn schedule(&self) -> FaultSchedule {
        use detsim::SimDuration;
        match *self {
            FaultScenario::None => FaultSchedule::new(),
            FaultScenario::FlappingNic {
                node,
                first_down_us,
                down_us,
                up_us,
                flaps,
            } => FaultSchedule::flapping_nic(
                node,
                SimDuration::from_micros(first_down_us),
                SimDuration::from_micros(down_us),
                SimDuration::from_micros(up_us),
                flaps,
            ),
            FaultScenario::StragglerGpu {
                device,
                at_us,
                speed_factor,
            } => {
                FaultSchedule::straggler_gpu(device, SimDuration::from_micros(at_us), speed_factor)
            }
            FaultScenario::DegradedTriad {
                node,
                a,
                b,
                at_us,
                bandwidth_factor,
            } => FaultSchedule::degraded_triad(
                node,
                a,
                b,
                SimDuration::from_micros(at_us),
                bandwidth_factor,
            ),
            FaultScenario::Cascading {
                node,
                a,
                b,
                device,
                at_us,
                spacing_us,
            } => FaultSchedule::cascading(
                node,
                a,
                b,
                device,
                SimDuration::from_micros(at_us),
                SimDuration::from_micros(spacing_us),
            ),
            FaultScenario::KillRespawn {
                rank,
                at_us,
                down_us,
            } => FaultSchedule::kill_respawn(
                rank,
                SimDuration::from_micros(at_us),
                SimDuration::from_micros(down_us),
            ),
            FaultScenario::OomRespawn {
                device,
                rank,
                at_us,
                down_us,
                mem_factor,
            } => FaultSchedule::oom_respawn(
                device,
                rank,
                SimDuration::from_micros(at_us),
                SimDuration::from_micros(down_us),
                mem_factor,
            ),
        }
    }

    fn write_json(&self, out: &mut String) {
        let name = self.scenario().name();
        match *self {
            FaultScenario::None => out.push_str(&format!("{{\"scenario\":\"{name}\"}}")),
            FaultScenario::FlappingNic {
                node,
                first_down_us,
                down_us,
                up_us,
                flaps,
            } => out.push_str(&format!(
                "{{\"scenario\":\"{name}\",\"node\":{node},\
                 \"first_down_us\":{first_down_us},\"down_us\":{down_us},\
                 \"up_us\":{up_us},\"flaps\":{flaps}}}"
            )),
            FaultScenario::StragglerGpu {
                device,
                at_us,
                speed_factor,
            } => out.push_str(&format!(
                "{{\"scenario\":\"{name}\",\"device\":{device},\
                 \"at_us\":{at_us},\"speed_factor\":{}}}",
                json::fmt_f64(speed_factor)
            )),
            FaultScenario::DegradedTriad {
                node,
                a,
                b,
                at_us,
                bandwidth_factor,
            } => out.push_str(&format!(
                "{{\"scenario\":\"{name}\",\"node\":{node},\"a\":{a},\
                 \"b\":{b},\"at_us\":{at_us},\"bandwidth_factor\":{}}}",
                json::fmt_f64(bandwidth_factor)
            )),
            FaultScenario::Cascading {
                node,
                a,
                b,
                device,
                at_us,
                spacing_us,
            } => out.push_str(&format!(
                "{{\"scenario\":\"{name}\",\"node\":{node},\"a\":{a},\"b\":{b},\
                 \"device\":{device},\"at_us\":{at_us},\"spacing_us\":{spacing_us}}}"
            )),
            FaultScenario::KillRespawn {
                rank,
                at_us,
                down_us,
            } => out.push_str(&format!(
                "{{\"scenario\":\"{name}\",\"rank\":{rank},\
                 \"at_us\":{at_us},\"down_us\":{down_us}}}"
            )),
            FaultScenario::OomRespawn {
                device,
                rank,
                at_us,
                down_us,
                mem_factor,
            } => out.push_str(&format!(
                "{{\"scenario\":\"{name}\",\"device\":{device},\"rank\":{rank},\
                 \"at_us\":{at_us},\"down_us\":{down_us},\"mem_factor\":{}}}",
                json::fmt_f64(mem_factor)
            )),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let scenario = v
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("faults.scenario missing")?;
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("faults.{k} missing for scenario {scenario}"))
        };
        let f = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("faults.{k} missing for scenario {scenario}"))
        };
        let registered = Scenario::parse(scenario).ok_or_else(|| {
            let known: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
            format!(
                "unknown fault scenario {scenario} (known: {})",
                known.join(", ")
            )
        })?;
        Ok(match registered {
            Scenario::None => FaultScenario::None,
            Scenario::FlappingNic => FaultScenario::FlappingNic {
                node: u("node")? as usize,
                first_down_us: u("first_down_us")?,
                down_us: u("down_us")?,
                up_us: u("up_us")?,
                flaps: u("flaps")? as usize,
            },
            Scenario::StragglerGpu => FaultScenario::StragglerGpu {
                device: u("device")? as usize,
                at_us: u("at_us")?,
                speed_factor: f("speed_factor")?,
            },
            Scenario::DegradedFatNode => {
                return Err(format!(
                    "scenario {scenario} is a bench preset; express it as \
                     degraded-triad on a fat cluster preset"
                ))
            }
            Scenario::DegradedTriad => FaultScenario::DegradedTriad {
                node: u("node")? as usize,
                a: u("a")? as usize,
                b: u("b")? as usize,
                at_us: u("at_us")?,
                bandwidth_factor: f("bandwidth_factor")?,
            },
            Scenario::Cascading => FaultScenario::Cascading {
                node: u("node")? as usize,
                a: u("a")? as usize,
                b: u("b")? as usize,
                device: u("device")? as usize,
                at_us: u("at_us")?,
                spacing_us: u("spacing_us")?,
            },
            Scenario::KillRespawn => FaultScenario::KillRespawn {
                rank: u("rank")? as usize,
                at_us: u("at_us")?,
                down_us: u("down_us")?,
            },
            Scenario::OomRespawn => FaultScenario::OomRespawn {
                device: u("device")? as usize,
                rank: u("rank")? as usize,
                at_us: u("at_us")?,
                down_us: u("down_us")?,
                mem_factor: f("mem_factor")?,
            },
        })
    }
}

/// One job: everything needed to build a simulated world from scratch and
/// measure `iters` halo exchanges on it, plus the scheduling attributes
/// the service uses (tenant, weight, timeout).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Tenant the job belongs to (fair scheduling is across tenants).
    pub tenant: String,
    /// Fair-share weight of this tenant (≥ 1); a tenant with weight 2 is
    /// dispatched twice as often as one with weight 1 under contention.
    /// Weights are per-tenant: the service uses the weight carried by the
    /// tenant's first observed job.
    pub weight: u32,
    /// Cluster preset and shape.
    pub cluster: ClusterPreset,
    /// MPI ranks per node (must divide the preset's GPUs per node).
    pub ranks_per_node: usize,
    /// Global domain extents.
    pub domain: [u64; 3],
    /// Stencil radius.
    pub radius: u64,
    /// Quantities exchanged per cell.
    pub quantities: usize,
    /// Enabled exchange methods.
    pub methods: Methods,
    /// Whether the simulated MPI accepts device pointers.
    pub cuda_aware: bool,
    /// Staged-message consolidation (paper §VI extension).
    pub consolidate: bool,
    /// Placement-ladder rung.
    pub placement: PlacementStrategy,
    /// Measured exchange iterations.
    pub iters: usize,
    /// Named fault scenario installed at virtual time zero.
    pub faults: FaultScenario,
    /// Collect the metrics registry and embed its JSON in the result.
    pub collect_metrics: bool,
    /// Wall-clock timeout; a job past its deadline is cancelled (while
    /// queued: immediately; while running: at the next iteration boundary).
    pub timeout_ms: Option<u64>,
    /// Chaos hook: rank 0 panics at the start of this measured iteration,
    /// poisoning the world. Exists so panic isolation is testable end to
    /// end; serialized like any other field.
    pub poison_at_iter: Option<usize>,
}

impl JobSpec {
    /// A spec with the paper's defaults (radius 2, four quantities,
    /// node-aware placement, all non-CUDA-aware methods, 3 iterations).
    pub fn new(
        tenant: &str,
        cluster: ClusterPreset,
        ranks_per_node: usize,
        domain: [u64; 3],
    ) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            weight: 1,
            cluster,
            ranks_per_node,
            domain,
            radius: 2,
            quantities: 4,
            methods: Methods::all(),
            cuda_aware: false,
            consolidate: false,
            placement: PlacementStrategy::NodeAware,
            iters: 3,
            faults: FaultScenario::None,
            collect_metrics: false,
            timeout_ms: None,
            poison_at_iter: None,
        }
    }

    /// Set the fair-share weight.
    pub fn weight(mut self, w: u32) -> Self {
        self.weight = w;
        self
    }

    /// Set the enabled methods.
    pub fn methods(mut self, m: Methods) -> Self {
        self.methods = m;
        self
    }

    /// Enable CUDA-aware MPI.
    pub fn cuda_aware(mut self, on: bool) -> Self {
        self.cuda_aware = on;
        self
    }

    /// Enable staged-message consolidation.
    pub fn consolidate(mut self, on: bool) -> Self {
        self.consolidate = on;
        self
    }

    /// Set the placement strategy.
    pub fn placement(mut self, p: PlacementStrategy) -> Self {
        self.placement = p;
        self
    }

    /// Set the measured iteration count.
    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n;
        self
    }

    /// Set the stencil radius.
    pub fn radius(mut self, r: u64) -> Self {
        self.radius = r;
        self
    }

    /// Install a named fault scenario.
    pub fn faults(mut self, f: FaultScenario) -> Self {
        self.faults = f;
        self
    }

    /// Collect metrics for this job.
    pub fn collect_metrics(mut self, on: bool) -> Self {
        self.collect_metrics = on;
        self
    }

    /// Set the wall-clock timeout.
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Arm the poison chaos hook.
    pub fn poison_at_iter(mut self, iter: usize) -> Self {
        self.poison_at_iter = Some(iter);
        self
    }

    /// Total MPI ranks the job's world will hold.
    pub fn num_ranks(&self) -> usize {
        self.cluster.nodes() * self.ranks_per_node
    }

    /// Admission-control validation: reject obviously unbuildable worlds
    /// before they reach a worker. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() {
            return Err("tenant must be non-empty".into());
        }
        if self.weight == 0 {
            return Err("weight must be >= 1".into());
        }
        if self.iters == 0 {
            return Err("iters must be >= 1".into());
        }
        if self.cluster.nodes() == 0 {
            return Err("cluster must have >= 1 node".into());
        }
        let gpn = self.cluster.gpus_per_node();
        if gpn == 0 {
            return Err("cluster must have >= 1 GPU per node".into());
        }
        if self.ranks_per_node == 0 || !gpn.is_multiple_of(self.ranks_per_node) {
            return Err(format!(
                "ranks_per_node ({}) must divide GPUs per node ({gpn})",
                self.ranks_per_node
            ));
        }
        if self.domain.contains(&0) {
            return Err("domain extents must be positive".into());
        }
        let subdomains = (self.cluster.nodes() * gpn) as u64;
        if self.domain.iter().product::<u64>() < subdomains {
            return Err(format!(
                "domain {:?} too small for {subdomains} GPU subdomains",
                self.domain
            ));
        }
        if self.quantities == 0 {
            return Err("quantities must be >= 1".into());
        }
        if let Some(0) = self.timeout_ms {
            return Err("timeout_ms must be positive when set".into());
        }
        Ok(())
    }

    /// Serialize as a single-line JSON object (fixed key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"tenant\":");
        out.push_str(&json::quote(&self.tenant));
        out.push_str(&format!(",\"weight\":{},\"cluster\":", self.weight));
        self.cluster.write_json(&mut out);
        out.push_str(&format!(
            ",\"ranks_per_node\":{},\"domain\":[{},{},{}],\"radius\":{},\
             \"quantities\":{},\"methods_bits\":{},\"cuda_aware\":{},\
             \"consolidate\":{},\"placement\":\"{}\",\"iters\":{},\"faults\":",
            self.ranks_per_node,
            self.domain[0],
            self.domain[1],
            self.domain[2],
            self.radius,
            self.quantities,
            self.methods.bits(),
            self.cuda_aware,
            self.consolidate,
            self.placement.name(),
            self.iters,
        ));
        self.faults.write_json(&mut out);
        out.push_str(&format!(",\"collect_metrics\":{}", self.collect_metrics));
        if let Some(ms) = self.timeout_ms {
            out.push_str(&format!(",\"timeout_ms\":{ms}"));
        }
        if let Some(i) = self.poison_at_iter {
            out.push_str(&format!(",\"poison_at_iter\":{i}"));
        }
        out.push('}');
        out
    }

    /// Parse a spec from JSON text (the inverse of [`JobSpec::to_json`];
    /// optional fields may be omitted).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        Self::from_value(&v)
    }

    /// Parse a spec from an already-parsed JSON value.
    pub fn from_value(v: &Json) -> Result<Self, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("spec.{k} missing or not a non-negative integer"))
        };
        let b = |k: &str| {
            v.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("spec.{k} missing or not a boolean"))
        };
        let domain = v
            .get("domain")
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 3)
            .ok_or("spec.domain must be a 3-element array")?;
        let dom = |i: usize| {
            domain[i]
                .as_u64()
                .ok_or_else(|| format!("spec.domain[{i}] not a non-negative integer"))
        };
        let placement_name = v
            .get("placement")
            .and_then(Json::as_str)
            .ok_or("spec.placement missing")?;
        Ok(JobSpec {
            tenant: v
                .get("tenant")
                .and_then(Json::as_str)
                .ok_or("spec.tenant missing")?
                .to_string(),
            weight: u("weight")? as u32,
            cluster: ClusterPreset::from_json(v.get("cluster").ok_or("spec.cluster missing")?)?,
            ranks_per_node: u("ranks_per_node")? as usize,
            domain: [dom(0)?, dom(1)?, dom(2)?],
            radius: u("radius")?,
            quantities: u("quantities")? as usize,
            methods: Methods::from_bits(u("methods_bits")? as u8)
                .ok_or("spec.methods_bits has unknown bits")?,
            cuda_aware: b("cuda_aware")?,
            consolidate: b("consolidate")?,
            placement: PlacementStrategy::parse(placement_name)
                .ok_or_else(|| format!("unknown placement {placement_name}"))?,
            iters: u("iters")? as usize,
            faults: FaultScenario::from_json(v.get("faults").ok_or("spec.faults missing")?)?,
            collect_metrics: b("collect_metrics")?,
            timeout_ms: match v.get("timeout_ms") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_u64().ok_or("spec.timeout_ms not an integer")?),
            },
            poison_at_iter: match v.get("poison_at_iter") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_u64().ok_or("spec.poison_at_iter not an integer")? as usize),
            },
        })
    }

    /// Stable digest of the *workload* (everything that determines the
    /// virtual-time result: cluster, geometry, methods, placement, faults,
    /// iterations) — excluding scheduling attributes (tenant, weight,
    /// timeout), the metrics toggle, and the poison hook, none of which
    /// change committed virtual times. Two results with equal digests are
    /// directly comparable across runs and PRs.
    pub fn digest(&self) -> String {
        let mut canonical = String::new();
        self.cluster.write_json(&mut canonical);
        canonical.push_str(&format!(
            "|{}|{:?}|{}|{}|{}|{}|{}|{}|{}|",
            self.ranks_per_node,
            self.domain,
            self.radius,
            self.quantities,
            self.methods.bits(),
            self.cuda_aware,
            self.consolidate,
            self.placement.name(),
            self.iters,
        ));
        self.faults.write_json(&mut canonical);
        // FNV-1a 64.
        let mut h: u64 = 0xcbf29ce484222325;
        for byte in canonical.as_bytes() {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec::new("sweep", ClusterPreset::Summit { nodes: 2 }, 6, [96, 96, 96])
            .weight(3)
            .methods(Methods::staged_only().with_colocated())
            .placement(PlacementStrategy::GreedySwap)
            .iters(2)
            .faults(FaultScenario::FlappingNic {
                node: 0,
                first_down_us: 100,
                down_us: 500,
                up_us: 250,
                flaps: 3,
            })
            .timeout_ms(30_000)
    }

    #[test]
    fn spec_json_round_trips() {
        for spec in [
            sample(),
            JobSpec::new("t", ClusterPreset::Dgx { nodes: 1 }, 8, [64, 64, 64]),
            JobSpec::new("t", ClusterPreset::Summit { nodes: 4 }, 6, [96, 96, 96])
                .methods(Methods::staged_only().with_persistent()),
            JobSpec::new("t", ClusterPreset::Summit { nodes: 4 }, 6, [96, 96, 96])
                .methods(Methods::all().with_persistent().with_partitioned()),
            JobSpec::new("t", ClusterPreset::Workstation { gpus: 4 }, 4, [64, 64, 64])
                .faults(FaultScenario::StragglerGpu {
                    device: 2,
                    at_us: 0,
                    speed_factor: 0.25,
                })
                .poison_at_iter(1),
            JobSpec::new(
                "t",
                ClusterPreset::Fat {
                    nodes: 2,
                    sockets: 2,
                    islands_per_socket: 2,
                    gpus_per_island: 3,
                },
                12,
                [96, 96, 96],
            )
            .cuda_aware(true)
            .consolidate(true)
            .collect_metrics(true)
            .faults(FaultScenario::Cascading {
                node: 0,
                a: 0,
                b: 1,
                device: 2,
                at_us: 100,
                spacing_us: 300,
            }),
            JobSpec::new("t", ClusterPreset::Summit { nodes: 2 }, 6, [96, 96, 96]).faults(
                FaultScenario::KillRespawn {
                    rank: 4,
                    at_us: 50,
                    down_us: 300,
                },
            ),
            JobSpec::new("t", ClusterPreset::Summit { nodes: 2 }, 6, [96, 96, 96]).faults(
                FaultScenario::OomRespawn {
                    device: 8,
                    rank: 4,
                    at_us: 50,
                    down_us: 300,
                    mem_factor: 0.05,
                },
            ),
        ] {
            let json = spec.to_json();
            let back = JobSpec::from_json(&json).unwrap_or_else(|e| panic!("{e}: {json}"));
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn wire_names_come_from_the_faultsim_registry() {
        // The name a spec serializes under must be the registry's; parsing
        // a registered name either yields the matching variant or a
        // deliberate rejection — never "unknown".
        let variants = [
            FaultScenario::None,
            FaultScenario::FlappingNic {
                node: 0,
                first_down_us: 1,
                down_us: 2,
                up_us: 3,
                flaps: 1,
            },
            FaultScenario::StragglerGpu {
                device: 0,
                at_us: 0,
                speed_factor: 0.5,
            },
            FaultScenario::DegradedTriad {
                node: 0,
                a: 0,
                b: 1,
                at_us: 0,
                bandwidth_factor: 0.5,
            },
            FaultScenario::Cascading {
                node: 0,
                a: 0,
                b: 1,
                device: 2,
                at_us: 0,
                spacing_us: 1,
            },
            FaultScenario::KillRespawn {
                rank: 0,
                at_us: 0,
                down_us: 1,
            },
            FaultScenario::OomRespawn {
                device: 0,
                rank: 0,
                at_us: 0,
                down_us: 1,
                mem_factor: 0.5,
            },
        ];
        for v in variants {
            let mut out = String::new();
            v.write_json(&mut out);
            let name = v.scenario().name();
            assert!(
                out.contains(&format!("\"scenario\":\"{name}\"")),
                "{out} should carry registry name {name}"
            );
            assert_eq!(Scenario::parse(name), Some(v.scenario()));
        }
        // The bench-only fat-node preset is registered but deliberately
        // not a wire scenario.
        let err =
            FaultScenario::from_json(&json::parse("{\"scenario\":\"degraded-fat-node\"}").unwrap())
                .unwrap_err();
        assert!(err.contains("bench preset"), "{err}");
        let err =
            FaultScenario::from_json(&json::parse("{\"scenario\":\"nope\"}").unwrap()).unwrap_err();
        assert!(err.contains("unknown fault scenario"), "{err}");
    }

    #[test]
    fn transport_method_bits_survive_wire_and_affect_digest() {
        // PERSISTENT / PARTITIONED ride the existing `methods_bits` field:
        // no schema bump, but specs differing only in transport must hash
        // (and therefore cache) differently.
        let a = sample();
        let mut b = sample();
        b.methods = b.methods.with_persistent().with_partitioned();
        assert_ne!(a.digest(), b.digest());
        let json = b.to_json();
        let back = JobSpec::from_json(&json).unwrap();
        assert_eq!(back, b);
        assert!(back
            .methods
            .contains(stencil_core::Method::PersistentStaged));
        assert!(back
            .methods
            .contains(stencil_core::Method::PartitionedStaged));
    }

    #[test]
    fn digest_ignores_scheduling_attributes() {
        let a = sample();
        let mut b = sample();
        b.tenant = "other".into();
        b.weight = 1;
        b.timeout_ms = None;
        b.collect_metrics = true;
        assert_eq!(a.digest(), b.digest());
        let mut c = sample();
        c.domain = [97, 96, 96];
        assert_ne!(a.digest(), c.digest());
        let mut d = sample();
        d.faults = FaultScenario::None;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn validation_rejects_unbuildable_worlds() {
        assert!(sample().validate().is_ok());
        let mut bad = sample();
        bad.ranks_per_node = 4; // does not divide 6
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.iters = 0;
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.weight = 0;
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.domain = [1, 1, 1]; // 12 subdomains cannot tile 1 cell
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.tenant = String::new();
        assert!(bad.validate().is_err());
        let mut bad = sample();
        bad.timeout_ms = Some(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn preset_shapes_resolve() {
        assert_eq!(ClusterPreset::Summit { nodes: 4 }.gpus_per_node(), 6);
        assert_eq!(ClusterPreset::Dgx { nodes: 2 }.gpus_per_node(), 8);
        assert_eq!(
            ClusterPreset::Fat {
                nodes: 1,
                sockets: 2,
                islands_per_socket: 2,
                gpus_per_island: 3
            }
            .gpus_per_node(),
            12
        );
        assert_eq!(ClusterPreset::Workstation { gpus: 4 }.nodes(), 1);
        let cs = ClusterPreset::Summit { nodes: 3 }.cluster_spec();
        assert_eq!(cs.num_nodes, 3);
    }
}
