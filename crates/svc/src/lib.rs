//! Stencil-as-a-service: a multi-tenant job layer over the deterministic
//! stencil simulator.
//!
//! This crate turns the one-shot simulation harness into a long-running
//! service: callers describe work declaratively as a [`JobSpec`] (domain
//! geometry, cluster preset, placement strategy, fault scenario, exchange
//! methods), submit it to a [`Service`], and receive a [`JobResult`]
//! envelope carrying the committed virtual-time measurements. Many
//! simulated worlds run concurrently on a bounded worker pool; each world
//! stays single-threaded-deterministic, so a job's results are
//! bit-identical whether it runs alone or alongside 63 neighbors on any
//! worker count (pinned by `tests/determinism.rs`).
//!
//! The pieces:
//!
//! - [`spec`] — the typed job description and its JSON wire format.
//! - [`runner`] — the one spec→world construction path; the bench
//!   harness delegates here too.
//! - [`service`] — bounded worker pool with weighted-fair (stride)
//!   cross-tenant scheduling, admission control, per-job
//!   timeout/cancellation, and panic isolation.
//! - [`result`] — the response envelope with exact-bit virtual times.
//! - [`store`] — append-only JSONL persistence plus cross-run
//!   comparison queries keyed by workload digest.
//! - [`json`] — the crate's tiny dependency-free JSON reader/writer.
//!
//! See `docs/SERVICE.md` for the full contract and `loadgen` (in the
//! bench crate) for the throughput/latency benchmark.
//!
//! # Example
//!
//! ```
//! use svc::{ClusterPreset, JobSpec, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig {
//!     workers: 2,
//!     queue_capacity: 16,
//!     default_timeout_ms: None,
//! });
//! let spec = JobSpec::new("demo", ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]);
//! let handle = service.submit(spec).expect("admitted");
//! let result = handle.wait();
//! assert_eq!(result.status, svc::JobStatus::Completed);
//! assert!(result.elapsed_virtual_ps > 0);
//! service.shutdown();
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod result;
pub mod runner;
pub mod service;
pub mod spec;
pub mod store;

pub use result::{JobResult, JobStatus};
pub use runner::{execute, execute_with, RunHooks, RunOutcome, CANCEL_PANIC, POISON_PANIC};
pub use service::{JobHandle, Rejection, Service, ServiceConfig, ServiceStats};
pub use spec::{ClusterPreset, FaultScenario, JobSpec};
pub use store::{DigestGroup, ResultStore};
