//! The per-job result envelope — the service's response wire format.
//!
//! A [`JobResult`] records how a job terminated ([`JobStatus`]), its
//! wall-clock latency split (queued vs running), and — for completed jobs
//! — the committed virtual-time measurements, carried both as readable
//! floats and as exact bit patterns so persisted results can be compared
//! bit-for-bit across runs, worker counts, and PRs. Envelopes serialize
//! to single-line JSON (JSONL-friendly; see [`crate::store::ResultStore`])
//! and carry the same `schema_version` as `MetricsReport` JSON.

use crate::json::{self, Json};
use crate::spec::JobSpec;

/// How a job terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; measurements are valid.
    Completed,
    /// Cancelled via its handle before or during execution.
    Cancelled,
    /// Exceeded its wall-clock timeout (queued or running).
    TimedOut,
    /// The world panicked (a bug in the workload or a poisoned spec);
    /// the worker pool survived and `error` holds the panic message.
    Panicked,
}

impl JobStatus {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed-out",
            JobStatus::Panicked => "panicked",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobStatus> {
        Some(match s {
            "completed" => JobStatus::Completed,
            "cancelled" => JobStatus::Cancelled,
            "timed-out" => JobStatus::TimedOut,
            "panicked" => JobStatus::Panicked,
            _ => return None,
        })
    }
}

/// Everything the service reports about one finished job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Artifact format version (`detsim::SCHEMA_VERSION`).
    pub schema_version: u32,
    /// Service-assigned id, unique within a service instance.
    pub job_id: u64,
    /// Tenant that submitted the job.
    pub tenant: String,
    /// Workload digest ([`JobSpec::digest`]) for cross-run comparison.
    pub digest: String,
    /// How the job terminated.
    pub status: JobStatus,
    /// Panic message for [`JobStatus::Panicked`]; `None` otherwise.
    pub error: Option<String>,
    /// Wall-clock milliseconds spent queued (submit → dispatch).
    pub queue_ms: f64,
    /// Wall-clock milliseconds spent executing.
    pub run_ms: f64,
    /// Wall-clock milliseconds submit → completion.
    pub total_ms: f64,
    /// Per-iteration max-across-ranks exchange seconds (virtual time).
    /// Empty unless [`JobStatus::Completed`].
    pub per_iter_s: Vec<f64>,
    /// Mean of `per_iter_s` (0 unless completed).
    pub mean_s: f64,
    /// Final virtual time of the world, picoseconds (0 unless completed).
    pub elapsed_virtual_ps: u64,
    /// The spec that produced this result, echoed for self-containment.
    pub spec: JobSpec,
    /// `MetricsReport::to_json()` of the job's world, if the spec set
    /// `collect_metrics`. Stored verbatim: string equality is the
    /// determinism comparison.
    pub metrics_json: Option<String>,
}

impl JobResult {
    /// Serialize as one line of JSON (no interior newlines).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema_version\":{},\"job_id\":{},\"tenant\":{},\"digest\":\"{}\",\
             \"status\":\"{}\"",
            self.schema_version,
            self.job_id,
            json::quote(&self.tenant),
            self.digest,
            self.status.as_str(),
        ));
        if let Some(e) = &self.error {
            out.push_str(",\"error\":");
            out.push_str(&json::quote(e));
        }
        out.push_str(&format!(
            ",\"queue_ms\":{},\"run_ms\":{},\"total_ms\":{}",
            json::fmt_f64(self.queue_ms),
            json::fmt_f64(self.run_ms),
            json::fmt_f64(self.total_ms)
        ));
        // Virtual times ride as exact bit patterns (hex) next to readable
        // floats; the bits are authoritative for determinism comparisons.
        out.push_str(",\"per_iter_bits\":[");
        for (i, v) in self.per_iter_s.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{:016x}\"", v.to_bits()));
        }
        out.push_str("],\"per_iter_s\":[");
        for (i, v) in self.per_iter_s.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::fmt_f64(*v));
        }
        out.push_str(&format!(
            "],\"mean_s\":{},\"elapsed_virtual_ps\":{},\"spec\":{}",
            json::fmt_f64(self.mean_s),
            self.elapsed_virtual_ps,
            self.spec.to_json()
        ));
        if let Some(m) = &self.metrics_json {
            out.push_str(",\"metrics\":");
            out.push_str(&json::quote(m));
        }
        out.push('}');
        debug_assert!(!out.contains('\n'), "JSONL line must be newline-free");
        out
    }

    /// Parse one envelope from JSON text (inverse of
    /// [`JobResult::to_json`]). Virtual times are reconstructed from the
    /// bit patterns, so a round-trip is exact.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("result.{k} missing"))
        };
        let f = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result.{k} missing"))
        };
        let s = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("result.{k} missing"))
        };
        let per_iter_s: Vec<f64> = v
            .get("per_iter_bits")
            .and_then(Json::as_arr)
            .ok_or("result.per_iter_bits missing")?
            .iter()
            .map(|b| {
                b.as_str()
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                    .map(f64::from_bits)
                    .ok_or("result.per_iter_bits entry malformed".to_string())
            })
            .collect::<Result<_, _>>()?;
        let status = JobStatus::parse(s("status")?)
            .ok_or_else(|| format!("unknown status {}", s("status").unwrap()))?;
        Ok(JobResult {
            schema_version: u("schema_version")? as u32,
            job_id: u("job_id")?,
            tenant: s("tenant")?.to_string(),
            digest: s("digest")?.to_string(),
            status,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            queue_ms: f("queue_ms")?,
            run_ms: f("run_ms")?,
            total_ms: f("total_ms")?,
            per_iter_s,
            mean_s: f("mean_s")?,
            elapsed_virtual_ps: u("elapsed_virtual_ps")?,
            spec: JobSpec::from_value(v.get("spec").ok_or("result.spec missing")?)?,
            metrics_json: v.get("metrics").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Whether two results are the same committed virtual-time outcome,
    /// bit for bit: per-iteration times, final virtual time, and (when
    /// both carry metrics) the full metrics registry.
    pub fn bit_identical(&self, other: &JobResult) -> bool {
        self.elapsed_virtual_ps == other.elapsed_virtual_ps
            && self.per_iter_s.len() == other.per_iter_s.len()
            && self
                .per_iter_s
                .iter()
                .zip(other.per_iter_s.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && match (&self.metrics_json, &other.metrics_json) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterPreset;

    fn sample() -> JobResult {
        JobResult {
            schema_version: detsim::SCHEMA_VERSION,
            job_id: 17,
            tenant: "sweep".into(),
            digest: "0123456789abcdef".into(),
            status: JobStatus::Completed,
            error: None,
            queue_ms: 1.25,
            run_ms: 40.5,
            total_ms: 41.75,
            per_iter_s: vec![0.0031, 0.0030517578125],
            mean_s: 0.00307587890625,
            elapsed_virtual_ps: 123_456_789_012,
            spec: JobSpec::new("sweep", ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]),
            metrics_json: Some("{\"schema_version\":1,\"metrics\":[]}".into()),
        }
    }

    #[test]
    fn result_json_round_trips_exactly() {
        let r = sample();
        let line = r.to_json();
        assert!(!line.contains('\n'));
        let back = JobResult::from_json(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(back, r);
        assert!(back.bit_identical(&r));
    }

    #[test]
    fn panicked_result_round_trips_error() {
        let mut r = sample();
        r.status = JobStatus::Panicked;
        r.error = Some("boom: \"quoted\"\nline2".into());
        r.per_iter_s.clear();
        r.mean_s = 0.0;
        r.elapsed_virtual_ps = 0;
        r.metrics_json = None;
        let back = JobResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn bit_identity_is_strict() {
        let a = sample();
        let mut b = sample();
        b.per_iter_s[1] = f64::from_bits(b.per_iter_s[1].to_bits() + 1);
        assert!(!a.bit_identical(&b));
        let mut c = sample();
        c.elapsed_virtual_ps += 1;
        assert!(!a.bit_identical(&c));
        let mut d = sample();
        d.metrics_json = Some("{\"schema_version\":1,\"metrics\":[1]}".into());
        assert!(!a.bit_identical(&d));
        // wall-clock fields are free to differ
        let mut e = sample();
        e.queue_ms = 99.0;
        e.job_id = 1;
        assert!(a.bit_identical(&e));
    }

    #[test]
    fn status_names_round_trip() {
        for s in [
            JobStatus::Completed,
            JobStatus::Cancelled,
            JobStatus::TimedOut,
            JobStatus::Panicked,
        ] {
            assert_eq!(JobStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobStatus::parse("nope"), None);
    }
}
