//! Admission control, timeout/cancellation, and panic isolation — the
//! service's failure-handling contract.

use svc::{ClusterPreset, JobSpec, JobStatus, Rejection, Service, ServiceConfig};

fn tiny(tenant: &str) -> JobSpec {
    JobSpec::new(tenant, ClusterPreset::Summit { nodes: 1 }, 2, [64, 64, 64]).iters(2)
}

/// A workload slow enough (in wall-clock) to still be running or queued
/// when we act on it: big domain, many iterations.
fn slow(tenant: &str) -> JobSpec {
    JobSpec::new(
        tenant,
        ClusterPreset::Summit { nodes: 2 },
        6,
        [384, 384, 384],
    )
    .iters(50)
}

#[test]
fn queue_full_is_an_explicit_rejection() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        default_timeout_ms: None,
    });
    // Block the single worker with a slow job, then fill the queue.
    let blocker = service.submit(slow("blocker")).expect("blocker admitted");
    let mut queued = Vec::new();
    let mut rejections = 0;
    // Submit well past capacity; everything beyond the bound must be
    // rejected with QueueFull, not dropped or blocked.
    for i in 0..12 {
        match service.submit(tiny(&format!("t{i}"))) {
            Ok(h) => queued.push(h),
            Err(Rejection::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejections += 1;
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert!(rejections > 0, "queue bound never hit");
    assert!(queued.len() <= 2 + 1, "queue overflowed its bound");
    blocker.cancel();
    for h in queued {
        h.wait();
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected_queue_full, rejections);
}

#[test]
fn invalid_spec_is_rejected_before_queueing() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        default_timeout_ms: None,
    });
    // 5 ranks do not divide Summit's 6 GPUs per node.
    let bad = JobSpec::new("t", ClusterPreset::Summit { nodes: 1 }, 5, [64, 64, 64]);
    match service.submit(bad) {
        Err(Rejection::Invalid(msg)) => assert!(!msg.is_empty()),
        Err(other) => panic!("expected Invalid, got {other:?}"),
        Ok(_) => panic!("invalid spec was admitted"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected_invalid, 1);
    assert_eq!(stats.submitted, 0);
}

#[test]
fn timeout_cancels_a_running_job() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        default_timeout_ms: None,
    });
    let h = service.submit(slow("t").timeout_ms(50)).expect("admitted");
    let r = h.wait();
    assert_eq!(r.status, JobStatus::TimedOut, "error: {:?}", r.error);
    assert!(r.error.is_none(), "timeout is not an error: {:?}", r.error);
    // The pool survives and serves the next job normally.
    let r2 = service.submit(tiny("after")).expect("admitted").wait();
    assert_eq!(r2.status, JobStatus::Completed);
    let stats = service.shutdown();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn explicit_cancel_resolves_queued_and_running_jobs() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        default_timeout_ms: None,
    });
    let running = service.submit(slow("a")).expect("admitted");
    let queued = service.submit(tiny("b")).expect("admitted");
    queued.cancel();
    running.cancel();
    assert_eq!(running.wait().status, JobStatus::Cancelled);
    assert_eq!(queued.wait().status, JobStatus::Cancelled);
    let stats = service.shutdown();
    assert_eq!(stats.cancelled, 2);
}

#[test]
fn panicked_world_is_isolated_and_the_pool_survives() {
    let service = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        default_timeout_ms: None,
    });
    // A poisoned world in the middle of healthy neighbors.
    let before: Vec<_> = (0..3)
        .map(|i| service.submit(tiny(&format!("b{i}"))).unwrap())
        .collect();
    let poisoned = service
        .submit(tiny("poison").poison_at_iter(1))
        .expect("admitted");
    let after: Vec<_> = (0..3)
        .map(|i| service.submit(tiny(&format!("a{i}"))).unwrap())
        .collect();

    let r = poisoned.wait();
    assert_eq!(r.status, JobStatus::Panicked);
    let msg = r.error.expect("panicked result carries the message");
    assert!(msg.contains("poisoned world"), "unexpected payload: {msg}");
    assert!(r.per_iter_s.is_empty(), "no measurements from a dead world");

    for h in before.iter().chain(after.iter()) {
        assert_eq!(h.wait().status, JobStatus::Completed);
    }
    let stats = service.shutdown();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 6);
}

#[test]
fn weighted_tenants_share_the_pool_fairly() {
    // One worker, jobs queued behind a blocker: dispatch order is pure
    // scheduler policy. A weight-3 tenant should finish its backlog ~3x
    // as fast as a weight-1 tenant under contention.
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        default_timeout_ms: None,
    });
    let blocker = service.submit(slow("zz-blocker")).expect("admitted");
    let heavy: Vec<_> = (0..6)
        .map(|_| service.submit(tiny("heavy").weight(3)).unwrap())
        .collect();
    let light: Vec<_> = (0..6)
        .map(|_| service.submit(tiny("light").weight(1)).unwrap())
        .collect();
    blocker.cancel();
    let heavy_results: Vec<_> = heavy.iter().map(|h| h.wait()).collect();
    let light_results: Vec<_> = light.iter().map(|h| h.wait()).collect();
    service.shutdown();
    // Queue delay measures dispatch order: the heavy tenant's mean wait
    // must be clearly below the light tenant's.
    let mean = |rs: &[svc::JobResult]| rs.iter().map(|r| r.queue_ms).sum::<f64>() / rs.len() as f64;
    let heavy_wait = mean(&heavy_results);
    let light_wait = mean(&light_results);
    assert!(
        heavy_wait < light_wait,
        "weight-3 tenant should wait less: heavy {heavy_wait:.1} ms vs light {light_wait:.1} ms"
    );
}
