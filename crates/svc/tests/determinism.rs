//! The service's critical correctness property: a job's committed
//! virtual times and metrics are **bit-identical** whether the job runs
//! alone or alongside a saturated pool of neighbors, on any worker
//! count. Each simulated world is single-threaded-deterministic and
//! shares nothing with its neighbors, so OS-level scheduling of the
//! worker pool must never leak into results.

use svc::{ClusterPreset, FaultScenario, JobResult, JobSpec, Service, ServiceConfig};

/// The probe workload whose bits we compare across pool conditions.
fn probe() -> JobSpec {
    JobSpec::new("probe", ClusterPreset::Summit { nodes: 1 }, 6, [96, 96, 96])
        .iters(3)
        .collect_metrics(true)
}

/// Neighbor workloads that saturate the pool around the probe — a mix of
/// shapes, placements, and an injected fault.
fn neighbors() -> Vec<JobSpec> {
    vec![
        JobSpec::new(
            "n1",
            ClusterPreset::Workstation { gpus: 2 },
            2,
            [64, 64, 64],
        )
        .iters(2),
        JobSpec::new("n2", ClusterPreset::Summit { nodes: 2 }, 6, [96, 96, 96])
            .cuda_aware(true)
            .iters(2),
        JobSpec::new("n3", ClusterPreset::Dgx { nodes: 1 }, 8, [96, 96, 96])
            .placement(stencil_core::PlacementStrategy::Hierarchical)
            .iters(2),
        JobSpec::new("n4", ClusterPreset::Summit { nodes: 1 }, 6, [64, 64, 64])
            .faults(FaultScenario::StragglerGpu {
                device: 1,
                at_us: 0,
                speed_factor: 0.5,
            })
            .iters(2),
    ]
}

fn run_solo() -> JobResult {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        default_timeout_ms: None,
    });
    let r = service.submit(probe()).expect("admitted").wait();
    service.shutdown();
    r
}

/// Run the probe amid `63` neighbor jobs on `workers` workers and return
/// the probe's result.
fn run_saturated(workers: usize) -> JobResult {
    let service = Service::new(ServiceConfig {
        workers,
        queue_capacity: 128,
        default_timeout_ms: None,
    });
    let mut handles = Vec::new();
    let pool = neighbors();
    // 32 neighbors in front, the probe, then 31 behind.
    for i in 0..32 {
        handles.push(service.submit(pool[i % pool.len()].clone()).unwrap());
    }
    let probe_handle = service.submit(probe()).expect("probe admitted");
    for i in 0..31 {
        handles.push(service.submit(pool[i % pool.len()].clone()).unwrap());
    }
    let r = probe_handle.wait();
    for h in handles {
        let n = h.wait();
        assert_eq!(
            n.status,
            svc::JobStatus::Completed,
            "neighbor failed: {:?}",
            n.error
        );
    }
    service.shutdown();
    r
}

fn assert_same_bits(a: &JobResult, b: &JobResult, what: &str) {
    assert_eq!(
        a.elapsed_virtual_ps, b.elapsed_virtual_ps,
        "{what}: final virtual time diverged"
    );
    let a_bits: Vec<u64> = a.per_iter_s.iter().map(|v| v.to_bits()).collect();
    let b_bits: Vec<u64> = b.per_iter_s.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: per-iteration bits diverged");
    assert_eq!(a.metrics_json, b.metrics_json, "{what}: metrics diverged");
    assert!(a.bit_identical(b), "{what}: bit_identical() disagrees");
}

#[test]
fn solo_vs_saturated_pool_is_bit_identical() {
    let solo = run_solo();
    assert_eq!(solo.status, svc::JobStatus::Completed);
    assert!(solo.metrics_json.is_some(), "probe asked for metrics");
    let saturated = run_saturated(4);
    assert_eq!(saturated.status, svc::JobStatus::Completed);
    assert_same_bits(&solo, &saturated, "solo vs 63-neighbor pool");
}

#[test]
fn worker_count_never_changes_results() {
    let one = run_saturated(1);
    let four = run_saturated(4);
    let sixteen = run_saturated(16);
    assert_same_bits(&one, &four, "1 vs 4 workers");
    assert_same_bits(&four, &sixteen, "4 vs 16 workers");
}

#[test]
fn partitioned_transport_deterministic_across_worker_counts() {
    // Partitioned channels add per-partition flow completions; their
    // arrival order must be a function of virtual time only, never of the
    // worker pool driving the jobs.
    let spec = JobSpec::new("ptn", ClusterPreset::Summit { nodes: 2 }, 6, [96, 96, 96])
        .methods(
            stencil_core::Methods::all()
                .with_persistent()
                .with_partitioned(),
        )
        .iters(3)
        .collect_metrics(true);
    let run = |workers: usize| {
        let service = Service::new(ServiceConfig {
            workers,
            queue_capacity: 4,
            default_timeout_ms: None,
        });
        let r = service.submit(spec.clone()).expect("admitted").wait();
        service.shutdown();
        r
    };
    let one = run(1);
    assert_eq!(one.status, svc::JobStatus::Completed, "{:?}", one.error);
    let eight = run(8);
    assert_same_bits(&one, &eight, "partitioned probe, 1 vs 8 workers");
}

#[test]
fn kill_respawn_deterministic_across_worker_counts() {
    // The full rank-failure recovery — kill, channel revocation, respawn,
    // re-handshake, measured exchanges on the rejoined world — must be a
    // function of virtual time only: bit-identical whether the job runs
    // on one worker or races seven neighbors.
    let spec = JobSpec::new("kr", ClusterPreset::Summit { nodes: 2 }, 6, [96, 96, 96])
        .faults(FaultScenario::KillRespawn {
            rank: 4,
            at_us: 50,
            down_us: 300,
        })
        .iters(3)
        .collect_metrics(true);
    let run = |workers: usize| {
        let service = Service::new(ServiceConfig {
            workers,
            queue_capacity: 16,
            default_timeout_ms: None,
        });
        let mut handles = Vec::new();
        for i in 0..(workers.saturating_sub(1)) {
            handles.push(service.submit(neighbors()[i % 4].clone()).unwrap());
        }
        let r = service.submit(spec.clone()).expect("admitted").wait();
        for h in handles {
            h.wait();
        }
        service.shutdown();
        r
    };
    let one = run(1);
    assert_eq!(one.status, svc::JobStatus::Completed, "{:?}", one.error);
    let eight = run(8);
    assert_same_bits(&one, &eight, "kill-respawn probe, 1 vs 8 workers");
}

#[test]
fn digest_groups_the_same_workload_across_tenants() {
    // Tenant and weight are scheduling attributes, not workload: the same
    // geometry submitted by two tenants lands in one digest group and
    // must agree bit-for-bit.
    let a = JobSpec::new("alice", ClusterPreset::Summit { nodes: 1 }, 6, [96, 96, 96]).weight(4);
    let b = JobSpec::new("bob", ClusterPreset::Summit { nodes: 1 }, 6, [96, 96, 96]).weight(1);
    assert_eq!(a.digest(), b.digest());
    let service = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        default_timeout_ms: None,
    });
    let ra = service.submit(a).unwrap().wait();
    let rb = service.submit(b).unwrap().wait();
    service.shutdown();
    assert!(ra.bit_identical(&rb));
}
