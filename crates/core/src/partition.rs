//! Setup phase 1 — hierarchical domain partitioning (paper §III-A, Fig. 4).
//!
//! The domain is decomposed twice by recursive inertial bisection: first
//! into one subdomain per *node* (minimizing the slower inter-node
//! communication), then each node subdomain into one per *GPU*. At each
//! step the prime factors of the target count, sorted largest first, split
//! the currently-longest axis — yielding subdomains as close to cubical as
//! possible (minimal surface-to-volume ratio, paper Fig. 3).

use crate::dim3::{Boundary, Box3, Dim3, Dir3, Idx3};

/// Prime factors of `n`, sorted descending. `prime_factors(1)` is empty.
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    assert!(n >= 1, "cannot factor zero");
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Split a (possibly already-divided) shape into `count` parts: each prime
/// factor, largest first, divides the currently-longest axis (ties prefer
/// the lowest axis index). Returns parts per axis.
pub fn choose_dims(shape: Dim3, count: usize) -> Idx3 {
    let mut dims = [1usize; 3];
    let mut cur = [shape[0] as f64, shape[1] as f64, shape[2] as f64];
    for f in prime_factors(count) {
        let axis = (0..3)
            .max_by(|&a, &b| cur[a].partial_cmp(&cur[b]).unwrap().then(b.cmp(&a)))
            .unwrap();
        dims[axis] *= f;
        cur[axis] /= f as f64;
    }
    dims
}

/// The two-level decomposition: a 3D grid of node subdomains, each further
/// split into a 3D grid of GPU subdomains. Cheap to copy around; all
/// geometry is computed on demand (and is identical on every rank).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Global domain extent in cells.
    pub domain: Dim3,
    /// Node grid shape.
    pub node_dims: Idx3,
    /// Per-node GPU grid shape.
    pub gpu_dims: Idx3,
}

impl Partition {
    /// Decompose `domain` among `num_nodes` nodes of `gpus_per_node` GPUs.
    pub fn new(domain: Dim3, num_nodes: usize, gpus_per_node: usize) -> Partition {
        assert!(domain.iter().all(|&d| d > 0), "empty domain");
        let node_dims = choose_dims(domain, num_nodes);
        let proto = [
            domain[0] / node_dims[0] as u64,
            domain[1] / node_dims[1] as u64,
            domain[2] / node_dims[2] as u64,
        ];
        assert!(
            proto.iter().all(|&p| p > 0),
            "domain {domain:?} too small for {num_nodes} nodes"
        );
        let gpu_dims = choose_dims(proto, gpus_per_node);
        let p = Partition {
            domain,
            node_dims,
            gpu_dims,
        };
        let g = p.global_dims();
        for a in 0..3 {
            assert!(
                g[a] as u64 <= domain[a],
                "domain {domain:?} too small for decomposition {g:?}"
            );
        }
        p
    }

    /// Build from explicit grid shapes (forced decompositions, tests,
    /// Fig. 3 comparisons).
    pub fn with_dims(domain: Dim3, node_dims: Idx3, gpu_dims: Idx3) -> Partition {
        Partition {
            domain,
            node_dims,
            gpu_dims,
        }
    }

    /// Number of node subdomains.
    pub fn num_nodes(&self) -> usize {
        self.node_dims[0] * self.node_dims[1] * self.node_dims[2]
    }

    /// GPU subdomains per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpu_dims[0] * self.gpu_dims[1] * self.gpu_dims[2]
    }

    /// Total subdomains.
    pub fn num_subdomains(&self) -> usize {
        self.num_nodes() * self.gpus_per_node()
    }

    /// The combined (node × GPU) grid shape.
    pub fn global_dims(&self) -> Idx3 {
        [
            self.node_dims[0] * self.gpu_dims[0],
            self.node_dims[1] * self.gpu_dims[1],
            self.node_dims[2] * self.gpu_dims[2],
        ]
    }

    #[inline]
    fn part_start(len: u64, parts: usize, i: usize) -> u64 {
        (len as u128 * i as u128 / parts as u128) as u64
    }

    fn split_1d(len: u64, parts: usize, i: usize) -> (u64, u64) {
        let s = Self::part_start(len, parts, i);
        let e = Self::part_start(len, parts, i + 1);
        (s, e - s)
    }

    /// The cells of node subdomain `n`.
    pub fn node_box(&self, n: Idx3) -> Box3 {
        let mut origin = [0u64; 3];
        let mut extent = [0u64; 3];
        for a in 0..3 {
            assert!(n[a] < self.node_dims[a], "node index out of range");
            let (s, l) = Self::split_1d(self.domain[a], self.node_dims[a], n[a]);
            origin[a] = s;
            extent[a] = l;
        }
        Box3 { origin, extent }
    }

    /// The cells of GPU subdomain `g` within node subdomain `n`.
    pub fn gpu_box(&self, n: Idx3, g: Idx3) -> Box3 {
        let nb = self.node_box(n);
        let mut origin = [0u64; 3];
        let mut extent = [0u64; 3];
        for a in 0..3 {
            assert!(g[a] < self.gpu_dims[a], "gpu index out of range");
            let (s, l) = Self::split_1d(nb.extent[a], self.gpu_dims[a], g[a]);
            origin[a] = nb.origin[a] + s;
            extent[a] = l;
        }
        Box3 { origin, extent }
    }

    /// Combined global index of `(node, gpu)`.
    pub fn global_idx(&self, n: Idx3, g: Idx3) -> Idx3 {
        [
            n[0] * self.gpu_dims[0] + g[0],
            n[1] * self.gpu_dims[1] + g[1],
            n[2] * self.gpu_dims[2] + g[2],
        ]
    }

    /// Inverse of [`Self::global_idx`].
    pub fn split_global(&self, gi: Idx3) -> (Idx3, Idx3) {
        let n = [
            gi[0] / self.gpu_dims[0],
            gi[1] / self.gpu_dims[1],
            gi[2] / self.gpu_dims[2],
        ];
        let g = [
            gi[0] % self.gpu_dims[0],
            gi[1] % self.gpu_dims[1],
            gi[2] % self.gpu_dims[2],
        ];
        (n, g)
    }

    /// The subdomain adjacent to `(n, g)` in direction `d`, with periodic
    /// boundary conditions in the combined index space.
    pub fn neighbor(&self, n: Idx3, g: Idx3, d: Dir3) -> (Idx3, Idx3) {
        self.neighbor_bc(n, g, d, Boundary::Periodic)
            .expect("periodic neighbors always exist")
    }

    /// The subdomain adjacent to `(n, g)` in direction `d` under the given
    /// boundary condition. `None` when the step leaves an open domain.
    pub fn neighbor_bc(&self, n: Idx3, g: Idx3, d: Dir3, bc: Boundary) -> Option<(Idx3, Idx3)> {
        let dims = self.global_dims();
        let gi = self.global_idx(n, g);
        let mut out = [0usize; 3];
        for a in 0..3 {
            let m = dims[a] as i64;
            let raw = gi[a] as i64 + d.0[a] as i64;
            out[a] = match bc {
                Boundary::Periodic => raw.rem_euclid(m) as usize,
                Boundary::Open => {
                    if raw < 0 || raw >= m {
                        return None;
                    }
                    raw as usize
                }
            };
        }
        Some(self.split_global(out))
    }

    /// Linearized node id of a node index (x fastest).
    pub fn node_linear(&self, n: Idx3) -> usize {
        (n[2] * self.node_dims[1] + n[1]) * self.node_dims[0] + n[0]
    }

    /// Node index of a linear node id.
    pub fn node_from_linear(&self, l: usize) -> Idx3 {
        let x = l % self.node_dims[0];
        let y = (l / self.node_dims[0]) % self.node_dims[1];
        let z = l / (self.node_dims[0] * self.node_dims[1]);
        [x, y, z]
    }

    /// Linearized per-node GPU-subdomain id (x fastest).
    pub fn gpu_linear(&self, g: Idx3) -> usize {
        (g[2] * self.gpu_dims[1] + g[1]) * self.gpu_dims[0] + g[0]
    }

    /// GPU-subdomain index of a linear id.
    pub fn gpu_from_linear(&self, l: usize) -> Idx3 {
        let x = l % self.gpu_dims[0];
        let y = (l / self.gpu_dims[0]) % self.gpu_dims[1];
        let z = l / (self.gpu_dims[0] * self.gpu_dims[1]);
        [x, y, z]
    }

    /// Globally-unique linear subdomain id (used for message tags).
    pub fn subdomain_id(&self, n: Idx3, g: Idx3) -> usize {
        let gi = self.global_idx(n, g);
        let dims = self.global_dims();
        (gi[2] * dims[1] + gi[1]) * dims[0] + gi[0]
    }

    /// Iterate over all (node, gpu) index pairs.
    pub fn all_subdomains(&self) -> impl Iterator<Item = (Idx3, Idx3)> + '_ {
        let nd = self.node_dims;
        let gd = self.gpu_dims;
        let mut out = Vec::with_capacity(self.num_subdomains());
        for nz in 0..nd[2] {
            for ny in 0..nd[1] {
                for nx in 0..nd[0] {
                    for gz in 0..gd[2] {
                        for gy in 0..gd[1] {
                            for gx in 0..gd[0] {
                                out.push(([nx, ny, nz], [gx, gy, gz]));
                            }
                        }
                    }
                }
            }
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim3::Neighborhood;

    #[test]
    fn prime_factors_sorted_desc() {
        assert_eq!(prime_factors(12), vec![3, 2, 2]);
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(256), vec![2; 8]);
        assert_eq!(prime_factors(30), vec![5, 3, 2]);
    }

    #[test]
    fn paper_fig4_example() {
        // 4 x 24 x 2 domain, 12 nodes of 4 GPUs (paper Fig. 4):
        // splits y by 3, y by 2, x by 2 -> node grid [2, 6, 1];
        // node shape [2, 4, 2]: y by 2 then x by 2 -> gpu grid [2, 2, 1].
        let p = Partition::new([4, 24, 2], 12, 4);
        assert_eq!(p.node_dims, [2, 6, 1]);
        assert_eq!(p.gpu_dims, [2, 2, 1]);
    }

    #[test]
    fn cube_domain_six_gpus_single_node() {
        // 6 = 3*2: longest (tie) -> x by 3, then longest is y or z -> y by 2
        let p = Partition::new([720, 720, 720], 1, 6);
        assert_eq!(p.node_dims, [1, 1, 1]);
        assert_eq!(p.gpu_dims, [3, 2, 1]);
    }

    #[test]
    fn fig11_shape() {
        // The paper's Fig. 11 example: 1440 x 1452 x 700 on 6 GPUs produces
        // 720 x 484 x 700 subdomains (y by 3, x by 2).
        let p = Partition::new([1440, 1452, 700], 1, 6);
        let b = p.gpu_box([0, 0, 0], [0, 0, 0]);
        assert_eq!(b.extent, [720, 484, 700]);
    }

    #[test]
    fn boxes_cover_domain_exactly() {
        let p = Partition::new([101, 57, 23], 6, 4);
        let mut total = 0u64;
        for (n, g) in p.all_subdomains() {
            total += p.gpu_box(n, g).volume();
        }
        assert_eq!(total, 101 * 57 * 23);
    }

    #[test]
    fn neighbor_wraps_periodically() {
        let p = Partition::new([64, 64, 64], 4, 4);
        let (n, g) = p.neighbor([0, 0, 0], [0, 0, 0], Dir3::new(-1, 0, 0));
        let gi = p.global_idx(n, g);
        assert_eq!(gi[0], p.global_dims()[0] - 1);
    }

    #[test]
    fn neighbor_of_neighbor_in_opposite_dir_is_self() {
        let p = Partition::new([64, 64, 64], 8, 6);
        for (n, g) in p.all_subdomains().take(48) {
            for d in Neighborhood::Full26.directions() {
                let (n2, g2) = p.neighbor(n, g, d);
                let (n3, g3) = p.neighbor(n2, g2, d.opposite());
                assert_eq!((n3, g3), (n, g));
            }
        }
    }

    #[test]
    fn index_round_trips() {
        let p = Partition::new([64, 64, 64], 12, 4);
        for (n, g) in p.all_subdomains() {
            assert_eq!(p.node_from_linear(p.node_linear(n)), n);
            assert_eq!(p.gpu_from_linear(p.gpu_linear(g)), g);
            let gi = p.global_idx(n, g);
            assert_eq!(p.split_global(gi), (n, g));
        }
    }

    #[test]
    fn subdomain_ids_unique() {
        let p = Partition::new([64, 64, 64], 8, 6);
        let mut seen = std::collections::HashSet::new();
        for (n, g) in p.all_subdomains() {
            assert!(seen.insert(p.subdomain_id(n, g)));
        }
        assert_eq!(seen.len(), 48);
    }

    #[test]
    fn choose_dims_prefers_cubes() {
        // Fig. 3: 4 parts of a square should be 2x2, not 4x1.
        assert_eq!(choose_dims([60, 60, 1], 4), [2, 2, 1]);
        // 9 parts of a square should be 3x3.
        assert_eq!(choose_dims([60, 60, 1], 9), [3, 3, 1]);
    }

    /// Deterministic xorshift for case generation.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    /// Subdomain boxes tile the domain: volumes sum exactly, and sample
    /// points belong to exactly one subdomain.
    #[test]
    fn prop_boxes_disjoint_and_cover() {
        let mut r = rng(42);
        for _ in 0..60 {
            let nodes = 1 + (r() % 8) as usize;
            let gpus = 1 + (r() % 6) as usize;
            let dx = 1 + r() % 79;
            let dy = 1 + r() % 79;
            let dz = 1 + r() % 79;
            let domain = [dx.max(nodes as u64 * gpus as u64), dy, dz];
            let p = Partition::new(domain, nodes, gpus);
            // volumes sum to the domain volume
            let total: u64 = p
                .all_subdomains()
                .map(|(n, g)| p.gpu_box(n, g).volume())
                .sum();
            assert_eq!(
                total,
                domain[0] * domain[1] * domain[2],
                "domain {domain:?}"
            );
            // sample points map to exactly one subdomain
            for pt in [
                [0u64, 0, 0],
                [domain[0] - 1, domain[1] - 1, domain[2] - 1],
                [domain[0] / 2, domain[1] / 3, domain[2] / 2],
            ] {
                let owners = p
                    .all_subdomains()
                    .filter(|&(n, g)| p.gpu_box(n, g).contains(pt))
                    .count();
                assert_eq!(owners, 1, "point {pt:?} of {domain:?}");
            }
        }
    }

    /// The chosen grid always multiplies out to the requested count.
    #[test]
    fn prop_choose_dims_product() {
        for count in 1usize..500 {
            let d = choose_dims([1000, 1000, 1000], count);
            assert_eq!(d[0] * d[1] * d[2], count, "count {count}");
        }
    }

    /// Periodic neighbor lookups always land inside the grid.
    #[test]
    fn prop_neighbor_stays_in_range() {
        let mut r = rng(7);
        for _ in 0..50 {
            let nodes = 1 + (r() % 8) as usize;
            let gpus = 1 + (r() % 6) as usize;
            let seed = (r() % 1000) as usize;
            let p = Partition::new([640, 640, 640], nodes, gpus);
            let subs: Vec<_> = p.all_subdomains().collect();
            let (n, g) = subs[seed % subs.len()];
            for d in Neighborhood::Full26.directions() {
                let (n2, g2) = p.neighbor(n, g, d);
                for a in 0..3 {
                    assert!(n2[a] < p.node_dims[a]);
                    assert!(g2[a] < p.gpu_dims[a]);
                }
            }
        }
    }
}
