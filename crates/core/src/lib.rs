//! # stencil-core — node-aware 3D stencil halo exchange
//!
//! A Rust reproduction of the library from *Node-Aware Stencil
//! Communication for Heterogeneous Supercomputers* (Pearson, Hidayetoğlu,
//! Almasri, Anjum, Chung, Xiong, Hwu — IPDPSW 2020), built on a simulated
//! CUDA runtime (`gpusim`), a simulated MPI (`mpisim`), and a parametric
//! hardware model (`topo`).
//!
//! The library optimizes GPU-GPU halo exchange for 3D stencils with a
//! three-phase setup:
//!
//! 1. **Partitioning** ([`Partition`]): hierarchical recursive bisection by
//!    prime factors — nodes first, then GPUs — minimizing the slowest
//!    communication first.
//! 2. **Placement** ([`placement`], [`qap`]): subdomains are assigned to
//!    GPUs per node by solving a quadratic assignment problem matching
//!    exchange volume to link bandwidth discovered from the node topology.
//! 3. **Specialization** ([`Method`], [`Methods`]): each pair exchange uses
//!    the best applicable of five implementations — `Kernel`,
//!    `PeerMemcpy`, `ColocatedMemcpy`, `CudaAwareMpi`, `Staged`.
//!
//! Exchanges then run fully asynchronously ([`DistributedDomain::exchange`])
//! with CUDA-only paths enqueued on streams and CUDA+MPI paths driven by
//! polled sender/receiver state machines, supporting overlap with interior
//! computation ([`DistributedDomain::exchange_start`] /
//! [`DistributedDomain::exchange_finish`]).
//!
//! ```no_run
//! use stencil_core::{DomainBuilder, Methods};
//!
//! # fn demo(ctx: &mpisim::RankCtx) {
//! let dom = DomainBuilder::new([750, 750, 750])
//!     .radius(2)
//!     .quantities(4)
//!     .methods(Methods::all())
//!     .build(ctx);
//! for _ in 0..10 {
//!     // compute interior on dom.locals()[..].compute_stream() ...
//!     dom.exchange(ctx);
//! }
//! # }
//! ```
//!
//! A complete (small-scale, runnable) exchange over two simulated ranks:
//!
//! ```
//! use mpisim::{run_world, WorldConfig};
//! use stencil_core::{DomainBuilder, Methods, Neighborhood};
//! use topo::summit::summit_cluster;
//!
//! run_world(WorldConfig::new(summit_cluster(1), 2), |ctx| {
//!     let dom = DomainBuilder::new([24, 20, 16])
//!         .radius(1)
//!         .quantities(1)
//!         .neighborhood(Neighborhood::Faces6)
//!         .methods(Methods::all())
//!         .build(ctx);
//!     for local in dom.locals() {
//!         local.fill(0, |p| (p[0] + p[1] + p[2]) as f32);
//!     }
//!     dom.exchange(ctx);
//!     if ctx.rank() == 0 {
//!         assert!(!dom.plan_summary().to_string().is_empty());
//!     }
//! });
//! ```

#![warn(missing_docs)]

pub mod dim3;
mod domain;
pub mod empirical;
mod exchange;
mod local;
pub mod method;
pub mod multilevel;
pub mod overlap;
pub mod partition;
pub mod placement;
pub mod qap;
pub mod radius;
pub mod region;
mod resilience;
mod stats;

pub use dim3::{Box3, Dim3, Dir3, Idx3, Neighborhood};
pub use domain::{DistributedDomain, DomainBuilder, DomainSpec};
pub use exchange::{ExchangeHandle, ExchangeTiming};
pub use local::LocalDomain;
pub use method::{select, Method, Methods, PairCaps};
pub use multilevel::{DenseDistance, DistanceOracle, FlowGraph};
pub use overlap::StepTiming;
pub use partition::Partition;
pub use placement::{map_nodes, node_flow_graph, Placement, PlacementStrategy};
pub use radius::Radius;
pub use resilience::{
    resolve_node_placements, AdaptOutcome, AdaptPolicy, AdaptScope, Health, HealthMonitor,
    MigrationMode, SkipReason,
};
pub use stats::PlanSummary;
