//! The public entry point: build a [`DistributedDomain`] collectively
//! across ranks and exchange halos.

use std::collections::HashMap;

use mpisim::RankCtx;
use topo::NodeDiscovery;

use crate::dim3::{Boundary, Dim3, Neighborhood};
use crate::exchange::{build_plans, GroupedRecvPlan, GroupedSendPlan, RecvPlan, SendPlan};
use crate::local::LocalDomain;
use crate::method::Methods;
use crate::partition::Partition;
use crate::placement::{place, Placement, PlacementStrategy};
use crate::radius::Radius;
use crate::stats::PlanSummary;

/// Everything that defines a distributed stencil domain.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Global grid extent in cells.
    pub size: Dim3,
    /// Stencil radius (halo widths).
    pub radius: Radius,
    /// Number of grid quantities (each gets its own array).
    pub quantities: usize,
    /// Bytes per cell per quantity (4 for `f32`).
    pub elem_size: usize,
    /// Which neighbors to exchange with (stencil shape).
    pub neighborhood: Neighborhood,
    /// Enabled exchange methods (capability specialization knob).
    pub methods: Methods,
    /// Subdomain-to-GPU placement strategy.
    pub placement: PlacementStrategy,
    /// Boundary condition of the global domain.
    pub boundary: Boundary,
    /// Consolidate multiple staged transfers sharing (source subdomain,
    /// destination rank) into single larger messages (paper §VI).
    pub consolidate: bool,
    /// Precomputed per-node placements (one entry per node, linear order).
    /// When set, phase 2 — including any empirical probing — is skipped
    /// entirely; the placements must have been computed for an identical
    /// partition. Lets sweeps that measure the same domain under several
    /// method tiers pay the QAP/probe cost once (see `stencil-bench`).
    pub preplaced: Option<std::sync::Arc<Vec<Placement>>>,
}

/// Fluent constructor for [`DistributedDomain`].
///
/// ```no_run
/// # use stencil_core::DomainBuilder;
/// # fn demo(ctx: &mpisim::RankCtx) {
/// let dom = DomainBuilder::new([512, 512, 512])
///     .radius(2)
///     .quantities(4)
///     .build(ctx);
/// dom.exchange(ctx);
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DomainBuilder(DomainSpec);

impl DomainBuilder {
    /// Start from a global domain size; defaults: radius 1, one `f32`
    /// quantity, full 26-neighborhood, all methods except CUDA-aware MPI,
    /// node-aware placement.
    pub fn new(size: Dim3) -> DomainBuilder {
        DomainBuilder(DomainSpec {
            size,
            radius: Radius::constant(1),
            quantities: 1,
            elem_size: 4,
            neighborhood: Neighborhood::Full26,
            methods: Methods::all(),
            placement: PlacementStrategy::NodeAware,
            boundary: Boundary::Periodic,
            consolidate: false,
            preplaced: None,
        })
    }

    /// Uniform stencil radius.
    pub fn radius(mut self, r: u64) -> Self {
        self.0.radius = Radius::constant(r);
        self
    }

    /// Per-face radius.
    pub fn radius_faces(mut self, r: Radius) -> Self {
        self.0.radius = r;
        self
    }

    /// Number of quantities.
    pub fn quantities(mut self, q: usize) -> Self {
        assert!(q >= 1);
        self.0.quantities = q;
        self
    }

    /// Bytes per cell (4 = single precision, 8 = double).
    pub fn elem_size(mut self, e: usize) -> Self {
        assert!(e >= 1);
        self.0.elem_size = e;
        self
    }

    /// Exchange neighborhood (stencil shape).
    pub fn neighborhood(mut self, n: Neighborhood) -> Self {
        self.0.neighborhood = n;
        self
    }

    /// Enabled exchange methods.
    pub fn methods(mut self, m: Methods) -> Self {
        self.0.methods = m;
        self
    }

    /// Placement strategy.
    pub fn placement(mut self, p: PlacementStrategy) -> Self {
        self.0.placement = p;
        self
    }

    /// Boundary condition (periodic by default, as in the paper's
    /// evaluation).
    pub fn boundary(mut self, b: Boundary) -> Self {
        self.0.boundary = b;
        self
    }

    /// Consolidate staged messages per (subdomain, destination rank) into
    /// fewer, larger MPI messages (paper §VI future work; off by default).
    pub fn consolidate(mut self, on: bool) -> Self {
        self.0.consolidate = on;
        self
    }

    /// Use precomputed per-node placements, skipping the placement phase
    /// (QAP solves and, for [`PlacementStrategy::Empirical`], the probe
    /// transfers). The placements must match the partition this spec
    /// produces: one entry per node in linear order.
    pub fn preplaced(mut self, placements: std::sync::Arc<Vec<Placement>>) -> Self {
        self.0.preplaced = Some(placements);
        self
    }

    /// Collectively build the domain (all ranks must call with identical
    /// specs).
    pub fn build(self, ctx: &RankCtx) -> DistributedDomain {
        DistributedDomain::new(ctx, self.0)
    }
}

/// A stencil domain distributed over every GPU of the job, with a
/// specialized, node-aware halo-exchange plan. One instance per rank,
/// holding that rank's subdomains.
pub struct DistributedDomain {
    pub(crate) spec: DomainSpec,
    pub(crate) part: Partition,
    pub(crate) placements: Vec<Placement>,
    pub(crate) rank: usize,
    pub(crate) locals: Vec<LocalDomain>,
    pub(crate) send_plans: Vec<SendPlan>,
    pub(crate) recv_plans: Vec<RecvPlan>,
    pub(crate) grouped_send_plans: Vec<GroupedSendPlan>,
    pub(crate) grouped_recv_plans: Vec<GroupedRecvPlan>,
    pub(crate) summary: PlanSummary,
}

impl DistributedDomain {
    /// Collective constructor: partitions the domain, solves placement for
    /// every node, allocates this rank's subdomains, and builds the
    /// specialized exchange plan (including the colocated IPC handshake).
    pub fn new(ctx: &RankCtx, spec: DomainSpec) -> DistributedDomain {
        let machine = ctx.machine().clone();
        let num_nodes = machine.num_nodes();
        let gpn = machine.gpus_per_node();

        // Phase 1: hierarchical partition.
        let part = Partition::new(spec.size, num_nodes, gpn);

        // Phase 2: per-node placement. Deterministic and identical on every
        // rank (empirical probes measure identical matrices on homogeneous
        // nodes), so no global communication is needed; nodes with identical
        // subdomain shapes share one QAP solve. Skipped entirely when the
        // spec carries precomputed placements.
        let placements = if let Some(pre) = &spec.preplaced {
            assert_eq!(
                pre.len(),
                part.num_nodes(),
                "preplaced placements must have one entry per node"
            );
            pre.as_ref().clone()
        } else if spec.placement == PlacementStrategy::Empirical {
            // Empirical placement probes bandwidths *inside* the simulation
            // (collective per node, consumes virtual time), so it cannot be
            // memoized across ranks — each rank participates. Nodes can
            // measure *different* matrices (a degraded link, heterogeneous
            // fabrics), and every rank must place every node identically —
            // the exchange plan's partner resolution depends on it — so the
            // matrices are all-gathered and each node's QAP is solved
            // against its own measurement.
            let d = crate::empirical::distance_from_measured(
                &crate::empirical::measure_node_bandwidths(
                    ctx,
                    crate::empirical::DEFAULT_PROBE_BYTES,
                ),
            );
            let all: Vec<Vec<Vec<f64>>> = ctx.all_gather_obj(crate::resilience::ADAPT_BW_TAG, d);
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            crate::resilience::resolve_node_placements(
                &part,
                spec.neighborhood,
                &spec.radius,
                spec.quantities,
                spec.elem_size,
                spec.boundary,
                &all,
                ctx.ranks_per_node(),
                threads,
            )
        } else {
            // Topology-derived placement is a pure, deterministic function
            // of (partition, node topology, spec): every rank computes an
            // identical answer with no communication. Compute it once per
            // world and share it — at 256+ nodes the per-rank recomputation
            // is the dominant wall-clock cost of setup.
            let key = format!(
                "stencil-core/placements/{:?}/{:?}/{}/{}/{:?}/{:?}/{:?}/{}n/{}g",
                spec.size,
                spec.radius,
                spec.quantities,
                spec.elem_size,
                spec.neighborhood,
                spec.placement,
                spec.boundary,
                num_nodes,
                gpn,
            );
            let shared = ctx.cached_setup(&key, || {
                let discovery: &NodeDiscovery = machine.discovery();
                let mut by_extent: HashMap<Dim3, Placement> = HashMap::new();
                let mut placements = Vec::with_capacity(part.num_nodes());
                for n in 0..part.num_nodes() {
                    let idx = part.node_from_linear(n);
                    let ext = part.node_box(idx).extent;
                    let pl = by_extent
                        .entry(ext)
                        .or_insert_with(|| {
                            place(
                                &part,
                                idx,
                                discovery,
                                spec.neighborhood,
                                &spec.radius,
                                spec.quantities,
                                spec.elem_size,
                                spec.placement,
                                spec.boundary,
                            )
                        })
                        .clone();
                    placements.push(pl);
                }
                placements
            });
            shared.as_ref().clone()
        };

        // This rank's subdomains, one per GPU it controls.
        let node = ctx.node();
        let node_idx = part.node_from_linear(node);
        let mut locals = Vec::new();
        for device in ctx.gpus() {
            let local_gpu = machine.local_of(device);
            let s = placements[node].subdomain_for_gpu[local_gpu];
            let gpu_idx = part.gpu_from_linear(s);
            let interior = part.gpu_box(node_idx, gpu_idx);
            let local = ctx.sim().with_kernel(|k| {
                LocalDomain::new(
                    &machine,
                    k,
                    node_idx,
                    gpu_idx,
                    interior,
                    device,
                    spec.quantities,
                    spec.elem_size,
                    spec.radius,
                )
            });
            locals.push(local.unwrap_or_else(|e| panic!("allocating subdomain: {e}")));
        }

        // Phase 3: capability specialization (collective).
        let (send_plans, recv_plans, grouped_send_plans, grouped_recv_plans, summary) =
            build_plans(ctx, &part, &placements, &locals, &spec);

        DistributedDomain {
            spec,
            part,
            placements,
            rank: ctx.rank(),
            locals,
            send_plans,
            recv_plans,
            grouped_send_plans,
            grouped_recv_plans,
            summary,
        }
    }

    /// This rank's subdomains.
    pub fn locals(&self) -> &[LocalDomain] {
        &self.locals
    }

    /// The domain specification.
    pub fn spec(&self) -> &DomainSpec {
        &self.spec
    }

    /// The hierarchical partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The placement chosen for node `n`.
    pub fn placement(&self, n: usize) -> &Placement {
        &self.placements[n]
    }

    /// Which methods this rank's plan uses, with counts and bytes.
    pub fn plan_summary(&self) -> &PlanSummary {
        &self.summary
    }

    /// The rank this instance belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }
}
