//! Halo region geometry and pack/unpack (paper Fig. 6).
//!
//! A subdomain of interior extent `ext` with radius `r` is stored as an
//! `(r.x_neg + ext.x + r.x_pos) × … ` array in XYZ order (x fastest). The
//! halo exchanged toward direction `d` is a 3D sub-box; because of the
//! linear storage order it is strided in memory, so it is packed into a
//! dense buffer before transfer and unpacked after.

use crate::dim3::{Dim3, Dir3};
use crate::radius::Radius;

/// A box in *local array* coordinates (including halo cells).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Region {
    /// First cell.
    pub start: Dim3,
    /// Cells per axis.
    pub extent: Dim3,
}

impl Region {
    /// Cells in the region.
    pub fn volume(&self) -> u64 {
        self.extent[0] * self.extent[1] * self.extent[2]
    }
}

/// Local array dimensions for a subdomain of interior extent `ext`.
pub fn array_dims(ext: Dim3, r: &Radius) -> Dim3 {
    let neg = r.neg();
    let pos = r.pos();
    [
        neg[0] + ext[0] + pos[0],
        neg[1] + ext[1] + pos[1],
        neg[2] + ext[2] + pos[2],
    ]
}

/// The interior cells a sender packs when sending toward `d`: the slab of
/// its interior adjacent to the `d` boundary, as wide as the *receiver's*
/// halo on the side facing back.
pub fn src_region(ext: Dim3, r: &Radius, d: Dir3) -> Region {
    let neg = r.neg();
    let mut start = [0u64; 3];
    let mut extent = [0u64; 3];
    for a in 0..3 {
        match d.0[a] {
            0 => {
                start[a] = neg[a];
                extent[a] = ext[a];
            }
            1 => {
                // receiver's -a halo has width r.side(a, -1)
                let w = r.side(a, -1);
                assert!(
                    ext[a] >= w,
                    "subdomain extent {} too small for radius {w}",
                    ext[a]
                );
                start[a] = neg[a] + ext[a] - w;
                extent[a] = w;
            }
            -1 => {
                let w = r.side(a, 1);
                assert!(
                    ext[a] >= w,
                    "subdomain extent {} too small for radius {w}",
                    ext[a]
                );
                start[a] = neg[a];
                extent[a] = w;
            }
            _ => unreachable!(),
        }
    }
    Region { start, extent }
}

/// The halo cells a receiver unpacks for data sent toward `d` (i.e. from
/// its neighbor in direction `-d`): the exterior slab on its `-d` side.
pub fn dst_region(ext: Dim3, r: &Radius, d: Dir3) -> Region {
    let neg = r.neg();
    let mut start = [0u64; 3];
    let mut extent = [0u64; 3];
    for a in 0..3 {
        match d.0[a] {
            0 => {
                start[a] = neg[a];
                extent[a] = ext[a];
            }
            // data moving toward +a lands in the receiver's low-side halo
            1 => {
                start[a] = 0;
                extent[a] = r.side(a, -1);
            }
            // data moving toward -a lands in the receiver's high-side halo
            -1 => {
                start[a] = neg[a] + ext[a];
                extent[a] = r.side(a, 1);
            }
            _ => unreachable!(),
        }
    }
    Region { start, extent }
}

#[inline]
fn cell_offset(dims: Dim3, x: u64, y: u64, z: u64, elem: usize) -> usize {
    (((z * dims[1] + y) * dims[0] + x) as usize) * elem
}

/// Pack `region` of a local array (`dims`, `elem` bytes per cell) into
/// `out[out_off..]` densely, x-fastest order. Returns bytes written.
pub fn pack(
    src: &[u8],
    dims: Dim3,
    elem: usize,
    region: Region,
    out: &mut [u8],
    out_off: usize,
) -> usize {
    let row = region.extent[0] as usize * elem;
    let mut o = out_off;
    for z in region.start[2]..region.start[2] + region.extent[2] {
        for y in region.start[1]..region.start[1] + region.extent[1] {
            let s = cell_offset(dims, region.start[0], y, z, elem);
            out[o..o + row].copy_from_slice(&src[s..s + row]);
            o += row;
        }
    }
    o - out_off
}

/// Unpack a dense buffer (`inp[in_off..]`) into `region` of a local array.
/// Returns bytes read.
pub fn unpack(
    inp: &[u8],
    in_off: usize,
    dst: &mut [u8],
    dims: Dim3,
    elem: usize,
    region: Region,
) -> usize {
    let row = region.extent[0] as usize * elem;
    let mut i = in_off;
    for z in region.start[2]..region.start[2] + region.extent[2] {
        for y in region.start[1]..region.start[1] + region.extent[1] {
            let d = cell_offset(dims, region.start[0], y, z, elem);
            dst[d..d + row].copy_from_slice(&inp[i..i + row]);
            i += row;
        }
    }
    i - in_off
}

/// Copy `src_region` to `dst_region` inside the *same* array (the `Kernel`
/// self-exchange method). Regions must have equal extents and not overlap.
pub fn copy_region(arr: &mut [u8], dims: Dim3, elem: usize, from: Region, to: Region) {
    assert_eq!(from.extent, to.extent, "region shape mismatch");
    let row = from.extent[0] as usize * elem;
    for dz in 0..from.extent[2] {
        for dy in 0..from.extent[1] {
            let s = cell_offset(
                dims,
                from.start[0],
                from.start[1] + dy,
                from.start[2] + dz,
                elem,
            );
            let d = cell_offset(dims, to.start[0], to.start[1] + dy, to.start[2] + dz, elem);
            arr.copy_within(s..s + row, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2() -> Radius {
        Radius::constant(2)
    }

    #[test]
    fn array_dims_include_halo() {
        assert_eq!(array_dims([10, 20, 30], &r2()), [14, 24, 34]);
        let r = Radius::faces(1, 2, 3, 4, 5, 6);
        assert_eq!(array_dims([10, 10, 10], &r), [13, 17, 21]);
    }

    #[test]
    fn src_and_dst_regions_match_shape() {
        let ext = [10, 20, 30];
        let r = r2();
        for d in crate::dim3::Neighborhood::Full26.directions() {
            let s = src_region(ext, &r, d);
            let t = dst_region(ext, &r, d);
            assert_eq!(s.extent, t.extent, "direction {d:?}");
            assert_eq!(s.extent, r.halo_extent(ext, d));
        }
    }

    #[test]
    fn face_regions_are_where_expected() {
        let ext = [10, 10, 10];
        let r = r2();
        // sending toward +x: last 2 interior x-planes
        let s = src_region(ext, &r, Dir3::new(1, 0, 0));
        assert_eq!(s.start, [2 + 10 - 2, 2, 2]);
        assert_eq!(s.extent, [2, 10, 10]);
        // received on the neighbor's low-x halo
        let t = dst_region(ext, &r, Dir3::new(1, 0, 0));
        assert_eq!(t.start, [0, 2, 2]);
        assert_eq!(t.extent, [2, 10, 10]);
    }

    #[test]
    fn corner_regions() {
        let ext = [8, 8, 8];
        let r = r2();
        let s = src_region(ext, &r, Dir3::new(-1, 1, -1));
        assert_eq!(s.start, [2, 8, 2]);
        assert_eq!(s.extent, [2, 2, 2]);
        let t = dst_region(ext, &r, Dir3::new(-1, 1, -1));
        assert_eq!(t.start, [10, 0, 10]);
        assert_eq!(t.extent, [2, 2, 2]);
    }

    fn fill_pattern(dims: Dim3, elem: usize) -> Vec<u8> {
        (0..(dims[0] * dims[1] * dims[2]) as usize * elem)
            .map(|i| (i % 251) as u8)
            .collect()
    }

    #[test]
    fn pack_then_unpack_round_trips() {
        let ext = [6, 5, 4];
        let r = r2();
        let dims = array_dims(ext, &r);
        let elem = 4;
        let src = fill_pattern(dims, elem);
        for d in crate::dim3::Neighborhood::Full26.directions() {
            let reg = src_region(ext, &r, d);
            let mut buf = vec![0u8; reg.volume() as usize * elem];
            let n = pack(&src, dims, elem, reg, &mut buf, 0);
            assert_eq!(n, buf.len());
            let mut dst = vec![0u8; src.len()];
            let m = unpack(&buf, 0, &mut dst, dims, elem, reg);
            assert_eq!(m, buf.len());
            // the unpacked region must equal the source region cell-by-cell
            for z in reg.start[2]..reg.start[2] + reg.extent[2] {
                for y in reg.start[1]..reg.start[1] + reg.extent[1] {
                    for x in reg.start[0]..reg.start[0] + reg.extent[0] {
                        let o = cell_offset(dims, x, y, z, elem);
                        assert_eq!(&dst[o..o + elem], &src[o..o + elem]);
                    }
                }
            }
        }
    }

    #[test]
    fn pack_is_dense_and_ordered() {
        // 2x2x1 region of a known array: row-major x-fastest
        let dims = [4, 4, 1];
        let elem = 1;
        let src: Vec<u8> = (0..16).collect();
        let reg = Region {
            start: [1, 1, 0],
            extent: [2, 2, 1],
        };
        let mut out = vec![0u8; 4];
        pack(&src, dims, elem, reg, &mut out, 0);
        assert_eq!(out, vec![5, 6, 9, 10]);
    }

    #[test]
    fn copy_region_moves_self_exchange_halo() {
        let ext = [4, 4, 4];
        let r = Radius::constant(1);
        let dims = array_dims(ext, &r);
        let elem = 1;
        let mut arr = fill_pattern(dims, elem);
        let d = Dir3::new(1, 0, 0);
        let from = src_region(ext, &r, d);
        let to = dst_region(ext, &r, d);
        let expected: Vec<u8> = {
            let mut buf = vec![0u8; from.volume() as usize];
            pack(&arr, dims, elem, from, &mut buf, 0);
            buf
        };
        copy_region(&mut arr, dims, elem, from, to);
        let mut got = vec![0u8; to.volume() as usize];
        pack(&arr, dims, elem, to, &mut got, 0);
        assert_eq!(got, expected);
    }

    /// Pack then unpack restores the region exactly, for every direction,
    /// several element sizes, radii, and uneven extents.
    #[test]
    fn prop_pack_unpack_identity() {
        for (ex, ey, ez) in [(2u64, 5, 7), (3, 3, 3), (7, 2, 4), (6, 6, 2)] {
            for r in 1u64..3 {
                for elem in [1usize, 4, 8] {
                    for d in crate::dim3::Neighborhood::Full26.directions() {
                        let ext = [ex.max(r), ey.max(r), ez.max(r)];
                        let rad = Radius::constant(r);
                        let dims = array_dims(ext, &rad);
                        let src = fill_pattern(dims, elem);
                        let reg = src_region(ext, &rad, d);
                        let mut buf = vec![0u8; reg.volume() as usize * elem];
                        pack(&src, dims, elem, reg, &mut buf, 0);
                        let mut dst = src.clone();
                        // zero the region then unpack: must restore exactly
                        {
                            let zero = vec![0u8; buf.len()];
                            unpack(&zero, 0, &mut dst, dims, elem, reg);
                        }
                        unpack(&buf, 0, &mut dst, dims, elem, reg);
                        assert_eq!(dst, src, "ext {ext:?} r={r} elem={elem} dir {d:?}");
                    }
                }
            }
        }
    }

    /// Source and destination halo regions never overlap, for every
    /// direction and radius.
    #[test]
    fn prop_regions_disjoint_src_dst() {
        for r in 1u64..4 {
            for d in crate::dim3::Neighborhood::Full26.directions() {
                let ext = [9u64, 9, 9];
                let rad = Radius::constant(r);
                let s = src_region(ext, &rad, d);
                let t = dst_region(ext, &rad, d);
                // src lies fully in the interior; dst has at least one axis in
                // the halo -> they cannot overlap
                let overlap = (0..3).all(|a| {
                    let s0 = s.start[a];
                    let s1 = s0 + s.extent[a];
                    let t0 = t.start[a];
                    let t1 = t0 + t.extent[a];
                    s0 < t1 && t0 < s1
                });
                assert!(!overlap, "src {s:?} overlaps dst {t:?}");
            }
        }
    }
}
