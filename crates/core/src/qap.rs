//! Quadratic assignment problem solvers (paper §III-B) — the placement
//! ladder's dense rungs.
//!
//! Minimize `sum_{i,j} w[i][j] * d[f(i)][f(j)]` over bijections `f` from
//! facilities (subdomains) to locations (GPUs). QAP is NP-hard; the
//! paper's nodes have 6 GPUs, so it checks all assignments exhaustively.
//! Larger nodes climb a ladder of heuristics (see `docs/PLACEMENT.md`):
//!
//! * [`solve_exhaustive`] — all `n!` assignments, `n <=`
//!   [`EXHAUSTIVE_MAX_N`];
//! * [`solve_greedy_2opt`] — greedy construction + **delta-cost** 2-opt
//!   (O(n) per candidate swap instead of an O(n²) full recompute);
//! * [`solve_multistart`] — the same local search from several
//!   deterministic starting permutations;
//! * [`crate::multilevel::solve_multilevel`] — hierarchical coarsening
//!   for instances far beyond 2-opt's reach.
//!
//! [`solve`] dispatches between the rungs by instance size.

/// Largest instance the exhaustive solver accepts, and the size at which
/// [`solve`] switches from exhaustive search to the heuristic ladder.
/// 8! = 40,320 assignments is a fraction of a millisecond; 9! is ten times
/// that and already slower than the heuristics' quality justifies.
pub const EXHAUSTIVE_MAX_N: usize = 8;

/// Cost of assignment `f` (facility `i` at location `f[i]`).
pub fn cost(w: &[Vec<f64>], d: &[Vec<f64>], f: &[usize]) -> f64 {
    let n = w.len();
    let mut c = 0.0;
    for i in 0..n {
        for j in 0..n {
            // Skip zero-flow terms so that unreachable locations
            // (distance = +inf, e.g. measured-zero bandwidth) don't poison
            // the sum with `0 * inf = NaN`.
            if w[i][j] != 0.0 {
                c += w[i][j] * d[f[i]][f[j]];
            }
        }
    }
    c
}

/// Cost change of swapping the locations of facilities `r` and `s` in
/// assignment `f`, computed in O(n) from the classic QAP delta formula
/// (the full [`cost`] recompute is O(n²)). The zero-flow guard of [`cost`]
/// applies term by term, so `0 * inf` locations cannot poison the delta
/// with NaN; a swap between two genuinely infinite-cost assignments may
/// yield NaN (`inf - inf`), which every comparison rejects — callers treat
/// it as "not improving".
pub fn delta_swap(w: &[Vec<f64>], d: &[Vec<f64>], f: &[usize], r: usize, s: usize) -> f64 {
    debug_assert_ne!(r, s);
    let (fr, fs) = (f[r], f[s]);
    let mut delta = 0.0;
    for (k, &fk) in f.iter().enumerate() {
        if k == r || k == s {
            continue;
        }
        if w[r][k] != 0.0 {
            delta += w[r][k] * (d[fs][fk] - d[fr][fk]);
        }
        if w[k][r] != 0.0 {
            delta += w[k][r] * (d[fk][fs] - d[fk][fr]);
        }
        if w[s][k] != 0.0 {
            delta += w[s][k] * (d[fr][fk] - d[fs][fk]);
        }
        if w[k][s] != 0.0 {
            delta += w[k][s] * (d[fk][fr] - d[fk][fs]);
        }
    }
    if w[r][s] != 0.0 {
        delta += w[r][s] * (d[fs][fr] - d[fr][fs]);
    }
    if w[s][r] != 0.0 {
        delta += w[s][r] * (d[fr][fs] - d[fs][fr]);
    }
    if w[r][r] != 0.0 {
        delta += w[r][r] * (d[fs][fs] - d[fr][fr]);
    }
    if w[s][s] != 0.0 {
        delta += w[s][s] * (d[fr][fr] - d[fs][fs]);
    }
    delta
}

/// Exhaustively search all `n!` assignments. Deterministic: among equal-cost
/// optima, the lexicographically-smallest assignment wins. Intended for
/// `n <= `[`EXHAUSTIVE_MAX_N`] (the paper's nodes have 6 GPUs).
pub fn solve_exhaustive(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = w.len();
    assert_eq!(d.len(), n, "flow and distance matrices must agree");
    assert!(
        n <= EXHAUSTIVE_MAX_N,
        "exhaustive QAP beyond n={EXHAUSTIVE_MAX_N} is unreasonable; use the heuristic ladder"
    );
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    // Lexicographic permutation enumeration keeps tie-breaking well defined.
    loop {
        let c = cost(w, d, &perm);
        match &best {
            Some((_, bc)) if c >= *bc => {}
            _ => best = Some((perm.clone(), c)),
        }
        if !next_permutation(&mut perm) {
            break;
        }
    }
    best.expect("n >= 1")
}

/// Advance to the next lexicographic permutation; false when wrapped.
fn next_permutation(p: &mut [usize]) -> bool {
    let n = p.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Improve `f` in place with first-improvement 2-opt sweeps, evaluating
/// every candidate swap with the O(n) [`delta_swap`] formula. Returns the
/// cost of the final assignment (recomputed in full once at the end, so
/// accumulated float drift from incremental deltas never leaks out).
/// Deterministic: fixed sweep order, fixed acceptance threshold.
pub fn refine_2opt(w: &[Vec<f64>], d: &[Vec<f64>], f: &mut [usize]) -> f64 {
    let n = f.len();
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let delta = delta_swap(w, d, f, i, j);
                // NaN (inf - inf) fails this comparison: never accepted.
                if delta < -1e-12 {
                    f.swap(i, j);
                    improved = true;
                }
            }
        }
    }
    cost(w, d, f)
}

/// The greedy construction: the facility with the largest total flow goes
/// to the location with the smallest total distance, and so on.
fn greedy_start(w: &[Vec<f64>], d: &[Vec<f64>]) -> Vec<usize> {
    let n = w.len();
    let mut fac_order: Vec<usize> = (0..n).collect();
    let flow_sum: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| w[i][j] + w[j][i]).sum())
        .collect();
    fac_order.sort_by(|&a, &b| {
        flow_sum[b]
            .partial_cmp(&flow_sum[a])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut loc_order: Vec<usize> = (0..n).collect();
    let dist_sum: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let s = d[i][j] + d[j][i];
                    // Unreachable locations sort last without poisoning
                    // the sum for everyone (inf + finite = inf is fine,
                    // this guard only documents the intent).
                    if s.is_finite() {
                        s
                    } else {
                        f64::INFINITY
                    }
                })
                .sum()
        })
        .collect();
    loc_order.sort_by(|&a, &b| {
        dist_sum[a]
            .partial_cmp(&dist_sum[b])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut f = vec![0usize; n];
    for (fi, li) in fac_order.iter().zip(&loc_order) {
        f[*fi] = *li;
    }
    f
}

/// Pick the better of two solved assignments; cost ties go to the
/// lexicographically-smallest assignment so every solver stays
/// deterministic under reordering of its internal candidates.
pub(crate) fn better(a: (Vec<usize>, f64), b: (Vec<usize>, f64)) -> (Vec<usize>, f64) {
    // NaN costs (all-infinite instances) lose to anything comparable.
    let b_wins = b.1 < a.1 || (a.1.is_nan() && !b.1.is_nan()) || (a.1 == b.1 && b.0 < a.0);
    if b_wins {
        b
    } else {
        a
    }
}

/// Greedy construction + delta-cost 2-opt improvement, for nodes with many
/// GPUs. Refines from both the greedy start and the identity start and
/// keeps the better local optimum — so its result never loses to the
/// trivial (identity) placement. Deterministic.
pub fn solve_greedy_2opt(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = w.len();
    assert_eq!(d.len(), n);
    let mut g = greedy_start(w, d);
    let cg = refine_2opt(w, d, &mut g);
    let mut id: Vec<usize> = (0..n).collect();
    let ci = refine_2opt(w, d, &mut id);
    better((g, cg), (id, ci))
}

/// Deterministic multi-start local search: the greedy and identity starts
/// of [`solve_greedy_2opt`] plus `extra_starts` LCG-shuffled permutations
/// (fixed seeds, so repeated calls are bit-identical), each refined with
/// delta-cost 2-opt; the best local optimum wins, ties broken
/// lexicographically.
pub fn solve_multistart(w: &[Vec<f64>], d: &[Vec<f64>], extra_starts: usize) -> (Vec<usize>, f64) {
    let n = w.len();
    let mut best = solve_greedy_2opt(w, d);
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..extra_starts {
        let mut f: Vec<usize> = (0..n).collect();
        // Fisher–Yates with a fixed-seed LCG: deterministic shuffles.
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            f.swap(i, j);
        }
        let c = refine_2opt(w, d, &mut f);
        best = better(best, (f, c));
    }
    best
}

/// Solve, picking the ladder rung by instance size: exhaustive up to
/// [`EXHAUSTIVE_MAX_N`], hierarchical multilevel (with a greedy-2-opt
/// cross-check on moderate sizes) beyond.
pub fn solve(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    if w.len() <= EXHAUSTIVE_MAX_N {
        solve_exhaustive(w, d)
    } else {
        crate::multilevel::solve_multilevel(w, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        }
    }

    #[test]
    fn identity_when_distance_uniform() {
        let w = mat(&[&[0.0, 5.0], &[5.0, 0.0]]);
        let d = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let (f, c) = solve_exhaustive(&w, &d);
        assert_eq!(f, vec![0, 1]); // tie -> lexicographically smallest
        assert!((c - 10.0).abs() < 1e-12);
    }

    #[test]
    fn high_flow_pairs_land_on_short_distances() {
        // facilities: 0-1 heavy flow, 2 isolated.
        let w = mat(&[&[0.0, 100.0, 1.0], &[100.0, 0.0, 1.0], &[1.0, 1.0, 0.0]]);
        // locations: 1-2 close, 0 far from both.
        let d = mat(&[&[0.0, 10.0, 10.0], &[10.0, 0.0, 1.0], &[10.0, 1.0, 0.0]]);
        let (f, _) = solve_exhaustive(&w, &d);
        // facilities 0 and 1 must occupy locations 1 and 2.
        assert!(
            f[0] != 0 && f[1] != 0,
            "heavy pair on the close locations: {f:?}"
        );
        assert_eq!(f[2], 0);
    }

    #[test]
    fn next_permutation_enumerates_all() {
        let mut p = vec![0, 1, 2, 3];
        let mut count = 1;
        while next_permutation(&mut p) {
            count += 1;
        }
        assert_eq!(count, 24);
        assert_eq!(p, vec![3, 2, 1, 0], "ends at the last permutation");
    }

    #[test]
    fn single_facility() {
        let w = mat(&[&[0.0]]);
        let d = mat(&[&[0.0]]);
        assert_eq!(solve_exhaustive(&w, &d).0, vec![0]);
        assert_eq!(solve_greedy_2opt(&w, &d).0, vec![0]);
    }

    /// The O(n) delta formula agrees with the O(n²) recompute on dense
    /// random instances, including asymmetric flow and nonzero diagonals.
    #[test]
    fn delta_matches_full_recompute() {
        for seed in 0u64..20 {
            let n = 3 + (seed as usize % 6);
            let mut rnd = lcg(seed.wrapping_mul(2654435761).wrapping_add(11));
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rnd() * 9.0).collect())
                .collect();
            let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let mut f: Vec<usize> = (0..n).collect();
            for _ in 0..4 {
                let i = (rnd() * n as f64) as usize % n;
                let j = (rnd() * n as f64) as usize % n;
                f.swap(i, j);
            }
            let base = cost(&w, &d, &f);
            for r in 0..n {
                for s in (r + 1)..n {
                    let delta = delta_swap(&w, &d, &f, r, s);
                    let mut g = f.clone();
                    g.swap(r, s);
                    let full = cost(&w, &d, &g) - base;
                    assert!(
                        (delta - full).abs() < 1e-9 * (1.0 + full.abs()),
                        "seed {seed} n {n} swap ({r},{s}): delta {delta} vs full {full}"
                    );
                }
            }
        }
    }

    /// Zero-flow rows against infinite distances stay NaN-free in the delta
    /// path, exactly as in `cost`.
    #[test]
    fn delta_zero_flow_inf_distance_guard() {
        // facility 2 exchanges nothing; location 2 is unreachable.
        let w = mat(&[&[0.0, 4.0, 0.0], &[4.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]);
        let inf = f64::INFINITY;
        let d = mat(&[&[0.0, 1.0, inf], &[1.0, 0.0, inf], &[inf, inf, 0.0]]);
        let f = vec![0, 1, 2]; // zero-flow facility on the unreachable location
        assert!(cost(&w, &d, &f).is_finite());
        for r in 0..3 {
            for s in (r + 1)..3 {
                let delta = delta_swap(&w, &d, &f, r, s);
                // Moving real flow onto the unreachable location is +inf,
                // never NaN.
                assert!(!delta.is_nan(), "swap ({r},{s}) produced NaN");
            }
        }
        // The local search must keep the zero-flow facility parked on the
        // unreachable location (every other arrangement costs +inf).
        let (sol, c) = solve_greedy_2opt(&w, &d);
        assert_eq!(sol[2], 2, "zero-flow facility absorbs the dead location");
        assert!(c.is_finite());
    }

    #[test]
    fn heuristic_matches_exhaustive_on_small_instances() {
        let mut rnd = lcg(12345);
        for n in 2..=6 {
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rnd() * 10.0).collect())
                .collect();
            let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let (_, ce) = solve_exhaustive(&w, &d);
            let (_, ch) = solve_greedy_2opt(&w, &d);
            assert!(
                ch <= ce * 1.25 + 1e-9,
                "heuristic within 25% of optimum (n={n}): {ch} vs {ce}"
            );
        }
    }

    #[test]
    fn solve_dispatches_by_size() {
        let n = EXHAUSTIVE_MAX_N + 1;
        let w: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * j) % 5) as f64).collect())
            .collect();
        let d: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i + j) % 3) as f64).collect())
            .collect();
        let (f, _) = solve(&w, &d); // must not panic (heuristic path)
        let mut sorted = f.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..n).collect::<Vec<_>>(),
            "assignment is a permutation"
        );
    }

    #[test]
    #[should_panic(expected = "exhaustive QAP beyond")]
    fn exhaustive_rejects_oversized_instances() {
        let n = EXHAUSTIVE_MAX_N + 1;
        let w = vec![vec![1.0; n]; n];
        let d = vec![vec![1.0; n]; n];
        let _ = solve_exhaustive(&w, &d);
    }

    /// The exhaustive solver's optimum is never beaten by random
    /// permutations, over many random instances.
    #[test]
    fn prop_exhaustive_beats_any_permutation() {
        for seed in 0u64..60 {
            let n = 4usize;
            let mut rnd = lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
            let w: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let (_, best) = solve_exhaustive(&w, &d);
            // a handful of random permutations can't beat it
            let mut p: Vec<usize> = (0..n).collect();
            for _ in 0..8 {
                let i = (rnd() * n as f64) as usize % n;
                let j = (rnd() * n as f64) as usize % n;
                p.swap(i, j);
                assert!(cost(&w, &d, &p) >= best - 1e-9, "seed {seed}");
            }
        }
    }

    /// The heuristic always returns a valid permutation.
    #[test]
    fn prop_heuristic_is_permutation() {
        for n in 2usize..12 {
            for seed in 0u64..12 {
                let mut rnd = lcg((seed * 83 + n as u64).wrapping_add(7));
                let w: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
                let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
                let (f, _) = solve_greedy_2opt(&w, &d);
                let mut s = f.clone();
                s.sort_unstable();
                assert_eq!(s, (0..n).collect::<Vec<_>>(), "n={n} seed={seed}");
            }
        }
    }

    /// Multi-start never loses to the single greedy start, and is
    /// deterministic.
    #[test]
    fn multistart_dominates_greedy_and_is_deterministic() {
        for seed in 0u64..8 {
            let n = 14;
            let mut rnd = lcg(seed.wrapping_mul(77).wrapping_add(3));
            let w: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let (_, cg) = solve_greedy_2opt(&w, &d);
            let (fa, ca) = solve_multistart(&w, &d, 4);
            let (fb, cb) = solve_multistart(&w, &d, 4);
            assert!(
                ca <= cg + 1e-9,
                "seed {seed}: multistart {ca} vs greedy {cg}"
            );
            assert_eq!(fa, fb, "seed {seed}: multistart must be deterministic");
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }
}
