//! Quadratic assignment problem solvers (paper §III-B).
//!
//! Minimize `sum_{i,j} w[i][j] * d[f(i)][f(j)]` over bijections `f` from
//! facilities (subdomains) to locations (GPUs). QAP is NP-hard; nodes have
//! few GPUs, so the paper checks all assignments exhaustively. For larger
//! nodes we add a greedy + 2-opt heuristic (a "future work" item).

/// Cost of assignment `f` (facility `i` at location `f[i]`).
pub fn cost(w: &[Vec<f64>], d: &[Vec<f64>], f: &[usize]) -> f64 {
    let n = w.len();
    let mut c = 0.0;
    for i in 0..n {
        for j in 0..n {
            // Skip zero-flow terms so that unreachable locations
            // (distance = +inf, e.g. measured-zero bandwidth) don't poison
            // the sum with `0 * inf = NaN`.
            if w[i][j] != 0.0 {
                c += w[i][j] * d[f[i]][f[j]];
            }
        }
    }
    c
}

/// Exhaustively search all `n!` assignments. Deterministic: among equal-cost
/// optima, the lexicographically-smallest assignment wins. Intended for
/// `n <= 8` (the paper's nodes have 6 GPUs).
pub fn solve_exhaustive(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = w.len();
    assert_eq!(d.len(), n, "flow and distance matrices must agree");
    assert!(n <= 10, "exhaustive QAP beyond n=10 is unreasonable");
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    // Lexicographic permutation enumeration keeps tie-breaking well defined.
    loop {
        let c = cost(w, d, &perm);
        match &best {
            Some((_, bc)) if c >= *bc => {}
            _ => best = Some((perm.clone(), c)),
        }
        if !next_permutation(&mut perm) {
            break;
        }
    }
    best.expect("n >= 1")
}

/// Advance to the next lexicographic permutation; false when wrapped.
fn next_permutation(p: &mut [usize]) -> bool {
    let n = p.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Greedy construction + 2-opt improvement, for nodes with many GPUs.
/// Deterministic.
pub fn solve_greedy_2opt(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = w.len();
    assert_eq!(d.len(), n);
    // Greedy: place the facility with the largest total flow at the
    // location with the smallest total distance, and so on.
    let mut fac_order: Vec<usize> = (0..n).collect();
    let flow_sum: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| w[i][j] + w[j][i]).sum())
        .collect();
    fac_order.sort_by(|&a, &b| {
        flow_sum[b]
            .partial_cmp(&flow_sum[a])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut loc_order: Vec<usize> = (0..n).collect();
    let dist_sum: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| d[i][j] + d[j][i]).sum())
        .collect();
    loc_order.sort_by(|&a, &b| {
        dist_sum[a]
            .partial_cmp(&dist_sum[b])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut f = vec![0usize; n];
    for (fi, li) in fac_order.iter().zip(&loc_order) {
        f[*fi] = *li;
    }
    // 2-opt: swap pairs while improving.
    let mut c = cost(w, d, &f);
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                f.swap(i, j);
                let nc = cost(w, d, &f);
                if nc + 1e-12 < c {
                    c = nc;
                    improved = true;
                } else {
                    f.swap(i, j);
                }
            }
        }
    }
    (f, c)
}

/// Solve: exhaustive for small instances, heuristic beyond.
pub fn solve(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    if w.len() <= 8 {
        solve_exhaustive(w, d)
    } else {
        solve_greedy_2opt(w, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn identity_when_distance_uniform() {
        let w = mat(&[&[0.0, 5.0], &[5.0, 0.0]]);
        let d = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let (f, c) = solve_exhaustive(&w, &d);
        assert_eq!(f, vec![0, 1]); // tie -> lexicographically smallest
        assert!((c - 10.0).abs() < 1e-12);
    }

    #[test]
    fn high_flow_pairs_land_on_short_distances() {
        // facilities: 0-1 heavy flow, 2 isolated.
        let w = mat(&[&[0.0, 100.0, 1.0], &[100.0, 0.0, 1.0], &[1.0, 1.0, 0.0]]);
        // locations: 1-2 close, 0 far from both.
        let d = mat(&[&[0.0, 10.0, 10.0], &[10.0, 0.0, 1.0], &[10.0, 1.0, 0.0]]);
        let (f, _) = solve_exhaustive(&w, &d);
        // facilities 0 and 1 must occupy locations 1 and 2.
        assert!(
            f[0] != 0 && f[1] != 0,
            "heavy pair on the close locations: {f:?}"
        );
        assert_eq!(f[2], 0);
    }

    #[test]
    fn next_permutation_enumerates_all() {
        let mut p = vec![0, 1, 2, 3];
        let mut count = 1;
        while next_permutation(&mut p) {
            count += 1;
        }
        assert_eq!(count, 24);
        assert_eq!(p, vec![3, 2, 1, 0], "ends at the last permutation");
    }

    #[test]
    fn single_facility() {
        let w = mat(&[&[0.0]]);
        let d = mat(&[&[0.0]]);
        assert_eq!(solve_exhaustive(&w, &d).0, vec![0]);
        assert_eq!(solve_greedy_2opt(&w, &d).0, vec![0]);
    }

    #[test]
    fn heuristic_matches_exhaustive_on_small_instances() {
        // deterministic pseudo-random instances
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for n in 2..=6 {
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rnd() * 10.0).collect())
                .collect();
            let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let (_, ce) = solve_exhaustive(&w, &d);
            let (_, ch) = solve_greedy_2opt(&w, &d);
            assert!(
                ch <= ce * 1.25 + 1e-9,
                "heuristic within 25% of optimum (n={n}): {ch} vs {ce}"
            );
        }
    }

    #[test]
    fn solve_dispatches_by_size() {
        let n = 9;
        let w: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * j) % 5) as f64).collect())
            .collect();
        let d: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i + j) % 3) as f64).collect())
            .collect();
        let (f, _) = solve(&w, &d); // must not panic (heuristic path)
        let mut sorted = f.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..n).collect::<Vec<_>>(),
            "assignment is a permutation"
        );
    }

    /// The exhaustive solver's optimum is never beaten by random
    /// permutations, over many random instances.
    #[test]
    fn prop_exhaustive_beats_any_permutation() {
        for seed in 0u64..60 {
            let n = 4usize;
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
            let mut rnd = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (u32::MAX as f64)
            };
            let w: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let (_, best) = solve_exhaustive(&w, &d);
            // a handful of random permutations can't beat it
            let mut p: Vec<usize> = (0..n).collect();
            for _ in 0..8 {
                let i = (rnd() * n as f64) as usize % n;
                let j = (rnd() * n as f64) as usize % n;
                p.swap(i, j);
                assert!(cost(&w, &d, &p) >= best - 1e-9, "seed {seed}");
            }
        }
    }

    /// The heuristic always returns a valid permutation.
    #[test]
    fn prop_heuristic_is_permutation() {
        for n in 2usize..12 {
            for seed in 0u64..12 {
                let mut state = (seed * 83 + n as u64).wrapping_add(7);
                let mut rnd = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64) / (u32::MAX as f64)
                };
                let w: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
                let d: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
                let (f, _) = solve_greedy_2opt(&w, &d);
                let mut s = f.clone();
                s.sort_unstable();
                assert_eq!(s, (0..n).collect::<Vec<_>>(), "n={n} seed={seed}");
            }
        }
    }
}
