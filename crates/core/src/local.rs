//! The per-GPU piece of a distributed domain: its arrays (one per
//! quantity), geometry, and host-side element access for initialization and
//! verification.

use gpusim::{Buffer, GpuMachine, Stream};

use crate::dim3::{Box3, Dim3, Idx3};
use crate::radius::Radius;
use crate::region::array_dims;

/// One subdomain, resident on one GPU. Element accessors are host-side
/// conveniences (free in virtual time) for initialization and checking;
/// simulated compute goes through kernel launches on [`Self::compute_stream`].
pub struct LocalDomain {
    /// Node-grid index of the owning node subdomain.
    pub node_idx: Idx3,
    /// GPU-grid index within the node.
    pub gpu_idx: Idx3,
    /// Interior cells in global coordinates.
    pub interior: Box3,
    /// Global device id hosting this subdomain.
    pub device: usize,
    pub(crate) arrays: Vec<Buffer>,
    pub(crate) dims: Dim3,
    pub(crate) radius: Radius,
    pub(crate) elem_size: usize,
    pub(crate) compute_stream: Stream,
    pub(crate) machine: GpuMachine,
}

impl LocalDomain {
    /// Local array dimensions (interior + halo).
    pub fn array_dims(&self) -> Dim3 {
        self.dims
    }

    /// Interior extent in cells.
    pub fn extent(&self) -> Dim3 {
        self.interior.extent
    }

    /// The stencil radius.
    pub fn radius(&self) -> Radius {
        self.radius
    }

    /// Bytes per cell.
    pub fn elem_size(&self) -> usize {
        self.elem_size
    }

    /// Number of quantities.
    pub fn quantities(&self) -> usize {
        self.arrays.len()
    }

    /// The raw buffer of quantity `q` (advanced use: custom kernels).
    pub fn array(&self, q: usize) -> &Buffer {
        &self.arrays[q]
    }

    /// The stream compute kernels for this subdomain should use (distinct
    /// from exchange streams so computation and communication overlap).
    pub fn compute_stream(&self) -> Stream {
        self.compute_stream
    }

    /// Byte offset of a local cell (coordinates relative to the interior
    /// origin; negatives reach into the halo).
    pub fn local_offset(&self, q: usize, p: [i64; 3]) -> (usize, u64) {
        let neg = self.radius.neg();
        let mut idx = [0u64; 3];
        for a in 0..3 {
            let c = p[a] + neg[a] as i64;
            assert!(
                c >= 0 && (c as u64) < self.dims[a],
                "local coordinate {p:?} outside array (axis {a})"
            );
            idx[a] = c as u64;
        }
        let cell = (idx[2] * self.dims[1] + idx[1]) * self.dims[0] + idx[0];
        (q, cell * self.elem_size as u64)
    }

    /// Read an `f32` cell by local coordinates (halo reachable with
    /// negatives / extents beyond the interior).
    pub fn get_local_f32(&self, q: usize, p: [i64; 3]) -> f32 {
        let (q, off) = self.local_offset(q, p);
        let mut b = [0u8; 4];
        self.arrays[q].read(off, &mut b);
        f32::from_le_bytes(b)
    }

    /// Write an `f32` cell by local coordinates.
    pub fn set_local_f32(&self, q: usize, p: [i64; 3], v: f32) {
        let (q, off) = self.local_offset(q, p);
        self.arrays[q].write(off, &v.to_le_bytes());
    }

    /// Whether a global cell is in this subdomain's interior.
    pub fn owns(&self, p: Dim3) -> bool {
        self.interior.contains(p)
    }

    /// Read an `f32` cell by global coordinates (must be owned).
    pub fn get_global_f32(&self, q: usize, p: Dim3) -> f32 {
        assert!(self.owns(p), "cell {p:?} not in this subdomain");
        let o = self.interior.origin;
        self.get_local_f32(
            q,
            [
                (p[0] - o[0]) as i64,
                (p[1] - o[1]) as i64,
                (p[2] - o[2]) as i64,
            ],
        )
    }

    /// Write an `f32` cell by global coordinates (must be owned).
    pub fn set_global_f32(&self, q: usize, p: Dim3, v: f32) {
        assert!(self.owns(p), "cell {p:?} not in this subdomain");
        let o = self.interior.origin;
        self.set_local_f32(
            q,
            [
                (p[0] - o[0]) as i64,
                (p[1] - o[1]) as i64,
                (p[2] - o[2]) as i64,
            ],
            v,
        );
    }

    /// Initialize quantity `q` from a function of global coordinates
    /// (host-side, setup only).
    pub fn fill(&self, q: usize, f: impl Fn(Dim3) -> f32) {
        let o = self.interior.origin;
        let e = self.interior.extent;
        for z in 0..e[2] {
            for y in 0..e[1] {
                for x in 0..e[0] {
                    self.set_local_f32(
                        q,
                        [x as i64, y as i64, z as i64],
                        f([o[0] + x, o[1] + y, o[2] + z]),
                    );
                }
            }
        }
    }

    /// Launch a simulated compute kernel on this subdomain's compute
    /// stream: it charges `bytes` of memory traffic against the device
    /// engine and runs `work` (host-side, real data) when it completes.
    /// Returns the kernel's completion.
    pub fn launch_compute(
        &self,
        ctx: &detsim::SimCtx,
        label: impl Into<String>,
        bytes: u64,
        work: Option<gpusim::Work>,
    ) -> detsim::Completion {
        self.machine
            .launch_kernel(ctx, self.compute_stream, label, bytes, work)
    }

    /// Block until this subdomain's compute stream drains.
    pub fn sync_compute(&self, ctx: &detsim::SimCtx) {
        self.machine.stream_sync(ctx, self.compute_stream);
    }

    /// Bytes of device memory this subdomain's arrays occupy.
    pub fn bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.len()).sum()
    }

    #[allow(clippy::too_many_arguments)] // internal constructor
    pub(crate) fn new(
        machine: &GpuMachine,
        k: &mut detsim::Kernel,
        node_idx: Idx3,
        gpu_idx: Idx3,
        interior: Box3,
        device: usize,
        quantities: usize,
        elem_size: usize,
        radius: Radius,
    ) -> Result<LocalDomain, gpusim::GpuError> {
        let dims = array_dims(interior.extent, &radius);
        let bytes = dims[0] * dims[1] * dims[2] * elem_size as u64;
        let mut arrays = Vec::with_capacity(quantities);
        for _ in 0..quantities {
            arrays.push(machine.alloc_device_untimed(device, bytes)?);
        }
        let compute_stream = machine.create_stream(k, device);
        Ok(LocalDomain {
            node_idx,
            gpu_idx,
            interior,
            device,
            arrays,
            dims,
            radius,
            elem_size,
            compute_stream,
            machine: machine.clone(),
        })
    }
}

impl std::fmt::Debug for LocalDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LocalDomain(node {:?}, gpu {:?}, dev {}, interior {:?}+{:?})",
            self.node_idx, self.gpu_idx, self.device, self.interior.origin, self.interior.extent
        )
    }
}
