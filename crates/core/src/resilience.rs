//! Degradation-aware resilience: detect that the substrate has drifted
//! from what placement assumed, and re-place against reality.
//!
//! The paper's placement phase (QAP on exchange volume × link bandwidth)
//! runs once at setup, but real heterogeneous machines degrade mid-run —
//! links lose lanes, NICs flap, one GPU straggles, processes die. This
//! module closes the loop:
//!
//! 1. An [`AdaptPolicy`] describes *when* to react (degradation threshold,
//!    warmup, hysteresis, predicted cost/benefit gate) and *how* (migration
//!    mode, re-solve scope). It builds a [`HealthMonitor`].
//! 2. The [`HealthMonitor`] reads the metrics registry's per-exchange
//!    timing histogram at barrier-synchronized checkpoints, flags windows
//!    whose mean exchange time exceeds its warm baseline by the threshold
//!    factor, and — from the per-link busy counters the simulator already
//!    keeps — localizes *which node's* intra-node fabric degraded.
//! 3. [`DistributedDomain::adapt`] turns a verdict into an
//!    [`AdaptOutcome`]: it short-circuits before any probe traffic when
//!    the collective verdict is healthy or gated, re-probes empirical
//!    bandwidths only where needed (the suspect node under
//!    [`AdaptScope::Localized`]), re-solves the QAP, gates on the
//!    predicted gain, and migrates subdomains quantity-by-quantity —
//!    overlapped with each other under [`MigrationMode::Overlapped`].
//!
//! Every step is collective and deterministic: every rank reads the same
//! registry state after a barrier, computes identical placements from the
//! same (gathered or broadcast) matrices, and therefore takes the same
//! branch — there is no coordinator and no races.
//!
//! Rank failure (the shrink-or-respawn contract of `mpisim`) is handled by
//! [`DistributedDomain::abandon_local_state`] on the victim and
//! [`DistributedDomain::rejoin_after_respawn`] on the whole world; see
//! `docs/RESILIENCE.md` for the protocol.

use detsim::{Completion, LinkId};
use gpusim::Buffer;
use mpisim::{RankCtx, Request};

use crate::dim3::{Boundary, Neighborhood};
use crate::domain::DistributedDomain;
use crate::empirical::{distance_from_measured, measure_node_bandwidths, DEFAULT_PROBE_BYTES};
use crate::exchange::build_plans;
use crate::local::LocalDomain;
use crate::partition::Partition;
use crate::placement::{flow_matrix_bc, place_with_distance, Placement, PlacementStrategy};
use crate::qap;
use crate::radius::Radius;

/// Setup-channel tag for the adaptive re-placement all-gather / broadcast
/// (outside the exchange-plan tag space `sid * 32 + dir` and the probe
/// broadcast tag `u64::MAX - 1`).
pub(crate) const ADAPT_BW_TAG: u64 = u64::MAX - 2;

/// Tag base for subdomain migration transfers; far above the plan tag
/// space. One tag per (subdomain, quantity).
const MIGRATE_TAG_BASE: u64 = 1 << 62;

/// How [`DistributedDomain::adapt`] moves subdomain arrays onto their new
/// GPUs once a better placement is found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationMode {
    /// Naive baseline: barrier in, then for each migrating (subdomain,
    /// quantity) array serially stage device→host, send, and wait before
    /// touching the next, then barrier out. Simple, and the whole world
    /// stalls for the duration.
    StopTheWorld,
    /// Quantity-by-quantity overlap: all receives posted first, every
    /// device→host staging copy issued before any send waits, sends drain
    /// as their staging lands. Migration cost approaches the slowest
    /// single transfer instead of the sum.
    Overlapped,
}

/// How much of the machine [`DistributedDomain::adapt`] re-probes and
/// re-solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptScope {
    /// Re-probe every node and re-solve every node's QAP (the
    /// all-gather protocol). Always correct; probe traffic and solve time
    /// scale with the machine.
    Global,
    /// Use the monitor's per-link localization to find the degraded node,
    /// re-probe and re-solve *only that node*, and broadcast its new
    /// placement. Falls back to [`AdaptScope::Global`] when localization
    /// is inconclusive.
    Localized,
}

/// Typed policy for adaptive re-placement: when to react and how.
/// Builder-style; defaults are conservative.
///
/// ```
/// use stencil_core::{AdaptPolicy, AdaptScope, MigrationMode};
/// let policy = AdaptPolicy::new()
///     .threshold(1.3)
///     .warmup_windows(2)
///     .hysteresis_windows(3)
///     .min_benefit(0.05)
///     .mode(MigrationMode::Overlapped)
///     .scope(AdaptScope::Localized);
/// let monitor = policy.monitor();
/// # let _ = monitor;
/// ```
#[derive(Clone, Debug)]
pub struct AdaptPolicy {
    pub(crate) threshold: f64,
    pub(crate) warmup_windows: usize,
    pub(crate) hysteresis_windows: usize,
    pub(crate) min_benefit: f64,
    pub(crate) mode: MigrationMode,
    pub(crate) scope: AdaptScope,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        AdaptPolicy {
            threshold: 1.25,
            warmup_windows: 3,
            hysteresis_windows: 1,
            min_benefit: 0.0,
            mode: MigrationMode::Overlapped,
            scope: AdaptScope::Localized,
        }
    }
}

impl AdaptPolicy {
    /// The default policy: threshold 1.25×, 3 warmup windows, no
    /// hysteresis (react on the first degraded window), no benefit floor,
    /// overlapped migration, localized re-solve.
    pub fn new() -> AdaptPolicy {
        AdaptPolicy::default()
    }

    /// Degradation threshold: a window is degraded when its mean exchange
    /// time exceeds `threshold` × the warm baseline. Must exceed 1.0.
    pub fn threshold(mut self, t: f64) -> Self {
        assert!(t > 1.0, "threshold must exceed 1.0");
        self.threshold = t;
        self
    }

    /// Number of non-empty windows averaged into the warm baseline before
    /// verdicts are issued. At least 1.
    pub fn warmup_windows(mut self, w: usize) -> Self {
        assert!(w >= 1, "need at least one warmup window");
        self.warmup_windows = w;
        self
    }

    /// Number of *consecutive* degraded windows required before adaptation
    /// proceeds. `1` reacts immediately; higher values ride out transients
    /// (a flapping NIC) that re-placement could not fix anyway.
    pub fn hysteresis_windows(mut self, h: usize) -> Self {
        assert!(h >= 1, "need at least one hysteresis window");
        self.hysteresis_windows = h;
        self
    }

    /// Minimum predicted relative gain `(old_cost - new_cost) / old_cost`
    /// of the re-solved placement required to migrate. `0.0` migrates on
    /// any strict improvement.
    pub fn min_benefit(mut self, b: f64) -> Self {
        assert!((0.0..1.0).contains(&b), "benefit floor must be in [0, 1)");
        self.min_benefit = b;
        self
    }

    /// Migration mode (default [`MigrationMode::Overlapped`]).
    pub fn mode(mut self, m: MigrationMode) -> Self {
        self.mode = m;
        self
    }

    /// Re-probe / re-solve scope (default [`AdaptScope::Localized`]).
    pub fn scope(mut self, s: AdaptScope) -> Self {
        self.scope = s;
        self
    }

    /// Build the [`HealthMonitor`] enforcing this policy.
    pub fn monitor(&self) -> HealthMonitor {
        HealthMonitor::from_policy(self.clone())
    }
}

/// Why [`DistributedDomain::adapt`] declined to migrate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SkipReason {
    /// No verdict yet: metrics disabled, empty window, or the baseline is
    /// still warming up.
    Warmup,
    /// Degraded, but not for enough consecutive windows yet.
    Hysteresis {
        /// Consecutive degraded windows seen so far.
        streak: usize,
        /// Windows required by the policy.
        required: usize,
    },
    /// A re-solve ran but the predicted gain is below the policy's floor.
    BelowBenefit {
        /// Predicted relative gain of the new placement.
        predicted_gain: f64,
        /// The policy's `min_benefit`.
        required: f64,
    },
    /// A re-solve ran and the measured substrate still prefers the
    /// current placement (typical when the degradation is inter-node —
    /// intra-node re-placement cannot route around a slow switch).
    UnchangedPlacement,
}

impl SkipReason {
    fn label(&self) -> &'static str {
        match self {
            SkipReason::Warmup => "warmup",
            SkipReason::Hysteresis { .. } => "hysteresis",
            SkipReason::BelowBenefit { .. } => "below-benefit",
            SkipReason::UnchangedPlacement => "unchanged-placement",
        }
    }
}

/// Outcome of one [`DistributedDomain::adapt`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum AdaptOutcome {
    /// The window's mean exchange time is within threshold of baseline;
    /// nothing was probed, nothing moved.
    Healthy,
    /// Adaptation was considered and declined; [`SkipReason`] says at
    /// which gate. Gates before [`SkipReason::BelowBenefit`] issue no
    /// probe traffic.
    Skipped {
        /// The gate that declined.
        reason: SkipReason,
    },
    /// The domain migrated to a new placement and rebuilt its plans.
    Migrated {
        /// The re-solved node under [`AdaptScope::Localized`]; `None`
        /// means a global re-solve.
        node: Option<usize>,
        /// World-total migrated (subdomain, quantity) arrays.
        quantities: usize,
        /// Predicted relative gain `(old - new) / old` in QAP cost.
        predicted_gain: f64,
    },
}

/// Verdict of one health checkpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Health {
    /// No verdict: metrics are disabled, no exchanges ran since the last
    /// checkpoint, or the baseline is still warming up.
    Warmup,
    /// Mean exchange time within `threshold` × baseline.
    Ok {
        /// Mean exchange time over the window just closed, picoseconds.
        mean_ps: f64,
        /// The warm baseline mean, picoseconds.
        baseline_ps: f64,
    },
    /// Mean exchange time exceeded `threshold` × baseline.
    Degraded {
        /// Mean exchange time over the window just closed, picoseconds.
        mean_ps: f64,
        /// The warm baseline mean, picoseconds.
        baseline_ps: f64,
        /// `mean_ps / baseline_ps`.
        ratio: f64,
    },
}

/// Per-node intra-fabric link watch: the raw material for localizing a
/// degraded link to its node. Lazily initialized on the first checkpoint
/// (the monitor is constructed before the machine is reachable).
#[derive(Debug)]
struct LinkWatch {
    /// Both simulator directions of every duplex link, per node.
    links: Vec<Vec<LinkId>>,
    /// `busy_bytes` per link at the last checkpoint (same shape).
    last_busy: Vec<Vec<f64>>,
    /// Virtual time of the last checkpoint, seconds.
    last_t: f64,
    /// Per-node busy fraction of the window just closed (max over the
    /// node's links of `Δbusy / (capacity × Δt)`).
    cur_frac: Vec<f64>,
}

/// How dominant a node's busiest-link fraction must be over the runner-up
/// for [`HealthMonitor::suspect_node`] to call it conclusive. The window
/// length cancels in the ratio, so the test is insensitive to idle gaps
/// (e.g. a respawn down-window) stretching the checkpoint interval.
const LOCALIZE_DOMINANCE: f64 = 2.0;

/// Watches the `exchange/total_ps` histogram of the metrics registry and
/// flags degradation relative to a warm baseline, localizing the suspect
/// node from per-link busy counters.
///
/// Build one from an [`AdaptPolicy`] (`policy.monitor()`), run a few
/// exchanges, and call [`HealthMonitor::check`] — or, usually, let
/// [`DistributedDomain::adapt`] call it — at a **barrier-synchronized
/// point** (e.g. right after the iteration's collective exchange returns).
/// Every rank then reads identical registry state and reaches the same
/// verdict, so the verdict can safely gate the collective adaptation.
/// Requires metrics to be enabled (`WorldConfig::metrics(true)`); with
/// metrics off every check returns [`Health::Warmup`].
#[derive(Debug)]
pub struct HealthMonitor {
    policy: AdaptPolicy,
    /// Histogram position at the last checkpoint.
    last_count: u64,
    last_sum: f64,
    /// Baseline accumulation (mean of the first `warmup_windows` windows).
    warm_sum: f64,
    warm_n: usize,
    baseline_ps: Option<f64>,
    /// Consecutive degraded windows (the hysteresis streak).
    streak: usize,
    watch: Option<LinkWatch>,
}

impl HealthMonitor {
    /// A monitor flagging windows whose mean exchange time exceeds
    /// `threshold` × the baseline (e.g. `1.5` = 50% slower). The baseline
    /// is the mean of the first `warmup_windows` non-empty windows.
    #[deprecated(
        since = "0.2.0",
        note = "use AdaptPolicy::new().threshold(..).warmup_windows(..).monitor()"
    )]
    pub fn new(threshold: f64, warmup_windows: usize) -> HealthMonitor {
        HealthMonitor::from_policy(
            AdaptPolicy::new()
                .threshold(threshold)
                .warmup_windows(warmup_windows),
        )
    }

    pub(crate) fn from_policy(policy: AdaptPolicy) -> HealthMonitor {
        HealthMonitor {
            policy,
            last_count: 0,
            last_sum: 0.0,
            warm_sum: 0.0,
            warm_n: 0,
            baseline_ps: None,
            streak: 0,
            watch: None,
        }
    }

    /// The policy this monitor enforces.
    pub fn policy(&self) -> &AdaptPolicy {
        &self.policy
    }

    /// Close the window since the previous checkpoint and return a verdict.
    /// Call at a barrier-synchronized point on every rank.
    pub fn check(&mut self, ctx: &RankCtx) -> Health {
        let hist = ctx.sim().with_kernel(|k| {
            k.metrics
                .histogram("exchange", "total_ps", &[])
                .map(|h| (h.count, h.sum))
        });
        let Some((count, sum)) = hist else {
            return Health::Warmup;
        };
        let dcount = count - self.last_count;
        let dsum = sum - self.last_sum;
        self.last_count = count;
        self.last_sum = sum;
        if dcount == 0 {
            return Health::Warmup;
        }
        let mean_ps = dsum / dcount as f64;
        self.observe_links(ctx);
        match self.baseline_ps {
            None => {
                self.warm_sum += mean_ps;
                self.warm_n += 1;
                if self.warm_n >= self.policy.warmup_windows {
                    self.baseline_ps = Some(self.warm_sum / self.warm_n as f64);
                }
                Health::Warmup
            }
            Some(baseline_ps) => {
                let ratio = mean_ps / baseline_ps;
                if ratio > self.policy.threshold {
                    Health::Degraded {
                        mean_ps,
                        baseline_ps,
                        ratio,
                    }
                } else {
                    Health::Ok {
                        mean_ps,
                        baseline_ps,
                    }
                }
            }
        }
    }

    /// Advance the per-node link busy fractions over the window just
    /// closed.
    fn observe_links(&mut self, ctx: &RankCtx) {
        let machine = ctx.machine().clone();
        ctx.sim().with_kernel(|k| {
            let watch = self.watch.get_or_insert_with(|| {
                let fabric = machine.fabric();
                let nodes = machine.num_nodes();
                let per_node = fabric.node_link_count();
                let mut links = Vec::with_capacity(nodes);
                for n in 0..nodes {
                    let mut v = Vec::with_capacity(2 * per_node);
                    for l in 0..per_node {
                        let (f, r) = fabric.node_duplex_link(n, l);
                        v.push(f);
                        v.push(r);
                    }
                    links.push(v);
                }
                let last_busy = links
                    .iter()
                    .map(|v| v.iter().map(|&l| k.link_busy_bytes(l)).collect())
                    .collect();
                LinkWatch {
                    links,
                    last_busy,
                    last_t: k.now().as_secs_f64(),
                    cur_frac: vec![0.0; nodes],
                }
            });
            let now = k.now().as_secs_f64();
            let dt = now - watch.last_t;
            watch.last_t = now;
            for (n, links) in watch.links.iter().enumerate() {
                let mut frac: f64 = 0.0;
                for (i, &l) in links.iter().enumerate() {
                    let busy = k.link_busy_bytes(l);
                    let dbusy = busy - watch.last_busy[n][i];
                    watch.last_busy[n][i] = busy;
                    let cap = k.link_capacity(l);
                    if dt > 0.0 && cap > 0.0 {
                        frac = frac.max(dbusy / (cap * dt));
                    }
                }
                watch.cur_frac[n] = frac;
            }
        });
    }

    /// The node whose intra-node fabric most plausibly degraded: the node
    /// whose busiest-link busy fraction over the window just closed
    /// *dominates* every other node's by `LOCALIZE_DOMINANCE` (2.0). A link at
    /// `f×` nominal bandwidth serializes the same halo bytes `1/f×` longer,
    /// so the degraded node's fraction separates sharply from the healthy
    /// ones — and because all nodes share the window length, the ratio is
    /// immune to idle gaps stretching the window. Returns `None` when no
    /// node dominates (uniform load, or the degradation is inter-node —
    /// only intra-node links are watched); ties take the lower node index.
    pub fn suspect_node(&self) -> Option<usize> {
        let w = self.watch.as_ref()?;
        let mut best = 0usize;
        let mut runner_up: f64 = 0.0;
        for (n, &f) in w.cur_frac.iter().enumerate() {
            if f > w.cur_frac[best] {
                runner_up = w.cur_frac[best];
                best = n;
            } else if n != best && f > runner_up {
                runner_up = f;
            }
        }
        let top = w.cur_frac[best];
        (top > 0.0 && top > LOCALIZE_DOMINANCE * runner_up).then_some(best)
    }

    /// Consecutive degraded windows seen (the hysteresis streak).
    pub fn degraded_streak(&self) -> usize {
        self.streak
    }

    pub(crate) fn note_degraded(&mut self) -> usize {
        self.streak += 1;
        self.streak
    }

    pub(crate) fn note_healthy(&mut self) {
        self.streak = 0;
    }

    /// Discard the baseline and re-warm. Call after an adaptation: the
    /// post-migration exchange time is a new normal, and comparing it
    /// against the pre-fault baseline would re-flag a healthy system.
    pub fn rebaseline(&mut self) {
        self.warm_sum = 0.0;
        self.warm_n = 0;
        self.baseline_ps = None;
        self.streak = 0;
    }

    /// The warm baseline mean in picoseconds, once established.
    pub fn baseline_ps(&self) -> Option<f64> {
        self.baseline_ps
    }
}

/// Re-solve every node's placement QAP against its measured distance
/// matrix (`rank_distances[n * ranks_per_node]` is node `n`'s matrix), in
/// parallel across up to `threads` OS threads.
///
/// This is pure compute — no simulator interaction, no virtual time — so
/// it is safe to run from inside a rank fiber; the event loop simply
/// doesn't advance while it runs. Each node's solve writes into its own
/// index-ordered slot and each solve is independently deterministic
/// ([`PlacementStrategy::solve`] has no cross-instance state), so the
/// result is **bit-identical** to the serial loop (`threads == 1`)
/// regardless of thread count or interleaving — committed virtual times
/// downstream cannot diverge. Pinned by `tests/parallel_resolve.rs`.
#[allow(clippy::too_many_arguments)] // mirrors place_with_distance
pub fn resolve_node_placements(
    part: &Partition,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    boundary: Boundary,
    rank_distances: &[Vec<Vec<f64>>],
    ranks_per_node: usize,
    threads: usize,
) -> Vec<Placement> {
    let num_nodes = part.num_nodes();
    assert!(rank_distances.len() >= num_nodes * ranks_per_node);
    let mut out: Vec<Option<Placement>> = vec![None; num_nodes];
    let threads = threads.clamp(1, num_nodes.max(1));
    let chunk = num_nodes.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            s.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    let n = start + off;
                    let idx = part.node_from_linear(n);
                    *slot = Some(place_with_distance(
                        part,
                        idx,
                        &rank_distances[n * ranks_per_node],
                        neighborhood,
                        radius,
                        quantities,
                        elem_size,
                        // Measured matrices use the size-dispatched ladder:
                        // exhaustive on thin nodes, multilevel on fat ones.
                        PlacementStrategy::Empirical,
                        boundary,
                    ));
                }
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("every chunk filled its slots"))
        .collect()
}

/// A candidate placement set with predicted QAP costs under the measured
/// (degraded) distance matrices.
struct Resolved {
    placements: Vec<Placement>,
    old_cost: f64,
    new_cost: f64,
}

impl DistributedDomain {
    /// Adaptive re-placement behind a typed policy (collective): check the
    /// monitor's barrier-synchronized verdict, and — only when every gate
    /// agrees — re-probe, re-solve, and migrate.
    ///
    /// Gate order (each short-circuits before the next; the first three
    /// issue **no probe traffic**):
    ///
    /// 1. Verdict [`Health::Warmup`] → [`SkipReason::Warmup`];
    ///    [`Health::Ok`] → [`AdaptOutcome::Healthy`].
    /// 2. Hysteresis: fewer than `hysteresis_windows` consecutive degraded
    ///    windows → [`SkipReason::Hysteresis`].
    /// 3. Scope: under [`AdaptScope::Localized`] with a conclusive
    ///    suspect, only that node re-probes and re-solves (its first rank
    ///    broadcasts the result); otherwise every node does.
    /// 4. Unchanged assignment → [`SkipReason::UnchangedPlacement`];
    ///    predicted gain below `min_benefit` → [`SkipReason::BelowBenefit`].
    /// 5. Migrate per [`MigrationMode`], rebuild plans, rebaseline the
    ///    monitor, return [`AdaptOutcome::Migrated`].
    ///
    /// Every rank must call this at the same point (it is as collective as
    /// the constructor). Skips increment the `resilience/adapt_skipped`
    /// counter, labeled by gate.
    pub fn adapt(&mut self, ctx: &RankCtx, monitor: &mut HealthMonitor) -> AdaptOutcome {
        let verdict = monitor.check(ctx);
        match verdict {
            Health::Warmup => return self.skip(ctx, SkipReason::Warmup),
            Health::Ok { .. } => {
                monitor.note_healthy();
                return AdaptOutcome::Healthy;
            }
            Health::Degraded { .. } => {}
        }
        let policy = monitor.policy().clone();
        let streak = monitor.note_degraded();
        if streak < policy.hysteresis_windows {
            return self.skip(
                ctx,
                SkipReason::Hysteresis {
                    streak,
                    required: policy.hysteresis_windows,
                },
            );
        }
        let suspect = match policy.scope {
            AdaptScope::Localized => monitor.suspect_node(),
            AdaptScope::Global => None,
        };
        let resolved = match suspect {
            Some(node) => self.probe_and_resolve_node(ctx, node),
            None => self.probe_and_resolve_global(ctx),
        };
        if resolved
            .placements
            .iter()
            .zip(&self.placements)
            .all(|(a, b)| a.gpu_for_subdomain == b.gpu_for_subdomain)
        {
            return self.skip(ctx, SkipReason::UnchangedPlacement);
        }
        let predicted_gain = if resolved.old_cost > 0.0 {
            (resolved.old_cost - resolved.new_cost) / resolved.old_cost
        } else {
            0.0
        };
        if predicted_gain < policy.min_benefit {
            return self.skip(
                ctx,
                SkipReason::BelowBenefit {
                    predicted_gain,
                    required: policy.min_benefit,
                },
            );
        }
        let quantities = resolved
            .placements
            .iter()
            .zip(&self.placements)
            .map(|(a, b)| {
                a.gpu_for_subdomain
                    .iter()
                    .zip(&b.gpu_for_subdomain)
                    .filter(|(x, y)| x != y)
                    .count()
            })
            .sum::<usize>()
            * self.spec.quantities;
        self.migrate_and_rebuild(ctx, resolved.placements, policy.mode);
        monitor.rebaseline();
        AdaptOutcome::Migrated {
            node: suspect,
            quantities,
            predicted_gain,
        }
    }

    fn skip(&self, ctx: &RankCtx, reason: SkipReason) -> AdaptOutcome {
        ctx.sim().with_kernel(|k| {
            if k.metrics.is_enabled() {
                k.metrics.counter_add(
                    "resilience",
                    "adapt_skipped",
                    &[("reason", reason.label())],
                    1,
                );
            }
        });
        AdaptOutcome::Skipped { reason }
    }

    /// Adaptive re-placement (collective): unconditionally re-probe,
    /// re-solve, and migrate. Returns `true` if the placement changed.
    #[deprecated(
        since = "0.2.0",
        note = "use DistributedDomain::adapt with an AdaptPolicy-built HealthMonitor"
    )]
    pub fn adapt_placement(&mut self, ctx: &RankCtx) -> bool {
        let resolved = self.probe_and_resolve_global(ctx);
        if resolved
            .placements
            .iter()
            .zip(&self.placements)
            .all(|(a, b)| a.gpu_for_subdomain == b.gpu_for_subdomain)
        {
            return false;
        }
        self.migrate_and_rebuild(ctx, resolved.placements, MigrationMode::Overlapped);
        true
    }

    /// Probe every node, all-gather the measured matrices, re-solve every
    /// node's QAP. The probe copies ride the same (degraded) links a halo
    /// exchange would, so the matrices see the fault.
    ///
    /// Unlike the constructor's homogeneity shortcut (each rank probes only
    /// its own node), the matrices are all-gathered so that under
    /// *localized* degradation every rank still computes identical
    /// placements for every node.
    fn probe_and_resolve_global(&self, ctx: &RankCtx) -> Resolved {
        let rpn = ctx.ranks_per_node();
        let bw = measure_node_bandwidths(ctx, DEFAULT_PROBE_BYTES);
        let d = distance_from_measured(&bw);
        let all: Vec<Vec<Vec<f64>>> = ctx.all_gather_obj(ADAPT_BW_TAG, d);

        // Re-solve per node, in parallel across OS threads (solver-only
        // work outside the event loop; deterministic slot-ordered
        // reduction). Inputs are identical on every rank, so the solves
        // are too.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let placements = resolve_node_placements(
            &self.part,
            self.spec.neighborhood,
            &self.spec.radius,
            self.spec.quantities,
            self.spec.elem_size,
            self.spec.boundary,
            &all,
            rpn,
            threads,
        );
        let mut old_cost = 0.0;
        let mut new_cost = 0.0;
        for (n, pl) in placements.iter().enumerate() {
            let idx = self.part.node_from_linear(n);
            let w = flow_matrix_bc(
                &self.part,
                idx,
                self.spec.neighborhood,
                &self.spec.radius,
                self.spec.quantities,
                self.spec.elem_size,
                self.spec.boundary,
            );
            old_cost += qap::cost(&w, &all[n * rpn], &self.placements[n].gpu_for_subdomain);
            new_cost += pl.cost;
        }
        Resolved {
            placements,
            old_cost,
            new_cost,
        }
    }

    /// Probe and re-solve only `bad_node`: its ranks run the node-local
    /// probe, its first rank solves the node's QAP against the measured
    /// matrix and broadcasts `(placement, old_cost, new_cost)` to every
    /// other rank of the world. All other nodes keep their placements.
    fn probe_and_resolve_node(&self, ctx: &RankCtx, bad_node: usize) -> Resolved {
        let rpn = ctx.ranks_per_node();
        let first = bad_node * rpn;
        let num_ranks = ctx.size();
        let (pl, old_cost, new_cost) = if ctx.node() == bad_node {
            let bw = measure_node_bandwidths(ctx, DEFAULT_PROBE_BYTES);
            if ctx.rank() == first {
                let d = distance_from_measured(&bw);
                let idx = self.part.node_from_linear(bad_node);
                let pl = place_with_distance(
                    &self.part,
                    idx,
                    &d,
                    self.spec.neighborhood,
                    &self.spec.radius,
                    self.spec.quantities,
                    self.spec.elem_size,
                    PlacementStrategy::Empirical,
                    self.spec.boundary,
                );
                let w = flow_matrix_bc(
                    &self.part,
                    idx,
                    self.spec.neighborhood,
                    &self.spec.radius,
                    self.spec.quantities,
                    self.spec.elem_size,
                    self.spec.boundary,
                );
                let old = qap::cost(&w, &d, &self.placements[bad_node].gpu_for_subdomain);
                let new = pl.cost;
                for r in 0..num_ranks {
                    if r != first {
                        ctx.send_obj(r, ADAPT_BW_TAG, (pl.clone(), old, new));
                    }
                }
                (pl, old, new)
            } else {
                ctx.recv_obj::<(Placement, f64, f64)>(first, ADAPT_BW_TAG)
            }
        } else {
            ctx.recv_obj::<(Placement, f64, f64)>(first, ADAPT_BW_TAG)
        };
        let mut placements = self.placements.clone();
        placements[bad_node] = pl;
        Resolved {
            placements,
            old_cost,
            new_cost,
        }
    }

    /// Migrate subdomain arrays to their new GPUs and rebuild the exchange
    /// plans. Placement is per-node, so migrations never cross nodes; they
    /// may cross ranks within a node. Protocol: post all receives first,
    /// then stage-and-send departures, then intra-rank copies, then drain
    /// — deadlock-free because receives are posted before any blocking
    /// operation.
    fn migrate_and_rebuild(
        &mut self,
        ctx: &RankCtx,
        new_placements: Vec<Placement>,
        mode: MigrationMode,
    ) {
        let machine = ctx.machine().clone();
        let rpn = ctx.ranks_per_node();
        let gpr = machine.gpus_per_node() / rpn;
        let node = ctx.node();
        let my_rank = ctx.rank();
        let stop_the_world = mode == MigrationMode::StopTheWorld;
        if stop_the_world {
            // Naive baseline: fence the whole world before touching data.
            ctx.barrier();
        }

        let node_idx = self.part.node_from_linear(node);
        let quantities = self.spec.quantities;
        let my_devices = ctx.gpus();
        let mut old_locals: Vec<Option<LocalDomain>> = std::mem::take(&mut self.locals)
            .into_iter()
            .map(Some)
            .collect();

        // New local set, one per owned device, reusing LocalDomains whose
        // device keeps its subdomain.
        let mut new_locals: Vec<LocalDomain> = Vec::with_capacity(my_devices.len());
        // (new_local index, subdomain, old device, source rank)
        let mut arrivals: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (i, &device) in my_devices.iter().enumerate() {
            let local_gpu = machine.local_of(device);
            let s = new_placements[node].subdomain_for_gpu[local_gpu];
            let old_gpu = self.placements[node].gpu_for_subdomain[s];
            let old_device = machine.device_at(node, old_gpu);
            if old_device == device {
                let j = old_locals
                    .iter()
                    .position(|l| l.as_ref().is_some_and(|l| l.device == device))
                    .expect("device owned a subdomain before adaptation");
                new_locals.push(old_locals[j].take().expect("just located"));
                continue;
            }
            let gpu_idx = self.part.gpu_from_linear(s);
            let interior = self.part.gpu_box(node_idx, gpu_idx);
            let local = ctx
                .sim()
                .with_kernel(|k| {
                    LocalDomain::new(
                        &machine,
                        k,
                        node_idx,
                        gpu_idx,
                        interior,
                        device,
                        quantities,
                        self.spec.elem_size,
                        self.spec.radius,
                    )
                })
                .unwrap_or_else(|e| panic!("allocating migrated subdomain: {e}"));
            arrivals.push((i, s, old_device, node * rpn + old_gpu / gpr));
            new_locals.push(local);
        }

        let socket_of = |device: usize| {
            machine
                .fabric()
                .node_spec()
                .gpu_socket(machine.local_of(device))
        };

        // Post receives for subdomains arriving from other ranks.
        let mut recv_stage: Vec<(usize, usize, Buffer, Request)> = Vec::new(); // (new idx, q, host, req)
        for &(i, s, _, src_rank) in &arrivals {
            if src_rank == my_rank {
                continue;
            }
            for q in 0..quantities {
                let len = new_locals[i].arrays[q].len();
                let host = machine.alloc_host_untimed(node, socket_of(my_devices[i]), len);
                let tag = MIGRATE_TAG_BASE + (s as u64) * quantities as u64 + q as u64;
                let req = ctx.irecv(&host, 0, len, src_rank, tag);
                recv_stage.push((i, q, host, req));
            }
        }

        // Stage and send departures to other ranks. Overlapped mode issues
        // every D2H staging copy *before* waiting on any — the copies ride
        // distinct source devices and streams, so migration cost
        // approaches the slowest transfer instead of the sum. Stop-the-
        // world waits out each (copy, send) pair before touching the next.
        let mut send_reqs: Vec<Request> = Vec::new();
        let mut send_stage: Vec<Buffer> = Vec::new(); // keep host bufs alive
        let mut staged: Vec<(Completion, Buffer, u64, usize, u64)> = Vec::new(); // (copy, host, tag, dst, len)
        for old in old_locals.iter().flatten() {
            let s = self.part.gpu_linear(old.gpu_idx);
            let new_gpu = new_placements[node].gpu_for_subdomain[s];
            let dst_rank = node * rpn + new_gpu / gpr;
            if dst_rank == my_rank {
                continue; // handled as an intra-rank copy below
            }
            for q in 0..quantities {
                let len = old.arrays[q].len();
                let host = machine.alloc_host_untimed(node, socket_of(old.device), len);
                let c = machine.memcpy_async(
                    ctx.sim(),
                    old.compute_stream,
                    &host,
                    0,
                    &old.arrays[q],
                    0,
                    len,
                );
                let tag = MIGRATE_TAG_BASE + (s as u64) * quantities as u64 + q as u64;
                if stop_the_world {
                    ctx.sim().wait(&c);
                    let r = ctx.isend(&host, 0, len, dst_rank, tag);
                    ctx.wait(&r);
                    send_stage.push(host);
                } else {
                    staged.push((c, host, tag, dst_rank, len));
                }
            }
        }
        for (c, host, tag, dst_rank, len) in staged {
            ctx.sim().wait(&c);
            send_reqs.push(ctx.isend(&host, 0, len, dst_rank, tag));
            send_stage.push(host);
        }

        // Intra-rank moves: peer copy when the fabric allows it, otherwise
        // bounce through the source socket's host memory.
        let mut copies: Vec<Completion> = Vec::new();
        for &(i, _, old_device, src_rank) in &arrivals {
            if src_rank != my_rank {
                continue;
            }
            let j = old_locals
                .iter()
                .position(|l| l.as_ref().is_some_and(|l| l.device == old_device))
                .expect("intra-rank source subdomain present");
            let old = old_locals[j].as_ref().expect("just located");
            let dst = &new_locals[i];
            for q in 0..quantities {
                let len = old.arrays[q].len();
                if machine.can_access_peer(old_device, dst.device) {
                    machine
                        .enable_peer_access(old_device, dst.device)
                        .expect("peer capability checked");
                    copies.push(machine.memcpy_async(
                        ctx.sim(),
                        old.compute_stream,
                        &dst.arrays[q],
                        0,
                        &old.arrays[q],
                        0,
                        len,
                    ));
                } else {
                    let host = machine.alloc_host_untimed(node, socket_of(old_device), len);
                    let c = machine.memcpy_async(
                        ctx.sim(),
                        old.compute_stream,
                        &host,
                        0,
                        &old.arrays[q],
                        0,
                        len,
                    );
                    ctx.sim().wait(&c);
                    copies.push(machine.memcpy_async(
                        ctx.sim(),
                        dst.compute_stream,
                        &dst.arrays[q],
                        0,
                        &host,
                        0,
                        len,
                    ));
                    send_stage.push(host);
                }
                if stop_the_world {
                    for c in copies.drain(..) {
                        ctx.sim().wait(&c);
                    }
                }
            }
        }

        // Drain: sends, receives, then unstage received data to the device.
        ctx.wait_all(&send_reqs);
        let mut unstage: Vec<Completion> = Vec::new();
        for (i, q, host, req) in recv_stage {
            ctx.wait(&req);
            let dst = &new_locals[i];
            let len = dst.arrays[q].len();
            let c = machine.memcpy_async(
                ctx.sim(),
                dst.compute_stream,
                &dst.arrays[q],
                0,
                &host,
                0,
                len,
            );
            if stop_the_world {
                ctx.sim().wait(&c);
            } else {
                unstage.push(c);
            }
            send_stage.push(host);
        }
        for c in copies.iter().chain(unstage.iter()) {
            ctx.sim().wait(c);
        }
        drop(send_stage); // host staging released (host memory is untracked)

        // Free device arrays of subdomains that left their old device.
        for old in old_locals.into_iter().flatten() {
            for a in &old.arrays {
                machine.free_device(a);
            }
        }

        self.free_plan_device_buffers(&machine);
        self.placements = new_placements;
        self.locals = new_locals;
        if stop_the_world {
            // Fence out: nobody computes until the whole world migrated.
            ctx.barrier();
        }
        let (send_plans, recv_plans, grouped_send_plans, grouped_recv_plans, summary) =
            build_plans(ctx, &self.part, &self.placements, &self.locals, &self.spec);
        self.send_plans = send_plans;
        self.recv_plans = recv_plans;
        self.grouped_send_plans = grouped_send_plans;
        self.grouped_recv_plans = grouped_recv_plans;
        self.summary = summary;
    }

    /// Release the plans' device staging (before a rebuild allocates the
    /// new ones) and clear the plan vectors. `remote_buf` is the colocated
    /// *receiver's* buffer, IPC-opened at setup — the receiver frees it as
    /// its own `recv_dev_buf`; freeing it here too would double-free.
    fn free_plan_device_buffers(&mut self, machine: &gpusim::GpuMachine) {
        for sp in std::mem::take(&mut self.send_plans) {
            if let Some(b) = &sp.pack_buf {
                machine.free_device(b);
            }
        }
        for rp in std::mem::take(&mut self.recv_plans) {
            if let Some(b) = &rp.recv_dev_buf {
                machine.free_device(b);
            }
        }
        for gp in std::mem::take(&mut self.grouped_send_plans) {
            machine.free_device(&gp.pack_buf);
        }
        for gp in std::mem::take(&mut self.grouped_recv_plans) {
            for seg in &gp.segments {
                if let Some(b) = &seg.dev_buf {
                    machine.free_device(b);
                }
            }
        }
    }

    /// A killed rank's teardown (call when `ctx.is_alive(ctx.rank())`
    /// turns false): free this rank's device arrays and plan staging —
    /// the simulated process died, its device memory is reclaimed — but
    /// keep the placement tables, which are world-global knowledge the
    /// respawned process re-derives. Local, not collective. The domain is
    /// unusable until [`DistributedDomain::rejoin_after_respawn`].
    pub fn abandon_local_state(&mut self, ctx: &RankCtx) {
        let machine = ctx.machine().clone();
        for old in std::mem::take(&mut self.locals) {
            for a in &old.arrays {
                machine.free_device(a);
            }
        }
        self.free_plan_device_buffers(&machine);
    }

    /// Rejoin after a kill/respawn cycle (collective over the *whole*
    /// world, once it is whole again — gate on `ctx.await_all_alive()`):
    /// the respawned rank reallocates its subdomains per the current
    /// placements (contents are fresh — a died process's data is gone;
    /// checkpoint/restart is the application's concern), survivors drop
    /// their stale plans (they reference revoked channels and the dead
    /// rank's freed IPC buffers), and everyone rebuilds the exchange plans
    /// — the re-handshake, riding the fresh channels the kill's
    /// communicator revocation made room for.
    pub fn rejoin_after_respawn(&mut self, ctx: &RankCtx) {
        let machine = ctx.machine().clone();
        // Survivors still hold pre-kill plans; the respawned rank's were
        // already cleared by abandon_local_state (making this a no-op).
        self.free_plan_device_buffers(&machine);
        if self.locals.is_empty() {
            let node = ctx.node();
            let node_idx = self.part.node_from_linear(node);
            for device in ctx.gpus() {
                let local_gpu = machine.local_of(device);
                let s = self.placements[node].subdomain_for_gpu[local_gpu];
                let gpu_idx = self.part.gpu_from_linear(s);
                let interior = self.part.gpu_box(node_idx, gpu_idx);
                let local = ctx.sim().with_kernel(|k| {
                    LocalDomain::new(
                        &machine,
                        k,
                        node_idx,
                        gpu_idx,
                        interior,
                        device,
                        self.spec.quantities,
                        self.spec.elem_size,
                        self.spec.radius,
                    )
                });
                self.locals
                    .push(local.unwrap_or_else(|e| panic!("reallocating after respawn: {e}")));
            }
        }
        let (send_plans, recv_plans, grouped_send_plans, grouped_recv_plans, summary) =
            build_plans(ctx, &self.part, &self.placements, &self.locals, &self.spec);
        self.send_plans = send_plans;
        self.recv_plans = recv_plans;
        self.grouped_send_plans = grouped_send_plans;
        self.grouped_recv_plans = grouped_recv_plans;
        self.summary = summary;
    }
}
