//! Degradation-aware resilience: detect that the substrate has drifted
//! from what placement assumed, and re-place against reality.
//!
//! The paper's placement phase (QAP on exchange volume × link bandwidth)
//! runs once at setup, but real heterogeneous machines degrade mid-run —
//! links lose lanes, NICs flap, one GPU straggles. This module closes the
//! loop:
//!
//! 1. A [`HealthMonitor`] reads the metrics registry's per-exchange timing
//!    histogram at barrier-synchronized checkpoints and flags when the mean
//!    exchange time exceeds its warm baseline by a threshold factor.
//! 2. [`DistributedDomain::adapt_placement`] re-probes empirical
//!    bandwidths (which now see the degradation, because the probes ride
//!    the same links), all-gathers every node's measured matrix, re-solves
//!    the QAP per node, migrates subdomain arrays between GPUs, and
//!    rebuilds the specialized exchange plans.
//!
//! Both steps are collective and deterministic: every rank reads the same
//! registry state after a barrier, computes identical placements from the
//! same all-gathered matrices, and therefore takes the same branch —
//! there is no coordinator and no races.

use detsim::Completion;
use gpusim::Buffer;
use mpisim::{RankCtx, Request};

use crate::dim3::{Boundary, Neighborhood};
use crate::domain::DistributedDomain;
use crate::empirical::{distance_from_measured, measure_node_bandwidths, DEFAULT_PROBE_BYTES};
use crate::exchange::build_plans;
use crate::local::LocalDomain;
use crate::partition::Partition;
use crate::placement::{place_with_distance, Placement, PlacementStrategy};
use crate::radius::Radius;

/// Setup-channel tag for the adaptive re-placement all-gather (outside the
/// exchange-plan tag space `sid * 32 + dir` and the probe broadcast tag
/// `u64::MAX - 1`).
const ADAPT_BW_TAG: u64 = u64::MAX - 2;

/// Tag base for subdomain migration transfers; far above the plan tag
/// space. One tag per (subdomain, quantity).
const MIGRATE_TAG_BASE: u64 = 1 << 62;

/// Verdict of one health checkpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Health {
    /// No verdict: metrics are disabled, no exchanges ran since the last
    /// checkpoint, or the baseline is still warming up.
    Warmup,
    /// Mean exchange time within `threshold` × baseline.
    Ok {
        /// Mean exchange time over the window just closed, picoseconds.
        mean_ps: f64,
        /// The warm baseline mean, picoseconds.
        baseline_ps: f64,
    },
    /// Mean exchange time exceeded `threshold` × baseline.
    Degraded {
        /// Mean exchange time over the window just closed, picoseconds.
        mean_ps: f64,
        /// The warm baseline mean, picoseconds.
        baseline_ps: f64,
        /// `mean_ps / baseline_ps`.
        ratio: f64,
    },
}

/// Watches the `exchange/total_ps` histogram of the metrics registry and
/// flags degradation relative to a warm baseline.
///
/// Usage: create one per rank after building the domain, run a few
/// exchanges, and call [`HealthMonitor::check`] at a **barrier-synchronized
/// point** (e.g. right after the iteration's collective exchange returns).
/// Every rank then reads identical registry state and reaches the same
/// verdict, so the verdict can safely gate the collective
/// [`DistributedDomain::adapt_placement`]. Requires metrics to be enabled
/// (`WorldConfig::metrics(true)`); with metrics off every check returns
/// [`Health::Warmup`].
#[derive(Debug)]
pub struct HealthMonitor {
    threshold: f64,
    warmup_windows: usize,
    /// Histogram position at the last checkpoint.
    last_count: u64,
    last_sum: f64,
    /// Baseline accumulation (mean of the first `warmup_windows` windows).
    warm_sum: f64,
    warm_n: usize,
    baseline_ps: Option<f64>,
}

impl HealthMonitor {
    /// A monitor flagging windows whose mean exchange time exceeds
    /// `threshold` × the baseline (e.g. `1.5` = 50% slower). The baseline
    /// is the mean of the first `warmup_windows` non-empty windows.
    pub fn new(threshold: f64, warmup_windows: usize) -> HealthMonitor {
        assert!(threshold > 1.0, "threshold must exceed 1.0");
        assert!(warmup_windows >= 1, "need at least one warmup window");
        HealthMonitor {
            threshold,
            warmup_windows,
            last_count: 0,
            last_sum: 0.0,
            warm_sum: 0.0,
            warm_n: 0,
            baseline_ps: None,
        }
    }

    /// Close the window since the previous checkpoint and return a verdict.
    /// Call at a barrier-synchronized point on every rank.
    pub fn check(&mut self, ctx: &RankCtx) -> Health {
        let Some((count, sum)) = ctx.sim().with_kernel(|k| {
            k.metrics
                .histogram("exchange", "total_ps", &[])
                .map(|h| (h.count, h.sum))
        }) else {
            return Health::Warmup;
        };
        let dcount = count - self.last_count;
        let dsum = sum - self.last_sum;
        self.last_count = count;
        self.last_sum = sum;
        if dcount == 0 {
            return Health::Warmup;
        }
        let mean_ps = dsum / dcount as f64;
        match self.baseline_ps {
            None => {
                self.warm_sum += mean_ps;
                self.warm_n += 1;
                if self.warm_n >= self.warmup_windows {
                    self.baseline_ps = Some(self.warm_sum / self.warm_n as f64);
                }
                Health::Warmup
            }
            Some(baseline_ps) => {
                let ratio = mean_ps / baseline_ps;
                if ratio > self.threshold {
                    Health::Degraded {
                        mean_ps,
                        baseline_ps,
                        ratio,
                    }
                } else {
                    Health::Ok {
                        mean_ps,
                        baseline_ps,
                    }
                }
            }
        }
    }

    /// Discard the baseline and re-warm. Call after an adaptation: the
    /// post-migration exchange time is a new normal, and comparing it
    /// against the pre-fault baseline would re-flag a healthy system.
    pub fn rebaseline(&mut self) {
        self.warm_sum = 0.0;
        self.warm_n = 0;
        self.baseline_ps = None;
    }

    /// The warm baseline mean in picoseconds, once established.
    pub fn baseline_ps(&self) -> Option<f64> {
        self.baseline_ps
    }
}

/// Re-solve every node's placement QAP against its measured distance
/// matrix (`rank_distances[n * ranks_per_node]` is node `n`'s matrix), in
/// parallel across up to `threads` OS threads.
///
/// This is pure compute — no simulator interaction, no virtual time — so
/// it is safe to run from inside a rank fiber; the event loop simply
/// doesn't advance while it runs. Each node's solve writes into its own
/// index-ordered slot and each solve is independently deterministic
/// ([`PlacementStrategy::solve`] has no cross-instance state), so the
/// result is **bit-identical** to the serial loop (`threads == 1`)
/// regardless of thread count or interleaving — committed virtual times
/// downstream cannot diverge. Pinned by `tests/parallel_resolve.rs`.
#[allow(clippy::too_many_arguments)] // mirrors place_with_distance
pub fn resolve_node_placements(
    part: &Partition,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    boundary: Boundary,
    rank_distances: &[Vec<Vec<f64>>],
    ranks_per_node: usize,
    threads: usize,
) -> Vec<Placement> {
    let num_nodes = part.num_nodes();
    assert!(rank_distances.len() >= num_nodes * ranks_per_node);
    let mut out: Vec<Option<Placement>> = vec![None; num_nodes];
    let threads = threads.clamp(1, num_nodes.max(1));
    let chunk = num_nodes.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            s.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    let n = start + off;
                    let idx = part.node_from_linear(n);
                    *slot = Some(place_with_distance(
                        part,
                        idx,
                        &rank_distances[n * ranks_per_node],
                        neighborhood,
                        radius,
                        quantities,
                        elem_size,
                        // Measured matrices use the size-dispatched ladder:
                        // exhaustive on thin nodes, multilevel on fat ones.
                        PlacementStrategy::Empirical,
                        boundary,
                    ));
                }
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("every chunk filled its slots"))
        .collect()
}

impl DistributedDomain {
    /// Adaptive re-placement (collective): re-probe empirical bandwidths,
    /// re-solve the per-node QAP against the measured (possibly degraded)
    /// matrices, migrate subdomain arrays onto their new GPUs, and rebuild
    /// the exchange plans. Returns `true` if the placement changed and the
    /// domain was rebuilt, `false` if the measured substrate still prefers
    /// the current placement (no migration, no plan rebuild).
    ///
    /// Every rank must call this at the same point (it is as collective as
    /// the constructor); gate it on a [`HealthMonitor`] verdict from a
    /// barrier-synchronized checkpoint so all ranks agree to enter.
    ///
    /// Unlike the constructor's homogeneity shortcut (each rank probes only
    /// its own node), the measured matrices are all-gathered so that under
    /// *localized* degradation every rank still computes identical
    /// placements for every node.
    pub fn adapt_placement(&mut self, ctx: &RankCtx) -> bool {
        let machine = ctx.machine().clone();
        let rpn = ctx.ranks_per_node();
        let gpr = machine.gpus_per_node() / rpn;
        let node = ctx.node();
        let my_rank = ctx.rank();

        // Probe under current conditions: the probe copies ride the same
        // (degraded) links a halo exchange would.
        let bw = measure_node_bandwidths(ctx, DEFAULT_PROBE_BYTES);
        let d = distance_from_measured(&bw);
        let all: Vec<Vec<Vec<f64>>> = ctx.all_gather_obj(ADAPT_BW_TAG, d);

        // Re-solve the QAP per node against its own measured matrix, in
        // parallel across OS threads (solver-only work outside the event
        // loop; deterministic slot-ordered reduction). Inputs are identical
        // on every rank, so the solves are too.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let new_placements = resolve_node_placements(
            &self.part,
            self.spec.neighborhood,
            &self.spec.radius,
            self.spec.quantities,
            self.spec.elem_size,
            self.spec.boundary,
            &all,
            rpn,
            threads,
        );

        // Compare assignments, not costs: the cost is measured against the
        // new matrix and differs even when the assignment is unchanged.
        if new_placements
            .iter()
            .zip(&self.placements)
            .all(|(a, b)| a.gpu_for_subdomain == b.gpu_for_subdomain)
        {
            return false; // same verdict on every rank: nothing to do
        }

        // ---- migrate subdomain arrays to their new GPUs -------------------
        // Placement is per-node, so migrations never cross nodes; they may
        // cross ranks within a node. Protocol: post all receives first,
        // then stage-and-send departures, then intra-rank copies, then
        // drain — deadlock-free because receives are posted before any
        // blocking operation.
        let node_idx = self.part.node_from_linear(node);
        let quantities = self.spec.quantities;
        let my_devices = ctx.gpus();
        let mut old_locals: Vec<Option<LocalDomain>> = std::mem::take(&mut self.locals)
            .into_iter()
            .map(Some)
            .collect();

        // New local set, one per owned device, reusing LocalDomains whose
        // device keeps its subdomain.
        let mut new_locals: Vec<LocalDomain> = Vec::with_capacity(my_devices.len());
        // (new_local index, subdomain, old device, source rank)
        let mut arrivals: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (i, &device) in my_devices.iter().enumerate() {
            let local_gpu = machine.local_of(device);
            let s = new_placements[node].subdomain_for_gpu[local_gpu];
            let old_gpu = self.placements[node].gpu_for_subdomain[s];
            let old_device = machine.device_at(node, old_gpu);
            if old_device == device {
                let j = old_locals
                    .iter()
                    .position(|l| l.as_ref().is_some_and(|l| l.device == device))
                    .expect("device owned a subdomain before adaptation");
                new_locals.push(old_locals[j].take().expect("just located"));
                continue;
            }
            let gpu_idx = self.part.gpu_from_linear(s);
            let interior = self.part.gpu_box(node_idx, gpu_idx);
            let local = ctx
                .sim()
                .with_kernel(|k| {
                    LocalDomain::new(
                        &machine,
                        k,
                        node_idx,
                        gpu_idx,
                        interior,
                        device,
                        quantities,
                        self.spec.elem_size,
                        self.spec.radius,
                    )
                })
                .unwrap_or_else(|e| panic!("allocating migrated subdomain: {e}"));
            arrivals.push((i, s, old_device, node * rpn + old_gpu / gpr));
            new_locals.push(local);
        }

        let socket_of = |device: usize| {
            machine
                .fabric()
                .node_spec()
                .gpu_socket(machine.local_of(device))
        };

        // Post receives for subdomains arriving from other ranks.
        let mut recv_stage: Vec<(usize, usize, Buffer, Request)> = Vec::new(); // (new idx, q, host, req)
        for &(i, s, _, src_rank) in &arrivals {
            if src_rank == my_rank {
                continue;
            }
            for q in 0..quantities {
                let len = new_locals[i].arrays[q].len();
                let host = machine.alloc_host_untimed(node, socket_of(my_devices[i]), len);
                let tag = MIGRATE_TAG_BASE + (s as u64) * quantities as u64 + q as u64;
                let req = ctx.irecv(&host, 0, len, src_rank, tag);
                recv_stage.push((i, q, host, req));
            }
        }

        // Stage and send departures to other ranks (D2H, then isend).
        let mut send_reqs: Vec<Request> = Vec::new();
        let mut send_stage: Vec<Buffer> = Vec::new(); // keep host bufs alive
        for old in old_locals.iter().flatten() {
            let s = self.part.gpu_linear(old.gpu_idx);
            let new_gpu = new_placements[node].gpu_for_subdomain[s];
            let dst_rank = node * rpn + new_gpu / gpr;
            if dst_rank == my_rank {
                continue; // handled as an intra-rank copy below
            }
            for q in 0..quantities {
                let len = old.arrays[q].len();
                let host = machine.alloc_host_untimed(node, socket_of(old.device), len);
                let c = machine.memcpy_async(
                    ctx.sim(),
                    old.compute_stream,
                    &host,
                    0,
                    &old.arrays[q],
                    0,
                    len,
                );
                ctx.sim().wait(&c);
                let tag = MIGRATE_TAG_BASE + (s as u64) * quantities as u64 + q as u64;
                send_reqs.push(ctx.isend(&host, 0, len, dst_rank, tag));
                send_stage.push(host);
            }
        }

        // Intra-rank moves: peer copy when the fabric allows it, otherwise
        // bounce through the source socket's host memory.
        let mut copies: Vec<Completion> = Vec::new();
        for &(i, _, old_device, src_rank) in &arrivals {
            if src_rank != my_rank {
                continue;
            }
            let j = old_locals
                .iter()
                .position(|l| l.as_ref().is_some_and(|l| l.device == old_device))
                .expect("intra-rank source subdomain present");
            let old = old_locals[j].as_ref().expect("just located");
            let dst = &new_locals[i];
            for q in 0..quantities {
                let len = old.arrays[q].len();
                if machine.can_access_peer(old_device, dst.device) {
                    machine
                        .enable_peer_access(old_device, dst.device)
                        .expect("peer capability checked");
                    copies.push(machine.memcpy_async(
                        ctx.sim(),
                        old.compute_stream,
                        &dst.arrays[q],
                        0,
                        &old.arrays[q],
                        0,
                        len,
                    ));
                } else {
                    let host = machine.alloc_host_untimed(node, socket_of(old_device), len);
                    let c = machine.memcpy_async(
                        ctx.sim(),
                        old.compute_stream,
                        &host,
                        0,
                        &old.arrays[q],
                        0,
                        len,
                    );
                    ctx.sim().wait(&c);
                    copies.push(machine.memcpy_async(
                        ctx.sim(),
                        dst.compute_stream,
                        &dst.arrays[q],
                        0,
                        &host,
                        0,
                        len,
                    ));
                    send_stage.push(host);
                }
            }
        }

        // Drain: sends, receives, then unstage received data to the device.
        ctx.wait_all(&send_reqs);
        let mut unstage: Vec<Completion> = Vec::new();
        for (i, q, host, req) in recv_stage {
            ctx.wait(&req);
            let dst = &new_locals[i];
            let len = dst.arrays[q].len();
            unstage.push(machine.memcpy_async(
                ctx.sim(),
                dst.compute_stream,
                &dst.arrays[q],
                0,
                &host,
                0,
                len,
            ));
            send_stage.push(host);
        }
        for c in copies.iter().chain(unstage.iter()) {
            ctx.sim().wait(c);
        }
        drop(send_stage); // host staging released (host memory is untracked)

        // Free device arrays of subdomains that left their old device.
        for old in old_locals.into_iter().flatten() {
            for a in &old.arrays {
                machine.free_device(a);
            }
        }

        // Release the old plans' device staging before the rebuild
        // allocates the new ones. `remote_buf` is the colocated *receiver's*
        // buffer, IPC-opened at setup — the receiver frees it as its own
        // `recv_dev_buf`; freeing it here too would double-free.
        for sp in std::mem::take(&mut self.send_plans) {
            if let Some(b) = &sp.pack_buf {
                machine.free_device(b);
            }
        }
        for rp in std::mem::take(&mut self.recv_plans) {
            if let Some(b) = &rp.recv_dev_buf {
                machine.free_device(b);
            }
        }
        for gp in std::mem::take(&mut self.grouped_send_plans) {
            machine.free_device(&gp.pack_buf);
        }
        for gp in std::mem::take(&mut self.grouped_recv_plans) {
            for seg in &gp.segments {
                if let Some(b) = &seg.dev_buf {
                    machine.free_device(b);
                }
            }
        }

        self.placements = new_placements;
        self.locals = new_locals;
        let (send_plans, recv_plans, grouped_send_plans, grouped_recv_plans, summary) =
            build_plans(ctx, &self.part, &self.placements, &self.locals, &self.spec);
        self.send_plans = send_plans;
        self.recv_plans = recv_plans;
        self.grouped_send_plans = grouped_send_plans;
        self.grouped_recv_plans = grouped_recv_plans;
        self.summary = summary;
        true
    }
}
