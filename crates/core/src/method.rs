//! Setup phase 3 — capability specialization (paper §III-C).
//!
//! Each subdomain-pair exchange is implemented with the first applicable of
//! the methods, in order: `Kernel`, `PeerMemcpy`, `ColocatedMemcpy`,
//! `PartitionedStaged`, `PersistentStaged`, `CudaAwareMpi`, `Staged`.
//! Which methods are *enabled* is configurable (the paper's Fig. 12 sweeps
//! `+remote`, `+colo`, `+peer`, `+kernel`; the persistent/partitioned rungs
//! extend the ladder per Collom et al., see `docs/TRANSPORTS.md`); which
//! are *applicable* depends on where the two subdomains live and what the
//! platform supports.

use std::fmt;

/// The exchange implementations (paper Figs. 7-8, extended with the
/// persistent and partitioned transports of `docs/TRANSPORTS.md`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum Method {
    /// Self-exchange inside one GPU with a single kernel — no pack/unpack.
    Kernel,
    /// Same rank, peer access: pack → `cudaMemcpyPeerAsync` → unpack.
    PeerMemcpy,
    /// Same node, different ranks: `cudaIpc*` handles exchanged once at
    /// setup, then pack → peer copy into the destination rank's buffer →
    /// unpack, with no MPI during exchanges.
    ColocatedMemcpy,
    /// Device pointers passed straight to `MPI_Isend`/`Irecv`.
    CudaAwareMpi,
    /// Pack → D2H → host MPI → H2D → unpack. Always available.
    Staged,
    /// `Staged` riding a persistent channel (`MPI_Send_init` /
    /// `MPI_Recv_init` / `MPI_Start`): matching and rendezvous negotiated
    /// once at setup, each iteration pays only the cheap start.
    PersistentStaged,
    /// `Staged` riding a partitioned channel (`MPI_Psend_init` /
    /// `MPI_Pready`): the staged message is split into partitions that fly
    /// as each chunk's D2H copy lands, pipelining staging with the wire.
    PartitionedStaged,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Kernel => "kernel",
            Method::PeerMemcpy => "peer",
            Method::ColocatedMemcpy => "colocated",
            Method::CudaAwareMpi => "cuda-aware",
            Method::Staged => "staged",
            Method::PersistentStaged => "persistent",
            Method::PartitionedStaged => "partitioned",
        };
        f.write_str(s)
    }
}

/// The set of enabled methods (configuration knob for the Fig. 12 sweeps).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Methods(u8);

impl Methods {
    const KERNEL: u8 = 1 << 0;
    const PEER: u8 = 1 << 1;
    const COLOCATED: u8 = 1 << 2;
    const CUDA_AWARE: u8 = 1 << 3;
    const STAGED: u8 = 1 << 4;
    const PERSISTENT: u8 = 1 << 5;
    const PARTITIONED: u8 = 1 << 6;

    /// Everything enabled except CUDA-aware MPI and the persistent /
    /// partitioned transports (the paper's default ladder: on their
    /// platform CUDA-aware was never faster, and persistent/partitioned
    /// postdate it — see [`Methods::all_with_cuda_aware`],
    /// [`Methods::with_persistent`], [`Methods::with_partitioned`]).
    pub fn all() -> Methods {
        Methods(Self::KERNEL | Self::PEER | Self::COLOCATED | Self::STAGED)
    }

    /// Every method including CUDA-aware MPI.
    pub fn all_with_cuda_aware() -> Methods {
        Methods(Self::KERNEL | Self::PEER | Self::COLOCATED | Self::CUDA_AWARE | Self::STAGED)
    }

    /// Only the remote method: `Staged` ("+remote" in the figures).
    pub fn staged_only() -> Methods {
        Methods(Self::STAGED)
    }

    /// Only the remote method, using CUDA-aware MPI ("+remote/ca").
    pub fn cuda_aware_only() -> Methods {
        Methods(Self::CUDA_AWARE | Self::STAGED)
    }

    /// Add the colocated method ("+colo").
    pub fn with_colocated(self) -> Methods {
        Methods(self.0 | Self::COLOCATED)
    }

    /// Add the peer method ("+peer").
    pub fn with_peer(self) -> Methods {
        Methods(self.0 | Self::PEER)
    }

    /// Add the kernel method ("+kernel").
    pub fn with_kernel(self) -> Methods {
        Methods(self.0 | Self::KERNEL)
    }

    /// Add the persistent-channel staged method ("+persistent").
    pub fn with_persistent(self) -> Methods {
        Methods(self.0 | Self::PERSISTENT)
    }

    /// Add the partitioned-channel staged method ("+partitioned").
    pub fn with_partitioned(self) -> Methods {
        Methods(self.0 | Self::PARTITIONED)
    }

    /// The raw enabled-set bits, for declarative job specs that must
    /// round-trip any tier combination through JSON (`docs/SERVICE.md`).
    /// [`Methods::from_bits`] is the inverse.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuild a set from [`Methods::bits`] output. Unknown bits are
    /// rejected so a spec written by a newer schema fails loudly instead of
    /// silently dropping methods.
    pub fn from_bits(bits: u8) -> Option<Methods> {
        const ALL: u8 = Methods::KERNEL
            | Methods::PEER
            | Methods::COLOCATED
            | Methods::CUDA_AWARE
            | Methods::STAGED
            | Methods::PERSISTENT
            | Methods::PARTITIONED;
        if bits & !ALL != 0 {
            return None;
        }
        Some(Methods(bits))
    }

    /// Whether a method is enabled.
    pub fn contains(self, m: Method) -> bool {
        let bit = match m {
            Method::Kernel => Self::KERNEL,
            Method::PeerMemcpy => Self::PEER,
            Method::ColocatedMemcpy => Self::COLOCATED,
            Method::CudaAwareMpi => Self::CUDA_AWARE,
            Method::Staged => Self::STAGED,
            Method::PersistentStaged => Self::PERSISTENT,
            Method::PartitionedStaged => Self::PARTITIONED,
        };
        self.0 & bit != 0
    }
}

impl Default for Methods {
    fn default() -> Self {
        Methods::all()
    }
}

/// Where the two endpoints of an exchange live, relative to each other, and
/// what the platform supports — everything method selection needs.
#[derive(Clone, Copy, Debug)]
pub struct PairCaps {
    /// Both subdomains on the same GPU (self-exchange).
    pub same_device: bool,
    /// Both subdomains' GPUs driven by the same MPI rank.
    pub same_rank: bool,
    /// Both subdomains' GPUs in the same node.
    pub same_node: bool,
    /// Peer access available between the two GPUs.
    pub peer_access: bool,
    /// The MPI library accepts device pointers.
    pub cuda_aware: bool,
    /// The MPI library implements persistent requests
    /// (`WorldConfig::mpi_persistent`).
    pub persistent: bool,
    /// The MPI library implements partitioned communication
    /// (`WorldConfig::mpi_partitioned`).
    pub partitioned: bool,
}

/// Pick the first applicable enabled method (paper §III-C, extended with
/// the persistent/partitioned rungs of `docs/TRANSPORTS.md` — partitioned
/// outranks persistent, which outranks plain staged, whenever the
/// simulated MPI stack supports them). `Staged` is the universal fallback
/// and is always applicable — but note that staging device buffers
/// requires plain MPI; if `Staged` is disabled and only `CudaAwareMpi` is
/// enabled on a non-CUDA-aware platform, this panics.
pub fn select(enabled: Methods, caps: PairCaps) -> Method {
    if caps.same_device && enabled.contains(Method::Kernel) {
        return Method::Kernel;
    }
    if caps.same_rank && caps.peer_access && enabled.contains(Method::PeerMemcpy) {
        return Method::PeerMemcpy;
    }
    if caps.same_node
        && !caps.same_rank
        && caps.peer_access
        && enabled.contains(Method::ColocatedMemcpy)
    {
        return Method::ColocatedMemcpy;
    }
    if caps.partitioned && enabled.contains(Method::PartitionedStaged) {
        return Method::PartitionedStaged;
    }
    if caps.persistent && enabled.contains(Method::PersistentStaged) {
        return Method::PersistentStaged;
    }
    if caps.cuda_aware && enabled.contains(Method::CudaAwareMpi) {
        return Method::CudaAwareMpi;
    }
    assert!(
        enabled.contains(Method::Staged),
        "no applicable exchange method: enable Staged as a fallback"
    );
    Method::Staged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(same_device: bool, same_rank: bool, same_node: bool) -> PairCaps {
        PairCaps {
            same_device,
            same_rank,
            same_node,
            peer_access: true,
            cuda_aware: false,
            persistent: false,
            partitioned: false,
        }
    }

    #[test]
    fn kernel_for_self_exchange() {
        assert_eq!(
            select(Methods::all(), caps(true, true, true)),
            Method::Kernel
        );
    }

    #[test]
    fn self_exchange_without_kernel_falls_to_peer() {
        let m = Methods::staged_only().with_peer();
        assert_eq!(select(m, caps(true, true, true)), Method::PeerMemcpy);
    }

    #[test]
    fn peer_for_same_rank_pairs() {
        assert_eq!(
            select(Methods::all(), caps(false, true, true)),
            Method::PeerMemcpy
        );
    }

    #[test]
    fn colocated_for_same_node_cross_rank() {
        assert_eq!(
            select(Methods::all(), caps(false, false, true)),
            Method::ColocatedMemcpy
        );
    }

    #[test]
    fn staged_for_remote() {
        assert_eq!(
            select(Methods::all(), caps(false, false, false)),
            Method::Staged
        );
    }

    #[test]
    fn cuda_aware_when_enabled_and_supported() {
        let mut c = caps(false, false, false);
        c.cuda_aware = true;
        assert_eq!(
            select(Methods::all_with_cuda_aware(), c),
            Method::CudaAwareMpi
        );
        // without platform support, falls to staged even if enabled
        c.cuda_aware = false;
        assert_eq!(select(Methods::all_with_cuda_aware(), c), Method::Staged);
    }

    #[test]
    fn no_peer_access_falls_through() {
        let mut c = caps(false, true, true);
        c.peer_access = false;
        assert_eq!(select(Methods::all(), c), Method::Staged);
    }

    #[test]
    fn staged_only_uses_staged_everywhere() {
        let m = Methods::staged_only();
        for c in [
            caps(true, true, true),
            caps(false, true, true),
            caps(false, false, true),
        ] {
            assert_eq!(select(m, c), Method::Staged);
        }
    }

    #[test]
    fn method_set_builders() {
        let m = Methods::staged_only()
            .with_colocated()
            .with_peer()
            .with_kernel();
        assert_eq!(m, Methods::all());
        assert!(Methods::all_with_cuda_aware().contains(Method::CudaAwareMpi));
        assert!(!Methods::all().contains(Method::CudaAwareMpi));
        assert!(Methods::cuda_aware_only().contains(Method::Staged));
    }

    #[test]
    fn persistent_outranks_staged_when_stack_supports_it() {
        let m = Methods::all().with_persistent();
        let mut c = caps(false, false, false);
        // stack support off: stays staged even though the bit is enabled
        assert_eq!(select(m, c), Method::Staged);
        c.persistent = true;
        assert_eq!(select(m, c), Method::PersistentStaged);
        // enabled-set without the bit never selects it
        assert_eq!(select(Methods::all(), c), Method::Staged);
    }

    #[test]
    fn partitioned_outranks_persistent_and_cuda_aware() {
        let m = Methods::all_with_cuda_aware()
            .with_persistent()
            .with_partitioned();
        let mut c = caps(false, false, false);
        c.cuda_aware = true;
        c.persistent = true;
        c.partitioned = true;
        assert_eq!(select(m, c), Method::PartitionedStaged);
        c.partitioned = false;
        assert_eq!(select(m, c), Method::PersistentStaged);
        c.persistent = false;
        assert_eq!(select(m, c), Method::CudaAwareMpi);
    }

    #[test]
    fn node_local_rungs_outrank_transports() {
        // Kernel / peer / colocated still win for node-local pairs.
        let m = Methods::all().with_persistent().with_partitioned();
        let mut c = caps(false, false, true);
        c.persistent = true;
        c.partitioned = true;
        assert_eq!(select(m, c), Method::ColocatedMemcpy);
    }

    #[test]
    fn transport_bits_round_trip() {
        let m = Methods::staged_only().with_persistent().with_partitioned();
        assert_eq!(Methods::from_bits(m.bits()), Some(m));
        assert!(m.contains(Method::PersistentStaged));
        assert!(m.contains(Method::PartitionedStaged));
        assert!(!Methods::all().contains(Method::PersistentStaged));
        assert_eq!(Methods::from_bits(1 << 7), None, "unknown bit rejected");
        assert_eq!(Method::PersistentStaged.to_string(), "persistent");
        assert_eq!(Method::PartitionedStaged.to_string(), "partitioned");
    }

    #[test]
    #[should_panic(expected = "no applicable exchange method")]
    fn empty_fallback_panics() {
        let only_kernel = Methods(Methods::KERNEL);
        select(only_kernel, caps(false, false, false));
    }

    #[test]
    fn display_names() {
        assert_eq!(Method::ColocatedMemcpy.to_string(), "colocated");
        assert_eq!(Method::Staged.to_string(), "staged");
    }
}
