//! Stencil radius: how many halo cells each face needs.
//!
//! The library supports stencils of any radius, and (beyond the paper's
//! evaluation, which uses a uniform radius) an asymmetric per-face radius —
//! e.g. an upwind scheme needing 3 cells in `-x` but 1 in `+x`.

use crate::dim3::Dir3;

/// Halo widths per face. `x_neg` is the number of cells this subdomain
/// needs *from* its `-x` neighbor (the width of the halo slab on its `-x`
/// side), and so on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Radius {
    /// Halo width on the -x side.
    pub x_neg: u64,
    /// Halo width on the +x side.
    pub x_pos: u64,
    /// Halo width on the -y side.
    pub y_neg: u64,
    /// Halo width on the +y side.
    pub y_pos: u64,
    /// Halo width on the -z side.
    pub z_neg: u64,
    /// Halo width on the +z side.
    pub z_pos: u64,
}

impl Radius {
    /// The same radius in every direction (the common case; the paper's
    /// benchmarks use this).
    pub fn constant(r: u64) -> Radius {
        Radius {
            x_neg: r,
            x_pos: r,
            y_neg: r,
            y_pos: r,
            z_neg: r,
            z_pos: r,
        }
    }

    /// Per-face radii, ordered `(x-, x+, y-, y+, z-, z+)`.
    pub fn faces(x_neg: u64, x_pos: u64, y_neg: u64, y_pos: u64, z_neg: u64, z_pos: u64) -> Radius {
        Radius {
            x_neg,
            x_pos,
            y_neg,
            y_pos,
            z_neg,
            z_pos,
        }
    }

    /// Halo width on the side of axis `a` facing `sign` (−1 or +1).
    pub fn side(&self, axis: usize, sign: i8) -> u64 {
        match (axis, sign) {
            (0, -1) => self.x_neg,
            (0, 1) => self.x_pos,
            (1, -1) => self.y_neg,
            (1, 1) => self.y_pos,
            (2, -1) => self.z_neg,
            (2, 1) => self.z_pos,
            _ => panic!("invalid axis/sign ({axis}, {sign})"),
        }
    }

    /// Negative-side halo widths per axis.
    pub fn neg(&self) -> [u64; 3] {
        [self.x_neg, self.y_neg, self.z_neg]
    }

    /// Positive-side halo widths per axis.
    pub fn pos(&self) -> [u64; 3] {
        [self.x_pos, self.y_pos, self.z_pos]
    }

    /// The largest radius component.
    pub fn max(&self) -> u64 {
        [
            self.x_neg, self.x_pos, self.y_neg, self.y_pos, self.z_neg, self.z_pos,
        ]
        .into_iter()
        .max()
        .unwrap()
    }

    /// Cells sent from a subdomain of interior extent `ext` toward
    /// direction `d` (per quantity). The receiver stores them in the halo
    /// slab on its `-d` side, so the slab width along a signed axis is the
    /// receiver's halo width on the side *facing the sender*.
    pub fn halo_extent(&self, ext: [u64; 3], d: Dir3) -> [u64; 3] {
        let mut out = [0u64; 3];
        for a in 0..3 {
            out[a] = match d.0[a] {
                0 => ext[a],
                // Sending toward +a: receiver's -a side halo.
                1 => self.side(a, -1),
                // Sending toward -a: receiver's +a side halo.
                -1 => self.side(a, 1),
                _ => unreachable!(),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim3::Neighborhood;

    #[test]
    fn constant_radius_uniform() {
        let r = Radius::constant(3);
        for a in 0..3 {
            for s in [-1i8, 1] {
                assert_eq!(r.side(a, s), 3);
            }
        }
        assert_eq!(r.max(), 3);
    }

    #[test]
    fn asymmetric_faces() {
        let r = Radius::faces(1, 2, 3, 4, 5, 6);
        assert_eq!(r.side(0, -1), 1);
        assert_eq!(r.side(0, 1), 2);
        assert_eq!(r.side(2, 1), 6);
        assert_eq!(r.neg(), [1, 3, 5]);
        assert_eq!(r.pos(), [2, 4, 6]);
        assert_eq!(r.max(), 6);
    }

    #[test]
    fn face_halo_extent() {
        let r = Radius::constant(2);
        let ext = [10, 20, 30];
        // sending toward +x: a 2-cell slab of the y-z face
        assert_eq!(r.halo_extent(ext, Dir3::new(1, 0, 0)), [2, 20, 30]);
        assert_eq!(r.halo_extent(ext, Dir3::new(0, -1, 0)), [10, 2, 30]);
    }

    #[test]
    fn corner_halo_extent() {
        let r = Radius::constant(2);
        assert_eq!(r.halo_extent([10, 20, 30], Dir3::new(1, 1, 1)), [2, 2, 2]);
    }

    #[test]
    fn asymmetric_halo_extent_uses_receiver_side() {
        let r = Radius::faces(1, 9, 0, 0, 0, 0);
        // Sending toward +x: receiver needs its -x halo = x_neg = 1 cell.
        assert_eq!(r.halo_extent([5, 5, 5], Dir3::new(1, 0, 0))[0], 1);
        // Sending toward -x: receiver needs its +x halo = x_pos = 9 cells.
        assert_eq!(r.halo_extent([5, 5, 5], Dir3::new(-1, 0, 0))[0], 9);
    }

    #[test]
    fn total_exchange_volume_symmetry() {
        // For a constant radius the total sent volume over all 26 directions
        // equals the analytic surface shell.
        let r = Radius::constant(1);
        let ext = [8u64, 8, 8];
        let total: u64 = Neighborhood::Full26
            .directions()
            .into_iter()
            .map(|d| {
                let e = r.halo_extent(ext, d);
                e[0] * e[1] * e[2]
            })
            .sum();
        // shell of a 10^3 cube minus the 8^3 core: 10^3-8^3 = 488
        assert_eq!(total, 488);
    }
}
