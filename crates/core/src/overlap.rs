//! Communication/computation overlap for time-stepped stencils.
//!
//! A stencil update of radius `r` needs halo data only for the cells within
//! `r` of a subdomain face. Everything deeper — the *interior* — depends on
//! resident data alone, so it can be computed while the halo exchange is in
//! flight. [`DistributedDomain::step_overlapped`] exploits that split:
//!
//! 1. issue the exchange asynchronously ([`DistributedDomain::exchange_start`]);
//! 2. launch the interior update on each subdomain's compute stream;
//! 3. drain the exchange ([`DistributedDomain::exchange_finish`]);
//! 4. launch the boundary update (now that halos are unpacked);
//! 5. sync compute streams.
//!
//! [`DistributedDomain::step_sequential`] is the baseline: exchange to
//! completion, then one full-volume update. Both variants move **exactly the
//! same halo bytes** through exactly the same transports — only the relative
//! ordering of compute and communication differs — so per-iteration time
//! comparisons between them isolate the overlap win (the `overlap` bench
//! pins this with NIC byte counters).
//!
//! Compute cost is modeled as memory traffic: a cell costs `bytes_per_cell`
//! of device bandwidth (for a memory-bound stencil, roughly
//! `quantities * elem_size * (1 + stencil points reread from cache misses)`;
//! the absolute value only scales the compute/communication ratio).

use detsim::SimDuration;
use mpisim::RankCtx;

use crate::domain::DistributedDomain;
use crate::local::LocalDomain;

/// Timing breakdown of one [`DistributedDomain::step_sequential`] /
/// [`DistributedDomain::step_overlapped`] iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTiming {
    /// Wall time of the whole step (exchange + compute).
    pub total: SimDuration,
    /// Time until the exchange itself had fully drained (in the overlapped
    /// variant this includes interior compute running concurrently).
    pub exchange_done: SimDuration,
    /// Cells (across this rank's subdomains) updatable without halo data.
    pub interior_cells: u64,
    /// Cells whose stencil reaches into the halo.
    pub boundary_cells: u64,
}

/// Split a subdomain's cells into halo-independent interior and
/// halo-dependent boundary counts.
fn split_cells(l: &LocalDomain) -> (u64, u64) {
    let e = l.extent();
    let neg = l.radius().neg();
    let pos = l.radius().pos();
    let total = e[0] * e[1] * e[2];
    let mut interior = 1u64;
    for a in 0..3 {
        interior *= e[a].saturating_sub(neg[a] + pos[a]);
    }
    (interior, total - interior)
}

impl DistributedDomain {
    /// One non-overlapped time step: full halo exchange, then a single
    /// full-volume stencil update per subdomain.
    pub fn step_sequential(&self, ctx: &RankCtx, bytes_per_cell: u64) -> StepTiming {
        let t0 = ctx.sim().now();
        self.exchange(ctx);
        let exchange_done = ctx.sim().now().since(t0);
        let mut interior_cells = 0;
        let mut boundary_cells = 0;
        for l in self.locals() {
            let (i, b) = split_cells(l);
            interior_cells += i;
            boundary_cells += b;
            l.launch_compute(ctx.sim(), "stencil", (i + b) * bytes_per_cell, None);
        }
        for l in self.locals() {
            l.sync_compute(ctx.sim());
        }
        StepTiming {
            total: ctx.sim().now().since(t0),
            exchange_done,
            interior_cells,
            boundary_cells,
        }
    }

    /// One overlapped time step: the interior update runs while the halo
    /// exchange is in flight; the boundary update follows once halos have
    /// been unpacked. Delivered halo bytes are identical to
    /// [`Self::step_sequential`].
    pub fn step_overlapped(&self, ctx: &RankCtx, bytes_per_cell: u64) -> StepTiming {
        let t0 = ctx.sim().now();
        let handle = self.exchange_start(ctx);
        let mut interior_cells = 0;
        let mut boundary_cells = 0;
        for l in self.locals() {
            let (i, b) = split_cells(l);
            interior_cells += i;
            boundary_cells += b;
            if i > 0 {
                l.launch_compute(ctx.sim(), "stencil-interior", i * bytes_per_cell, None);
            }
        }
        self.exchange_finish(ctx, handle);
        let exchange_done = ctx.sim().now().since(t0);
        for l in self.locals() {
            let (_, b) = split_cells(l);
            if b > 0 {
                l.launch_compute(ctx.sim(), "stencil-boundary", b * bytes_per_cell, None);
            }
        }
        for l in self.locals() {
            l.sync_compute(ctx.sim());
        }
        StepTiming {
            total: ctx.sim().now().since(t0),
            exchange_done,
            interior_cells,
            boundary_cells,
        }
    }
}
