//! Hierarchical multilevel QAP mapper — the top rung of the placement
//! ladder (ROADMAP item 1, after Schulz & Woydt's shared-memory
//! hierarchical process mapping).
//!
//! The dense solvers in [`crate::qap`] stop being practical somewhere
//! around a few hundred facilities: full 2-opt is O(n²) candidate swaps
//! per sweep and a dense distance matrix for a 4608-node machine is
//! 4608² floats (~170 MB). This module scales past both limits:
//!
//! 1. **Coarsen** the flow graph by heavy-edge matching (merge the pair
//!    exchanging the most bytes), and the location set by closest-pair
//!    matching, halving the instance per level;
//! 2. **Solve** the coarsest instance (≤ [`qap::EXHAUSTIVE_MAX_N`])
//!    exhaustively;
//! 3. **Uncoarsen** level by level, expanding each cluster assignment and
//!    repairing it with delta-cost 2-opt over a sparse candidate set
//!    (flow-adjacent pairs + the pairs merged at that level).
//!
//! Flow stays sparse throughout ([`FlowGraph`]: a stencil subdomain talks
//! to ≤ 26 neighbors regardless of machine size), and distances at the
//! finest level come from a [`DistanceOracle`] — an O(1) switch-hierarchy
//! computation for global node mapping, never a materialized n² matrix.
//! Coarse levels are small enough (≤ n/2 per side) that their averaged
//! distance matrices are materialized dense.
//!
//! Everything is deterministic: fixed visit orders, lexicographic
//! tie-breaks, no RNG. See `docs/PLACEMENT.md` for the invariants.

use crate::qap;

/// Distances between locations, abstracted so the global mapping stage
/// never materializes an n² matrix. Implementations must be symmetric in
/// cost intent but may be asymmetric numerically (the solver reads both
/// directions); `dist(a, a)` must be 0 and entries must be ≥ 0 (`+inf`
/// for unreachable pairs — never NaN).
pub trait DistanceOracle {
    /// Number of locations.
    fn len(&self) -> usize;
    /// True when there are no locations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Distance (reciprocal bandwidth, or hop cost) from `a` to `b`.
    fn dist(&self, a: usize, b: usize) -> f64;
}

impl<D: DistanceOracle + ?Sized> DistanceOracle for &D {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        (**self).dist(a, b)
    }
}

/// Dense-matrix oracle over a borrowed distance matrix.
pub struct DenseDistance<'a>(pub &'a [Vec<f64>]);

impl DistanceOracle for DenseDistance<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.0[a][b]
    }
}

impl DistanceOracle for topo::SwitchHierarchy {
    fn len(&self) -> usize {
        self.num_nodes()
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.distance(a, b)
    }
}

/// Sparse directed flow graph: `adj[i]` holds `(j, w[i][j], w[j][i])` for
/// every neighbor `j` with traffic in either direction, sorted by `j`.
/// A 3D stencil facility has at most 26 neighbors however large the
/// machine, so storage and per-swap work are O(degree), not O(n).
#[derive(Debug, Clone)]
pub struct FlowGraph {
    n: usize,
    adj: Vec<Vec<(usize, f64, f64)>>,
}

impl FlowGraph {
    /// Empty graph over `n` facilities.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of facilities.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no facilities.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Accumulate directed flow `w` from `i` to `j` (self-flows ignored:
    /// they cost `w * d[x][x] = 0` under any assignment).
    pub fn add_flow(&mut self, i: usize, j: usize, w: f64) {
        if i == j || w == 0.0 {
            return;
        }
        match self.adj[i].binary_search_by_key(&j, |e| e.0) {
            Ok(p) => self.adj[i][p].1 += w,
            Err(p) => self.adj[i].insert(p, (j, w, 0.0)),
        }
        match self.adj[j].binary_search_by_key(&i, |e| e.0) {
            Ok(p) => self.adj[j][p].2 += w,
            Err(p) => self.adj[j].insert(p, (i, 0.0, w)),
        }
    }

    /// Build from a dense flow matrix (diagonal ignored).
    pub fn from_dense(w: &[Vec<f64>]) -> Self {
        let mut g = FlowGraph::new(w.len());
        for (i, row) in w.iter().enumerate() {
            for (j, &x) in row.iter().enumerate() {
                g.add_flow(i, j, x);
            }
        }
        g
    }

    /// Neighbors of `i` as `(j, w[i][j], w[j][i])`, ascending `j`.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64, f64)] {
        &self.adj[i]
    }

    /// Total cost of assignment `f` under `dist`, with the same zero-flow
    /// guard as [`qap::cost`].
    pub fn cost(&self, dist: &impl DistanceOracle, f: &[usize]) -> f64 {
        let mut c = 0.0;
        for (i, row) in self.adj.iter().enumerate() {
            for &(j, out, _) in row {
                if out != 0.0 {
                    c += out * dist.dist(f[i], f[j]);
                }
            }
        }
        c
    }
}

/// O(deg(r) + deg(s)) cost change of swapping the locations of facilities
/// `r` and `s` — the sparse counterpart of [`qap::delta_swap`], same
/// zero-flow guards, same NaN semantics (a NaN delta is never an
/// improvement).
pub fn delta_swap_sparse(
    g: &FlowGraph,
    dist: &impl DistanceOracle,
    f: &[usize],
    r: usize,
    s: usize,
) -> f64 {
    debug_assert_ne!(r, s);
    let (fr, fs) = (f[r], f[s]);
    let mut delta = 0.0;
    for &(k, out, inw) in g.neighbors(r) {
        if k == s {
            continue;
        }
        let fk = f[k];
        if out != 0.0 {
            delta += out * (dist.dist(fs, fk) - dist.dist(fr, fk));
        }
        if inw != 0.0 {
            delta += inw * (dist.dist(fk, fs) - dist.dist(fk, fr));
        }
    }
    for &(k, out, inw) in g.neighbors(s) {
        if k == r {
            continue;
        }
        let fk = f[k];
        if out != 0.0 {
            delta += out * (dist.dist(fr, fk) - dist.dist(fs, fk));
        }
        if inw != 0.0 {
            delta += inw * (dist.dist(fk, fr) - dist.dist(fk, fs));
        }
    }
    if let Ok(p) = g.neighbors(r).binary_search_by_key(&s, |e| e.0) {
        let (_, wrs, wsr) = g.neighbors(r)[p];
        if wrs != 0.0 {
            delta += wrs * (dist.dist(fs, fr) - dist.dist(fr, fs));
        }
        if wsr != 0.0 {
            delta += wsr * (dist.dist(fr, fs) - dist.dist(fs, fr));
        }
    }
    delta
}

/// First-improvement delta-2-opt sweeps over an explicit candidate-pair
/// list, in place, until a full sweep finds nothing or `max_passes` is
/// hit. Deterministic for a fixed candidate order.
fn refine_candidates(
    g: &FlowGraph,
    dist: &impl DistanceOracle,
    f: &mut [usize],
    candidates: &[(usize, usize)],
    max_passes: usize,
) {
    for _ in 0..max_passes {
        let mut improved = false;
        for &(i, j) in candidates {
            let delta = delta_swap_sparse(g, dist, f, i, j);
            if delta < -1e-12 {
                f.swap(i, j);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Candidate swap pairs for refinement: all pairs when the level is small,
/// otherwise flow-adjacent pairs plus the pairs merged at this level
/// (`merged`, so cluster orientations can flip). Sorted and deduplicated
/// for a deterministic sweep order.
fn candidate_pairs(g: &FlowGraph, merged: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let n = g.len();
    if n <= ALL_PAIRS_MAX_N {
        let mut all = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                all.push((i, j));
            }
        }
        return all;
    }
    let mut c: Vec<(usize, usize)> = Vec::new();
    for (i, row) in (0..n).map(|i| (i, g.neighbors(i))) {
        for &(j, _, _) in row {
            if i < j {
                c.push((i, j));
            }
        }
    }
    for &(a, b) in merged {
        c.push(if a < b { (a, b) } else { (b, a) });
    }
    c.sort_unstable();
    c.dedup();
    c
}

/// Instances up to this size refine over all O(n²) pairs (and the dense
/// entry point cross-checks against [`qap::solve_greedy_2opt`], which
/// makes ladder quality monotone by construction). Beyond it, sweeps are
/// restricted to the sparse candidate set so global mapping stays
/// near-linear in machine size.
pub const ALL_PAIRS_MAX_N: usize = 128;

/// Refinement sweep cap per level. Sweeps almost always converge in 2–3
/// passes; the cap bounds worst-case work without affecting determinism.
const MAX_REFINE_PASSES: usize = 16;

/// One coarsening level: cluster membership on both sides plus the
/// materialized coarse instance.
struct Level {
    /// `fac_cluster[c] = (a, b)` — facilities merged into coarse facility
    /// `c` (`a == b` never occurs: padding keeps n even).
    fac_clusters: Vec<(usize, usize)>,
    /// `loc_clusters[c] = (p, q)` — locations merged into coarse location
    /// `c`.
    loc_clusters: Vec<(usize, usize)>,
    /// Coarse flow between facility clusters.
    coarse_flow: FlowGraph,
    /// Coarse location distances, averaged over the 4 member pairs.
    coarse_dist: Vec<Vec<f64>>,
}

/// Heavy-edge matching over the flow graph: visit facilities in index
/// order, pair each unmatched one with its unmatched neighbor carrying
/// the most traffic (ties → smallest index), then force-match leftovers
/// pairwise by index. `n` must be even; returns n/2 pairs `(a, b)` with
/// `a < b`.
fn match_facilities(g: &FlowGraph) -> Vec<(usize, usize)> {
    let n = g.len();
    debug_assert_eq!(n % 2, 0);
    let mut mate = vec![usize::MAX; n];
    let mut pairs = Vec::with_capacity(n / 2);
    for i in 0..n {
        if mate[i] != usize::MAX {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for &(j, out, inw) in g.neighbors(i) {
            if mate[j] != usize::MAX {
                continue;
            }
            let w = out + inw;
            match best {
                Some((bw, bj)) if bw > w || (bw == w && bj < j) => {}
                _ => best = Some((w, j)),
            }
        }
        if let Some((_, j)) = best {
            mate[i] = j;
            mate[j] = i;
            pairs.push((i.min(j), i.max(j)));
        }
    }
    // Force-match the isolated leftovers pairwise by index so both sides
    // coarsen to exactly n/2 clusters.
    let mut leftover: Option<usize> = None;
    for i in 0..n {
        if mate[i] != usize::MAX {
            continue;
        }
        match leftover.take() {
            None => leftover = Some(i),
            Some(a) => {
                mate[a] = i;
                mate[i] = a;
                pairs.push((a, i));
            }
        }
    }
    debug_assert!(leftover.is_none(), "even n leaves no unmatched facility");
    pairs.sort_unstable();
    pairs
}

/// Closest-pair matching over locations: visit in index order, pair each
/// unmatched location with the nearest unmatched one (ties → smallest
/// index). Unreachable distances (`+inf`) still compare, so disconnected
/// locations pair with each other last. `n` must be even.
fn match_locations(dist: &impl DistanceOracle) -> Vec<(usize, usize)> {
    let n = dist.len();
    debug_assert_eq!(n % 2, 0);
    let mut mate = vec![usize::MAX; n];
    let mut pairs = Vec::with_capacity(n / 2);
    for i in 0..n {
        if mate[i] != usize::MAX {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        #[allow(clippy::needless_range_loop)] // `j` also feeds dist.dist(i, j)
        for j in (i + 1)..n {
            if mate[j] != usize::MAX {
                continue;
            }
            let d = dist.dist(i, j) + dist.dist(j, i);
            let keep = match best {
                None => true,
                Some((bd, _)) => d < bd,
            };
            if keep {
                best = Some((d, j));
            }
        }
        if let Some((_, j)) = best {
            mate[i] = j;
            mate[j] = i;
            pairs.push((i, j));
        }
    }
    pairs
}

/// Build one coarsening level from the fine instance.
fn coarsen(g: &FlowGraph, dist: &impl DistanceOracle) -> Level {
    let fac_clusters = match_facilities(g);
    let loc_clusters = match_locations(dist);
    let nc = fac_clusters.len();
    debug_assert_eq!(loc_clusters.len(), nc);

    // cluster index of each fine facility
    let mut of = vec![0usize; g.len()];
    for (c, &(a, b)) in fac_clusters.iter().enumerate() {
        of[a] = c;
        of[b] = c;
    }
    let mut coarse_flow = FlowGraph::new(nc);
    for i in 0..g.len() {
        for &(j, out, _) in g.neighbors(i) {
            if out != 0.0 && of[i] != of[j] {
                coarse_flow.add_flow(of[i], of[j], out);
            }
        }
    }

    let mut coarse_dist = vec![vec![0.0f64; nc]; nc];
    for (ca, &(p0, p1)) in loc_clusters.iter().enumerate() {
        for (cb, &(q0, q1)) in loc_clusters.iter().enumerate() {
            if ca == cb {
                continue;
            }
            coarse_dist[ca][cb] = 0.25
                * (dist.dist(p0, q0) + dist.dist(p0, q1) + dist.dist(p1, q0) + dist.dist(p1, q1));
        }
    }

    Level {
        fac_clusters,
        loc_clusters,
        coarse_flow,
        coarse_dist,
    }
}

/// Oracle for an instance padded with one extra location (index
/// `base.len()`) at a far-but-finite distance from everything — used to
/// make odd levels even so all clusters are pairs. Holds the base oracle
/// as `dyn` so padding can occur at any recursion depth without
/// monomorphizing an ever-deeper wrapper type.
struct PaddedDistance<'a> {
    base: &'a dyn DistanceOracle,
    far: f64,
}

impl DistanceOracle for PaddedDistance<'_> {
    fn len(&self) -> usize {
        self.base.len() + 1
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        let n = self.base.len();
        if a == b {
            0.0
        } else if a == n || b == n {
            self.far
        } else {
            self.base.dist(a, b)
        }
    }
}

/// A finite distance strictly larger than every finite base distance, so
/// refinement always prefers real locations but never sees `inf - inf`.
fn far_distance(dist: &(impl DistanceOracle + ?Sized)) -> f64 {
    let n = dist.len();
    let mut m = 1.0f64;
    for i in 0..n {
        for j in 0..n {
            let d = dist.dist(i, j);
            if d.is_finite() && d > m {
                m = d;
            }
        }
    }
    m * 4.0
}

/// Recursive multilevel solve. Odd levels are padded with a zero-flow
/// facility and a far-but-finite location (coarse sizes can turn odd at
/// any depth: 30 → 15). Returns the assignment of facilities to
/// locations.
fn solve_rec(g: &FlowGraph, dist: &dyn DistanceOracle, depth: usize) -> Vec<usize> {
    let n = g.len();
    debug_assert_eq!(dist.len(), n);
    if n <= qap::EXHAUSTIVE_MAX_N {
        // Densify: trivially cheap at this size.
        let mut w = vec![vec![0.0f64; n]; n];
        for (i, row) in w.iter_mut().enumerate() {
            for &(j, out, _) in g.neighbors(i) {
                row[j] = out;
            }
        }
        let d: Vec<Vec<f64>> = (0..n)
            .map(|a| (0..n).map(|b| dist.dist(a, b)).collect())
            .collect();
        return qap::solve_exhaustive(&w, &d).0;
    }
    // Depth guard: every two levels at least halve n (pad adds 1, the
    // matching then halves), so 64 levels covers any usize.
    assert!(depth < 64, "multilevel recursion failed to shrink");

    if n % 2 == 1 {
        // Pad, solve even, strip. The dummy facility costs nothing
        // wherever it sits, so parking it on the dummy location and
        // handing its real location to whoever held the dummy one is
        // cost-neutral for the dummy and never worse for the displaced
        // facility (the dummy location is the farthest by construction).
        let mut padded = g.clone();
        padded.adj.push(Vec::new());
        padded.n = n + 1;
        let pdist = PaddedDistance {
            base: dist,
            far: far_distance(dist),
        };
        let mut f = solve_rec(&padded, &pdist, depth + 1);
        let dummy_loc = f[n];
        if dummy_loc != n {
            let holder = f.iter().position(|&l| l == n).expect("bijection");
            f[holder] = dummy_loc;
        }
        f.truncate(n);
        // One more repair pass on the real instance after the strip.
        let candidates = candidate_pairs(g, &[]);
        refine_candidates(g, &dist, &mut f, &candidates, MAX_REFINE_PASSES);
        return f;
    }

    let level = coarsen(g, &dist);
    let coarse_assign = solve_rec(
        &level.coarse_flow,
        &DenseDistance(&level.coarse_dist),
        depth + 1,
    );

    // Expand: both members of a facility cluster land on the two members
    // of its assigned location cluster, in index order (the refinement
    // pass below flips orientations that matter).
    let mut f = vec![0usize; n];
    let mut merged = Vec::with_capacity(level.fac_clusters.len());
    for (c, &(a, b)) in level.fac_clusters.iter().enumerate() {
        let (p, q) = level.loc_clusters[coarse_assign[c]];
        f[a] = p;
        f[b] = q;
        merged.push((a, b));
    }
    let candidates = candidate_pairs(g, &merged);
    refine_candidates(g, &dist, &mut f, &candidates, MAX_REFINE_PASSES);
    f
}

/// Solve a (possibly huge) sparse QAP instance with the multilevel
/// mapper. Flow is a sparse graph; distances come from the oracle (never
/// materialized at the finest level). Deterministic. Returns the
/// assignment `f[facility] = location` — compute its cost with
/// [`FlowGraph::cost`] if needed.
///
/// # Panics
/// If `flow.len() != dist.len()`.
pub fn solve_sparse(flow: &FlowGraph, dist: &impl DistanceOracle) -> Vec<usize> {
    let n = flow.len();
    assert_eq!(n, dist.len(), "facility and location counts must agree");
    if n == 0 {
        return Vec::new();
    }
    solve_rec(flow, dist, 0)
}

/// Dense entry point used by [`qap::solve`]'s top ladder rung: runs the
/// multilevel mapper and, on instances up to [`ALL_PAIRS_MAX_N`],
/// cross-checks against [`qap::solve_greedy_2opt`] and keeps the better
/// result — which makes the ladder's quality monotone by construction
/// (hierarchical ≤ greedy ≤ trivial). Instances within
/// [`qap::EXHAUSTIVE_MAX_N`] are solved exhaustively, so the multilevel
/// rung matches the exhaustive one exactly there.
pub fn solve_multilevel(w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = w.len();
    assert_eq!(d.len(), n);
    if n <= qap::EXHAUSTIVE_MAX_N {
        return qap::solve_exhaustive(w, d);
    }
    let g = FlowGraph::from_dense(w);
    let f = solve_sparse(&g, &DenseDistance(d));
    let c = qap::cost(w, d, &f);
    if n <= ALL_PAIRS_MAX_N {
        qap::better((f, c), qap::solve_greedy_2opt(w, d))
    } else {
        (f, c)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // matrix-builder loops index two sides
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        }
    }

    fn random_instance(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rnd = lcg(seed);
        let mut w = vec![vec![0.0; n]; n];
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    w[i][j] = (rnd() * 10.0).floor();
                    d[i][j] = rnd() + 0.01;
                }
            }
        }
        (w, d)
    }

    fn assert_perm(f: &[usize], n: usize) {
        let mut s = f.to_vec();
        s.sort_unstable();
        assert_eq!(s, (0..n).collect::<Vec<_>>(), "not a permutation: {f:?}");
    }

    #[test]
    fn sparse_cost_matches_dense() {
        for seed in 0..6u64 {
            let n = 5 + seed as usize;
            let (w, d) = random_instance(n, seed * 31 + 7);
            let g = FlowGraph::from_dense(&w);
            let mut f: Vec<usize> = (0..n).collect();
            f.rotate_left(seed as usize % n);
            let dense = qap::cost(&w, &d, &f);
            let sparse = g.cost(&DenseDistance(&d), &f);
            assert!((dense - sparse).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn sparse_delta_matches_dense_delta() {
        for seed in 0..10u64 {
            let n = 4 + seed as usize % 7;
            let (w, d) = random_instance(n, seed * 57 + 3);
            let g = FlowGraph::from_dense(&w);
            let mut f: Vec<usize> = (0..n).collect();
            f.rotate_left(1);
            for r in 0..n {
                for s in (r + 1)..n {
                    let dd = qap::delta_swap(&w, &d, &f, r, s);
                    let ds = delta_swap_sparse(&g, &DenseDistance(&d), &f, r, s);
                    assert!(
                        (dd - ds).abs() < 1e-9 * (1.0 + dd.abs()),
                        "seed {seed} swap ({r},{s}): {dd} vs {ds}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_within_exhaustive_range() {
        for n in 2..=qap::EXHAUSTIVE_MAX_N.min(6) {
            for seed in 0..4u64 {
                let (w, d) = random_instance(n, seed * 91 + n as u64);
                let (fe, ce) = qap::solve_exhaustive(&w, &d);
                let (fm, cm) = solve_multilevel(&w, &d);
                assert_eq!(fe, fm, "n={n} seed={seed}");
                assert_eq!(ce.to_bits(), cm.to_bits());
            }
        }
    }

    #[test]
    fn valid_permutation_odd_and_even() {
        for n in [9usize, 10, 13, 16, 24, 33] {
            let (w, d) = random_instance(n, n as u64 * 7 + 1);
            let (f, c) = solve_multilevel(&w, &d);
            assert_perm(&f, n);
            assert!(c.is_finite());
        }
    }

    #[test]
    fn never_worse_than_greedy_or_trivial() {
        for n in [9usize, 12, 17, 25, 40] {
            for seed in 0..3u64 {
                let (w, d) = random_instance(n, seed * 13 + n as u64);
                let (_, cm) = solve_multilevel(&w, &d);
                let (_, cg) = qap::solve_greedy_2opt(&w, &d);
                let triv: Vec<usize> = (0..n).collect();
                let ct = qap::cost(&w, &d, &triv);
                assert!(cm <= cg + 1e-9, "n={n} seed={seed}: {cm} vs greedy {cg}");
                assert!(cm <= ct + 1e-9, "n={n} seed={seed}: {cm} vs trivial {ct}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (w, d) = random_instance(30, 424242);
        let (fa, ca) = solve_multilevel(&w, &d);
        let (fb, cb) = solve_multilevel(&w, &d);
        assert_eq!(fa, fb);
        assert_eq!(ca.to_bits(), cb.to_bits());
    }

    /// Two heavy 4-cliques of flow must land on the two tight location
    /// clusters — the structure coarsening is designed to expose.
    #[test]
    fn clustered_flow_lands_on_clustered_locations() {
        let n = 16;
        let mut w = vec![vec![0.0; n]; n];
        // facilities 0..4 and 8..12 are two heavy cliques
        for group in [0usize, 8] {
            for i in group..group + 4 {
                for j in group..group + 4 {
                    if i != j {
                        w[i][j] = 100.0;
                    }
                }
            }
        }
        // light all-to-all background
        for i in 0..n {
            for j in 0..n {
                if i != j && w[i][j] == 0.0 {
                    w[i][j] = 0.5;
                }
            }
        }
        // locations 0..4 and 4..8 are cheap islands; everything else far
        let mut d = vec![vec![10.0; n]; n];
        for island in [0usize, 4] {
            for a in island..island + 4 {
                for b in island..island + 4 {
                    d[a][b] = if a == b { 0.0 } else { 1.0 };
                }
            }
        }
        for (a, row) in d.iter_mut().enumerate() {
            row[a] = 0.0;
        }
        let (f, _) = solve_multilevel(&w, &d);
        assert_perm(&f, n);
        for group in [0usize, 8] {
            let islands: Vec<usize> = (group..group + 4).map(|i| f[i] / 4).collect();
            assert!(
                islands.iter().all(|&x| x == islands[0] && x < 2),
                "clique at {group} split across islands: {islands:?}"
            );
        }
    }

    #[test]
    fn zero_flow_facility_absorbs_unreachable_location() {
        let n = 10;
        let mut w = vec![vec![0.0; n]; n];
        for i in 0..n - 1 {
            for j in 0..n - 1 {
                if i != j {
                    w[i][j] = 1.0 + ((i * 3 + j) % 5) as f64;
                }
            }
        }
        // facility n-1 exchanges nothing; location n-1 is unreachable.
        let mut d = vec![vec![1.0; n]; n];
        for (a, row) in d.iter_mut().enumerate() {
            row[a] = 0.0;
            row[n - 1] = f64::INFINITY;
        }
        for b in 0..n {
            d[n - 1][b] = f64::INFINITY;
        }
        d[n - 1][n - 1] = 0.0;
        let (f, c) = solve_multilevel(&w, &d);
        assert_perm(&f, n);
        assert_eq!(f[n - 1], n - 1, "dead location goes to the silent facility");
        assert!(c.is_finite());
    }
}
