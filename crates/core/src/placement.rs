//! Setup phase 2 — node-aware data placement (paper §III-B, Fig. 5/11).
//!
//! Within each node, the GPU subdomains exchange different amounts of data
//! (their shapes and adjacency differ), and the GPUs have non-uniform
//! bandwidth (NVLink triads vs the X-Bus). Placement assigns subdomains to
//! GPUs by solving a QAP whose flow matrix is the pairwise exchange volume
//! and whose distance matrix is the reciprocal of the discovered
//! GPU-to-GPU bandwidth.

use topo::{NodeDiscovery, SwitchHierarchy};

use crate::dim3::{Boundary, Idx3, Neighborhood};
use crate::multilevel::{self, FlowGraph};
use crate::partition::Partition;
use crate::qap;
use crate::radius::Radius;

/// How to assign subdomains to GPUs within each node. The solver rungs
/// form a ladder (`docs/PLACEMENT.md`): exhaustive for small nodes,
/// delta-cost 2-opt for fat ones, hierarchical multilevel beyond that —
/// [`PlacementStrategy::NodeAware`] picks the rung automatically by
/// instance size, while [`PlacementStrategy::GreedySwap`] and
/// [`PlacementStrategy::Hierarchical`] pin a specific rung (benchmarking
/// and quality/latency trade-off studies).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlacementStrategy {
    /// QAP on exchange volume × reciprocal bandwidth (the paper's method),
    /// solved by the ladder rung appropriate to the node size: exhaustive
    /// for ≤ [`qap::EXHAUSTIVE_MAX_N`] GPUs, hierarchical multilevel
    /// beyond.
    #[default]
    NodeAware,
    /// Linearize the subdomain index and assign to GPUs in order (the
    /// baseline the paper compares against).
    Trivial,
    /// QAP on exchange volume × reciprocal *measured* bandwidth: timed probe
    /// transfers at setup replace the NVML-class inference (the paper's §VI
    /// future-work item; see [`crate::empirical`]). Uses the same
    /// size-dispatched solver ladder as `NodeAware`.
    Empirical,
    /// Force the delta-cost 2-opt local-search rung
    /// ([`qap::solve_greedy_2opt`]) regardless of node size.
    GreedySwap,
    /// Force the hierarchical multilevel rung
    /// ([`multilevel::solve_multilevel`]) regardless of node size.
    Hierarchical,
}

impl PlacementStrategy {
    /// Stable wire name for job specs and persisted results
    /// (`docs/SERVICE.md`). [`PlacementStrategy::parse`] is the inverse.
    pub fn name(self) -> &'static str {
        match self {
            PlacementStrategy::NodeAware => "node-aware",
            PlacementStrategy::Trivial => "trivial",
            PlacementStrategy::Empirical => "empirical",
            PlacementStrategy::GreedySwap => "greedy-swap",
            PlacementStrategy::Hierarchical => "hierarchical",
        }
    }

    /// Parse a wire name produced by [`PlacementStrategy::name`].
    pub fn parse(s: &str) -> Option<PlacementStrategy> {
        Some(match s {
            "node-aware" => PlacementStrategy::NodeAware,
            "trivial" => PlacementStrategy::Trivial,
            "empirical" => PlacementStrategy::Empirical,
            "greedy-swap" => PlacementStrategy::GreedySwap,
            "hierarchical" => PlacementStrategy::Hierarchical,
            _ => return None,
        })
    }

    /// Run this strategy's solver rung on an explicit QAP instance.
    /// `NodeAware` and `Empirical` dispatch by size (they differ only in
    /// where the distance matrix comes from, which is the caller's
    /// business).
    pub fn solve(self, w: &[Vec<f64>], d: &[Vec<f64>]) -> (Vec<usize>, f64) {
        match self {
            PlacementStrategy::NodeAware | PlacementStrategy::Empirical => qap::solve(w, d),
            PlacementStrategy::Trivial => {
                let f: Vec<usize> = (0..w.len()).collect();
                let c = qap::cost(w, d, &f);
                (f, c)
            }
            PlacementStrategy::GreedySwap => qap::solve_greedy_2opt(w, d),
            PlacementStrategy::Hierarchical => multilevel::solve_multilevel(w, d),
        }
    }
}

/// The per-node assignment of GPU subdomains to physical GPUs.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    /// `gpu_for_subdomain[s]` = node-local GPU index hosting the subdomain
    /// with per-node linear index `s`.
    pub gpu_for_subdomain: Vec<usize>,
    /// Inverse map.
    pub subdomain_for_gpu: Vec<usize>,
    /// The QAP cost of this assignment (flow × distance), for reporting.
    pub cost: f64,
}

/// Pairwise exchange volume in bytes between the GPU subdomains of node
/// `n`: `w[i][j]` is the bytes subdomain `i` sends subdomain `j` per
/// exchange (only counting pairs that are both on this node).
pub fn flow_matrix(
    part: &Partition,
    n: Idx3,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
) -> Vec<Vec<f64>> {
    flow_matrix_bc(
        part,
        n,
        neighborhood,
        radius,
        quantities,
        elem_size,
        Boundary::Periodic,
    )
}

/// As [`flow_matrix`], under an explicit boundary condition (open domains
/// have no wrap flows).
#[allow(clippy::too_many_arguments)] // mirrors flow_matrix
pub fn flow_matrix_bc(
    part: &Partition,
    n: Idx3,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    bc: Boundary,
) -> Vec<Vec<f64>> {
    let g = part.gpus_per_node();
    let mut w = vec![vec![0.0; g]; g];
    for (ni, gi) in part.all_subdomains() {
        if ni != n {
            continue;
        }
        let src = part.gpu_linear(gi);
        let b = part.gpu_box(ni, gi);
        for d in neighborhood.directions() {
            let Some((nn, gg)) = part.neighbor_bc(ni, gi, d, bc) else {
                continue; // open boundary: no neighbor, no flow
            };
            if nn != n {
                continue; // off-node flow doesn't inform intra-node placement
            }
            let dst = part.gpu_linear(gg);
            if dst == src {
                continue; // self-exchange costs nothing to place
            }
            let e = radius.halo_extent(b.extent, d);
            let bytes = e[0] * e[1] * e[2] * quantities as u64 * elem_size as u64;
            w[src][dst] += bytes as f64;
        }
    }
    w
}

/// Compute the placement for node `n` from discovered (NVML-class)
/// distances. For [`PlacementStrategy::Empirical`] use
/// [`place_with_distance`] with a measured matrix instead.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn place(
    part: &Partition,
    n: Idx3,
    discovery: &NodeDiscovery,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    strategy: PlacementStrategy,
    bc: Boundary,
) -> Placement {
    assert_eq!(
        part.gpus_per_node(),
        discovery.num_gpus(),
        "partition GPUs per node must match the physical node"
    );
    assert_ne!(
        strategy,
        PlacementStrategy::Empirical,
        "empirical placement needs a measured matrix; use place_with_distance"
    );
    let d = discovery.distance_matrix();
    place_with_distance(
        part,
        n,
        &d,
        neighborhood,
        radius,
        quantities,
        elem_size,
        strategy,
        bc,
    )
}

/// Compute the placement for node `n` against an explicit distance matrix
/// (e.g. one built from measured bandwidths, [`crate::empirical`]),
/// solving with `strategy`'s ladder rung.
#[allow(clippy::too_many_arguments)] // mirrors `place`
pub fn place_with_distance(
    part: &Partition,
    n: Idx3,
    d: &[Vec<f64>],
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    strategy: PlacementStrategy,
    bc: Boundary,
) -> Placement {
    let g = part.gpus_per_node();
    assert_eq!(g, d.len(), "distance matrix must cover the node's GPUs");
    let w = flow_matrix_bc(part, n, neighborhood, radius, quantities, elem_size, bc);
    let (assignment, cost) = strategy.solve(&w, d);
    let mut inverse = vec![0usize; g];
    for (s, &gpu) in assignment.iter().enumerate() {
        inverse[gpu] = s;
    }
    Placement {
        gpu_for_subdomain: assignment,
        subdomain_for_gpu: inverse,
        cost,
    }
}

/// Pairwise exchange volume in bytes between *nodes*: the sparse flow
/// graph whose vertex `p` is the node with linear index `p` and whose
/// edge weights are the total bytes crossing each node boundary per
/// exchange — the instance the global mapping stage solves. A node talks
/// to at most 26 neighbors under `Full26`, so the graph is sparse at any
/// machine size.
pub fn node_flow_graph(
    part: &Partition,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    bc: Boundary,
) -> FlowGraph {
    let mut g = FlowGraph::new(part.num_nodes());
    for (ni, gi) in part.all_subdomains() {
        let src = part.node_linear(ni);
        let b = part.gpu_box(ni, gi);
        for d in neighborhood.directions() {
            let Some((nn, _)) = part.neighbor_bc(ni, gi, d, bc) else {
                continue;
            };
            if nn == ni {
                continue; // intra-node flow doesn't inform node mapping
            }
            let e = radius.halo_extent(b.extent, d);
            let bytes = e[0] * e[1] * e[2] * quantities as u64 * elem_size as u64;
            g.add_flow(src, part.node_linear(nn), bytes as f64);
        }
    }
    g
}

/// Topology-aware global mapping stage: assign the partition's node
/// subdomains to physical nodes of a switch hierarchy with the multilevel
/// mapper, replacing the implicit identity (blind recursive-bisection
/// order) mapping. Returns `node_for_subdomain[p]` = physical node
/// hosting the node subdomain with linear index `p`. Deterministic, O(1)
/// distance queries, no dense n² matrix — practical at full-machine scale
/// (4608 nodes in seconds; see `mapperf`).
///
/// # Panics
/// If `hierarchy.num_nodes() != part.num_nodes()`.
pub fn map_nodes(
    part: &Partition,
    neighborhood: Neighborhood,
    radius: &Radius,
    quantities: usize,
    elem_size: usize,
    bc: Boundary,
    hierarchy: &SwitchHierarchy,
) -> Vec<usize> {
    assert_eq!(
        hierarchy.num_nodes(),
        part.num_nodes(),
        "switch hierarchy must cover exactly the partition's nodes"
    );
    let flow = node_flow_graph(part, neighborhood, radius, quantities, elem_size, bc);
    multilevel::solve_sparse(&flow, hierarchy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::summit::summit_node;

    fn summit_discovery() -> NodeDiscovery {
        NodeDiscovery::discover(&summit_node())
    }

    #[test]
    fn flow_matrix_symmetric_for_constant_radius() {
        let p = Partition::new([720, 720, 720], 1, 6);
        let w = flow_matrix(
            &p,
            [0, 0, 0],
            Neighborhood::Full26,
            &Radius::constant(2),
            4,
            4,
        );
        for (i, row) in w.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, v) in row.iter().enumerate() {
                assert!((v - w[j][i]).abs() < 1e-6, "w[{i}][{j}]");
            }
        }
    }

    #[test]
    fn flow_matrix_face_volume_matches_geometry() {
        // 2 subdomains split along x: each sends r * ny * nz cells per
        // quantity to the other, twice (wrap makes them neighbors on both
        // sides).
        let p = Partition::with_dims([64, 32, 16], [1, 1, 1], [2, 1, 1]);
        let w = flow_matrix(
            &p,
            [0, 0, 0],
            Neighborhood::Faces6,
            &Radius::constant(1),
            1,
            4,
        );
        let expect = 2.0 * (32 * 16 * 4) as f64; // r=1; both +x and -x (periodic)
        assert_eq!(w[0][1], expect);
        assert_eq!(w[1][0], expect);
    }

    #[test]
    fn node_aware_beats_trivial_on_fig11_shape() {
        // The paper's worst-case example: 1440 x 1452 x 700 over 6 GPUs.
        let p = Partition::new([1440, 1452, 700], 1, 6);
        let disc = summit_discovery();
        let r = Radius::constant(2);
        let aware = place(
            &p,
            [0, 0, 0],
            &disc,
            Neighborhood::Full26,
            &r,
            4,
            4,
            PlacementStrategy::NodeAware,
            Boundary::Periodic,
        );
        let trivial = place(
            &p,
            [0, 0, 0],
            &disc,
            Neighborhood::Full26,
            &r,
            4,
            4,
            PlacementStrategy::Trivial,
            Boundary::Periodic,
        );
        assert!(
            aware.cost <= trivial.cost,
            "node-aware ({}) must not lose to trivial ({})",
            aware.cost,
            trivial.cost
        );
    }

    #[test]
    fn placement_is_bijective() {
        let p = Partition::new([720, 484, 700], 1, 6);
        let disc = summit_discovery();
        let pl = place(
            &p,
            [0, 0, 0],
            &disc,
            Neighborhood::Full26,
            &Radius::constant(2),
            4,
            4,
            PlacementStrategy::NodeAware,
            Boundary::Periodic,
        );
        let mut gpus = pl.gpu_for_subdomain.clone();
        gpus.sort_unstable();
        assert_eq!(gpus, vec![0, 1, 2, 3, 4, 5]);
        for s in 0..6 {
            assert_eq!(pl.subdomain_for_gpu[pl.gpu_for_subdomain[s]], s);
        }
    }

    #[test]
    fn trivial_placement_is_identity() {
        let p = Partition::new([720, 720, 720], 1, 6);
        let disc = summit_discovery();
        let pl = place(
            &p,
            [0, 0, 0],
            &disc,
            Neighborhood::Full26,
            &Radius::constant(1),
            1,
            4,
            PlacementStrategy::Trivial,
            Boundary::Periodic,
        );
        assert_eq!(pl.gpu_for_subdomain, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn heavy_neighbors_share_a_triad() {
        // Fig. 11 layout: gpu grid [2, 3, 1] over 1440x1452x700; the
        // heaviest exchanges are the 720x700 x-faces between x-neighbors.
        // Node-aware placement must put x-adjacent subdomain pairs on
        // NVLink-direct GPU pairs where possible.
        let p = Partition::new([1440, 1452, 700], 1, 6);
        assert_eq!(p.gpu_dims, [2, 3, 1]);
        let disc = summit_discovery();
        let r = Radius::constant(2);
        let pl = place(
            &p,
            [0, 0, 0],
            &disc,
            Neighborhood::Full26,
            &r,
            4,
            4,
            PlacementStrategy::NodeAware,
            Boundary::Periodic,
        );
        let w = flow_matrix(&p, [0, 0, 0], Neighborhood::Full26, &r, 4, 4);
        let d = disc.distance_matrix();
        // count flow-weighted traffic landing on SYS (cross-triad) links
        let mut sys_traffic_aware = 0.0;
        let mut total = 0.0;
        for (i, row) in w.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                total += v;
                let gi = pl.gpu_for_subdomain[i];
                let gj = pl.gpu_for_subdomain[j];
                if i != j && d[gi][gj] > 1.0 / 49e9 {
                    sys_traffic_aware += v;
                }
            }
        }
        // the optimum keeps well under half the traffic off the X-Bus
        assert!(
            sys_traffic_aware < total * 0.5,
            "sys {sys_traffic_aware} of {total}"
        );
    }
}
