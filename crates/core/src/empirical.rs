//! Empirical bandwidth measurement for placement — the paper's §VI
//! future-work item (after Faraji et al.): instead of inferring pair
//! bandwidths from NVML connection classes, *measure* them with timed probe
//! transfers at setup and feed the measured matrix into the QAP.
//!
//! Protocol (collective over the job): the first rank of each node launches
//! one probe copy per ordered GPU pair of its node — all *concurrently*, so
//! shared links (the X-Bus) divide their capacity exactly as they do under
//! a real halo exchange — then shares the measured matrix with its
//! node-mates over the setup channel. Different nodes probe in parallel;
//! their links are disjoint, so measurements don't disturb each other.
//! Homogeneous nodes (all we model, and all Summit has) measure identical
//! matrices, so every rank ends up with the same placement without global
//! communication.

use mpisim::RankCtx;

/// Setup-channel tag space for bandwidth-matrix broadcast (outside the
/// exchange-plan tag space, which is `subdomain_id * 32 + direction`).
const BW_TAG: u64 = u64::MAX - 1;

/// Default probe size: large enough that fixed overheads (kernel launch,
/// link latency, call overhead) are amortized to a few percent.
pub const DEFAULT_PROBE_BYTES: u64 = 32 << 20;

/// Measure the achievable bandwidth between every ordered pair of this
/// node's GPUs, in bytes/second. `bw[a][b]` is the measured peer-copy rate
/// from local GPU `a` to local GPU `b`; the diagonal holds the on-device
/// copy rate. Pairs without peer capability get 0.0.
///
/// Collective across the node's ranks (the node's first rank probes, the
/// rest receive the result).
pub fn measure_node_bandwidths(ctx: &RankCtx, probe_bytes: u64) -> Vec<Vec<f64>> {
    let machine = ctx.machine().clone();
    let g = machine.gpus_per_node();
    let rpn = ctx.ranks_per_node();
    let node = ctx.node();
    let first_rank = node * rpn;

    if ctx.rank() == first_rank {
        // Launch every pair's probe copy *concurrently*, one stream per
        // pair, and time each one individually. A quiescent serial probe
        // would measure nearly identical peak rates for NVLink-direct and
        // cross-socket pairs (each hop is fast in isolation); what placement
        // actually cares about is the rate *under the all-pairs load a halo
        // exchange produces*, where the shared X-Bus divides its capacity
        // among every cross-socket pair. Probing concurrently measures
        // exactly that.
        let mut bufs = Vec::new();
        let mut probes = Vec::new(); // (a, b, start, end-stamp, done)
        for a in 0..g {
            for b in 0..g {
                let da = machine.device_at(node, a);
                let db = machine.device_at(node, b);
                if a != b {
                    if !machine.can_access_peer(da, db) {
                        continue;
                    }
                    machine.enable_peer_access(da, db).expect("checked");
                }
                let src = machine
                    .alloc_device_untimed(da, probe_bytes)
                    .expect("probe buffer");
                let dst = machine
                    .alloc_device_untimed(db, probe_bytes)
                    .expect("probe buffer");
                let stream = ctx.sim().with_kernel(|k| machine.create_stream(k, da));
                let t0 = ctx.sim().now();
                let done = machine.memcpy_async(ctx.sim(), stream, &dst, 0, &src, 0, probe_bytes);
                // Stamp the *completion* time from a callback: waiting on the
                // probes one by one would inflate the duration of any probe
                // that finishes while we are blocked on an earlier one.
                let end = std::sync::Arc::new(parking_lot::Mutex::new(detsim::SimTime::ZERO));
                let e2 = std::sync::Arc::clone(&end);
                ctx.sim().with_kernel(|k| {
                    k.on_complete(&done, move |k| {
                        *e2.lock() = k.now();
                    })
                });
                probes.push((a, b, t0, end, done));
                bufs.push((src, dst));
            }
        }
        let mut bw = vec![vec![0.0f64; g]; g];
        for (a, b, t0, end, done) in probes {
            ctx.sim().wait(&done);
            let dt = end.lock().since(t0).as_secs_f64();
            bw[a][b] = probe_bytes as f64 / dt;
        }
        for (src, dst) in bufs {
            machine.free_device(&src);
            machine.free_device(&dst);
        }
        for peer in (first_rank + 1)..(first_rank + rpn) {
            ctx.send_obj(peer, BW_TAG, bw.clone());
        }
        bw
    } else {
        ctx.recv_obj::<Vec<Vec<f64>>>(first_rank, BW_TAG)
    }
}

/// Turn a measured bandwidth matrix into a QAP distance matrix
/// (element-wise reciprocal; zero-bandwidth pairs become infinitely far,
/// the diagonal becomes zero-cost).
pub fn distance_from_measured(bw: &[Vec<f64>]) -> Vec<Vec<f64>> {
    bw.iter()
        .enumerate()
        .map(|(a, row)| {
            row.iter()
                .enumerate()
                .map(|(b, &v)| {
                    if a == b {
                        0.0
                    } else if v > 0.0 {
                        1.0 / v
                    } else {
                        f64::INFINITY
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matrix_reciprocal_rules() {
        let bw = vec![
            vec![800e9, 50e9, 0.0],
            vec![50e9, 800e9, 25e9],
            vec![0.0, 25e9, 800e9],
        ];
        let d = distance_from_measured(&bw);
        assert_eq!(d[0][0], 0.0);
        assert_eq!(d[0][1], 1.0 / 50e9);
        assert_eq!(d[0][2], f64::INFINITY);
        assert_eq!(d[2][1], 1.0 / 25e9);
    }
}
