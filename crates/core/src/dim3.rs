//! Small 3D index/extent/direction types used throughout the library.
//!
//! Convention: component 0 is `x` (fastest-varying in memory), component 2
//! is `z` (slowest).

/// An extent or coordinate in grid cells.
pub type Dim3 = [u64; 3];

/// A 3D index into a decomposition grid (node index, GPU index).
pub type Idx3 = [usize; 3];

/// A halo-exchange direction: each component in `{-1, 0, 1}`, not all zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Dir3(pub [i8; 3]);

impl Dir3 {
    /// Construct; panics on invalid components or the zero direction.
    pub fn new(x: i8, y: i8, z: i8) -> Dir3 {
        assert!(
            (-1..=1).contains(&x) && (-1..=1).contains(&y) && (-1..=1).contains(&z),
            "direction components must be in -1..=1"
        );
        assert!(!(x == 0 && y == 0 && z == 0), "zero direction");
        Dir3([x, y, z])
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir3 {
        Dir3([-self.0[0], -self.0[1], -self.0[2]])
    }

    /// Number of nonzero components (1 = face, 2 = edge, 3 = corner).
    pub fn order(self) -> usize {
        self.0.iter().filter(|&&c| c != 0).count()
    }

    /// Dense index in `0..26` (the 27 lattice directions minus the center),
    /// stable across runs — used for message tags.
    pub fn index(self) -> usize {
        let raw =
            (self.0[2] + 1) as usize * 9 + (self.0[1] + 1) as usize * 3 + (self.0[0] + 1) as usize;
        // raw 13 is the zero direction, which cannot occur.
        if raw < 13 {
            raw
        } else {
            raw - 1
        }
    }
}

/// Which neighbors a stencil exchanges with (paper Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Neighborhood {
    /// Axis-aligned stencils: 6 face neighbors (Fig. 1a).
    Faces6,
    /// Stencils with in-plane diagonals: faces + 12 edges (Fig. 1b).
    FacesEdges18,
    /// Full compact stencils: faces + edges + 8 corners.
    #[default]
    Full26,
}

impl Neighborhood {
    /// All exchange directions for this neighborhood, in a fixed order.
    pub fn directions(self) -> Vec<Dir3> {
        let max_order = match self {
            Neighborhood::Faces6 => 1,
            Neighborhood::FacesEdges18 => 2,
            Neighborhood::Full26 => 3,
        };
        let mut out = Vec::new();
        for z in -1i8..=1 {
            for y in -1i8..=1 {
                for x in -1i8..=1 {
                    if x == 0 && y == 0 && z == 0 {
                        continue;
                    }
                    let d = Dir3([x, y, z]);
                    if d.order() <= max_order {
                        out.push(d);
                    }
                }
            }
        }
        out
    }

    /// Number of neighbors.
    pub fn count(self) -> usize {
        match self {
            Neighborhood::Faces6 => 6,
            Neighborhood::FacesEdges18 => 18,
            Neighborhood::Full26 => 26,
        }
    }
}

/// Boundary condition of the global domain (paper §I: the evaluation uses
/// periodic boundaries; the techniques apply to other types — this is that
/// generalization).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Boundary {
    /// Opposite faces are adjacent; every subdomain has a neighbor in every
    /// direction.
    #[default]
    Periodic,
    /// The domain ends at its faces: subdomains on the boundary simply have
    /// no neighbor in outward directions, and their outward halos are left
    /// untouched by exchanges (for the application to fill with its own
    /// boundary condition).
    Open,
}

/// An axis-aligned box of grid cells: `origin` inclusive, `extent` cells per
/// axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Box3 {
    /// First cell of the box (global coordinates).
    pub origin: Dim3,
    /// Cells per axis.
    pub extent: Dim3,
}

impl Box3 {
    /// Cell count.
    pub fn volume(&self) -> u64 {
        self.extent[0] * self.extent[1] * self.extent[2]
    }

    /// Surface area in cells (sum of face areas, each face counted once).
    pub fn surface(&self) -> u64 {
        let [x, y, z] = self.extent;
        2 * (x * y + y * z + x * z)
    }

    /// Whether `p` lies inside.
    pub fn contains(&self, p: Dim3) -> bool {
        (0..3).all(|a| p[a] >= self.origin[a] && p[a] < self.origin[a] + self.extent[a])
    }

    /// Exclusive upper corner.
    pub fn end(&self) -> Dim3 {
        [
            self.origin[0] + self.extent[0],
            self.origin[1] + self.extent[1],
            self.origin[2] + self.extent[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn direction_orders() {
        assert_eq!(Dir3::new(1, 0, 0).order(), 1);
        assert_eq!(Dir3::new(1, -1, 0).order(), 2);
        assert_eq!(Dir3::new(1, 1, 1).order(), 3);
    }

    #[test]
    fn opposite_round_trips() {
        for d in Neighborhood::Full26.directions() {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn neighborhood_counts() {
        for n in [
            Neighborhood::Faces6,
            Neighborhood::FacesEdges18,
            Neighborhood::Full26,
        ] {
            assert_eq!(n.directions().len(), n.count());
        }
    }

    #[test]
    fn direction_indices_unique_and_dense() {
        let idx: HashSet<usize> = Neighborhood::Full26
            .directions()
            .into_iter()
            .map(|d| d.index())
            .collect();
        assert_eq!(idx.len(), 26);
        assert!(idx.iter().all(|&i| i < 26));
    }

    #[test]
    #[should_panic(expected = "zero direction")]
    fn zero_direction_rejected() {
        Dir3::new(0, 0, 0);
    }

    #[test]
    fn box_math() {
        let b = Box3 {
            origin: [1, 2, 3],
            extent: [4, 5, 6],
        };
        assert_eq!(b.volume(), 120);
        assert_eq!(b.surface(), 2 * (20 + 30 + 24));
        assert!(b.contains([1, 2, 3]));
        assert!(b.contains([4, 6, 8]));
        assert!(!b.contains([5, 6, 8]));
        assert_eq!(b.end(), [5, 7, 9]);
    }
}
