//! The halo-exchange engine: per-pair communication plans built at setup
//! (phase 3, §III-C) and the asynchronous execution with Sender/Receiver
//! state machines (§III-D).
//!
//! Pure-CUDA methods (`Kernel`, `PeerMemcpy`, `ColocatedMemcpy` on the
//! sending side) are enqueued on streams up front and simply complete.
//! Methods mixing CUDA and MPI (`Staged`, `CudaAwareMpi`, plus the
//! receiving side of `ColocatedMemcpy`) are driven by small state machines
//! polled in a loop, so every transfer's phases overlap with everything
//! else — exactly the paper's Fig. 9 structure.

use std::collections::VecDeque;
use std::sync::Arc;

use detsim::{Completion, Kernel};
use gpusim::{Buffer, Stream, Work};
use mpisim::{Channel, ChannelRound, RankCtx, Request};
use parking_lot::Mutex;

use crate::dim3::Dim3;
use crate::domain::DistributedDomain;
use crate::method::{select, Method, PairCaps};
use crate::region::{self, Region};
use crate::stats::PlanSummary;

/// A shared one-slot-per-exchange channel carrying "your data has landed"
/// completions from a colocated sender to its receiver — the simulation
/// analogue of the `cudaIpc` event handles real colocated exchange shares
/// at setup so that no MPI happens during exchanges.
#[derive(Clone)]
pub struct Mailbox(Arc<Mutex<MailboxState>>);

#[derive(Default)]
struct MailboxState {
    items: VecDeque<Completion>,
    waiters: VecDeque<Completion>,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox(Arc::new(Mutex::new(MailboxState::default())))
    }

    fn put(&self, k: &mut Kernel, c: Completion) {
        let mut st = self.0.lock();
        st.items.push_back(c);
        // Complete *every* queued waiter: pollers may abandon a waiter
        // without ever blocking on it (wait_any returns early when another
        // completion is already done), so completing only the oldest could
        // signal a dead waiter and strand the live one.
        let waiters = std::mem::take(&mut st.waiters);
        drop(st);
        for w in waiters {
            k.complete(&w);
        }
    }

    /// Take a landed-data completion, or a completion to wait on before
    /// retrying.
    fn try_take(&self, k: &mut Kernel) -> Result<Completion, Completion> {
        let mut st = self.0.lock();
        match st.items.pop_front() {
            Some(c) => Ok(c),
            None => {
                let w = k.completion();
                st.waiters.push_back(w.clone());
                Err(w)
            }
        }
    }
}

/// Setup payload a colocated receiver sends its sender: the IPC handle of
/// its receive buffer and the event mailbox.
struct ColoShare {
    handle: gpusim::IpcMemHandle,
    mailbox: Mailbox,
}

/// One outgoing transfer (this rank's subdomain → a neighbor).
pub(crate) struct SendPlan {
    pub method: Method,
    pub stream: Stream,
    pub dst_rank: usize,
    pub tag: u64,
    pub bytes: u64,
    pub arrays: Vec<Buffer>,
    pub dims: Dim3,
    pub elem: usize,
    pub src_region: Region,
    /// `Kernel` method: the destination halo region in the *same* array.
    pub self_dst_region: Region,
    pub pack_buf: Option<Buffer>,
    pub host_buf: Option<Buffer>,
    /// `ColocatedMemcpy`: the receiver's buffer, IPC-opened at setup.
    pub remote_buf: Option<Buffer>,
    /// `ColocatedMemcpy`: landed-data notification channel.
    pub mailbox: Option<Mailbox>,
    /// `PeerMemcpy`: index of the matching receive plan in this rank.
    pub peer_recv: Option<usize>,
    /// `PersistentStaged`/`PartitionedStaged`: the channel end set up once
    /// at plan-build time (`*_init`), started every exchange.
    pub chan: Option<Channel>,
}

/// One segment of a consolidated message: the pack/unpack geometry for one
/// original direction within the combined buffer.
pub(crate) struct Segment {
    pub arrays: Vec<Buffer>,
    pub dims: Dim3,
    pub elem: usize,
    pub region: Region,
    /// Byte offset of this segment inside the combined message.
    pub offset: u64,
    pub bytes: u64,
    /// Receive side: the per-segment device staging buffer.
    pub dev_buf: Option<Buffer>,
    /// Receive side: stream on the segment's destination device.
    pub stream: Option<Stream>,
}

/// Several staged transfers from one subdomain to one rank, consolidated
/// into a single message (paper §VI: "fewer, larger MPI messages tend to
/// achieve better performance").
pub(crate) struct GroupedSendPlan {
    pub stream: Stream,
    pub dst_rank: usize,
    pub tag: u64,
    pub bytes: u64,
    pub segments: Vec<Segment>,
    pub pack_buf: Buffer,
    pub host_buf: Buffer,
}

/// Receive side of a consolidated message: one `Irecv`, then per-segment
/// H2D + unpack fan-out (segments may land on different GPUs of this rank).
pub(crate) struct GroupedRecvPlan {
    pub src_rank: usize,
    pub tag: u64,
    pub bytes: u64,
    pub segments: Vec<Segment>,
    pub host_buf: Buffer,
}

/// One incoming transfer (a neighbor → this rank's subdomain).
pub(crate) struct RecvPlan {
    pub method: Method,
    pub stream: Stream,
    pub src_rank: usize,
    pub tag: u64,
    pub bytes: u64,
    pub arrays: Vec<Buffer>,
    pub dims: Dim3,
    pub elem: usize,
    pub dst_region: Region,
    pub recv_dev_buf: Option<Buffer>,
    pub host_buf: Option<Buffer>,
    pub mailbox: Option<Mailbox>,
    /// `PersistentStaged`/`PartitionedStaged`: the receive channel end.
    pub chan: Option<Channel>,
}

/// How many partitions a `PartitionedStaged` message of `bytes` uses: one
/// per 8 KiB up to 4, so small messages degrade gracefully to a single
/// partition (≈ persistent) instead of paying per-partition overhead for
/// nothing.
pub(crate) fn partition_count(bytes: u64) -> usize {
    (bytes / 8192).clamp(1, 4) as usize
}

/// Byte range of partition `part` of `parts` over a `bytes`-long message —
/// the same equal-chunk split `mpisim` uses on the wire.
fn partition_range(bytes: u64, parts: usize, part: usize) -> (u64, u64) {
    let chunk = bytes.div_ceil(parts as u64);
    let off = part as u64 * chunk;
    (off, chunk.min(bytes - off))
}

fn make_pack_work(arrays: Vec<Buffer>, dims: Dim3, elem: usize, reg: Region, out: Buffer) -> Work {
    Box::new(move || {
        if !out.has_data() {
            return;
        }
        let mut off = 0usize;
        for a in &arrays {
            a.with_data(|src| {
                out.with_data(|dst| {
                    off += region::pack(src, dims, elem, reg, dst, off);
                })
            });
        }
    })
}

fn make_unpack_work(
    arrays: Vec<Buffer>,
    dims: Dim3,
    elem: usize,
    reg: Region,
    inp: Buffer,
) -> Work {
    Box::new(move || {
        if !inp.has_data() {
            return;
        }
        let mut off = 0usize;
        for a in &arrays {
            inp.with_data(|src| {
                a.with_data(|dst| {
                    off += region::unpack(src, off, dst, dims, elem, reg);
                })
            });
        }
    })
}

fn make_group_pack_work(segments: &[Segment], out: Buffer) -> Work {
    let segs: Vec<(Vec<Buffer>, Dim3, usize, Region, u64)> = segments
        .iter()
        .map(|s| (s.arrays.clone(), s.dims, s.elem, s.region, s.offset))
        .collect();
    Box::new(move || {
        if !out.has_data() {
            return;
        }
        for (arrays, dims, elem, reg, base) in &segs {
            let mut off = *base as usize;
            for a in arrays {
                a.with_data(|src| {
                    out.with_data(|dst| {
                        off += region::pack(src, *dims, *elem, *reg, dst, off);
                    })
                });
            }
        }
    })
}

fn make_self_exchange_work(
    arrays: Vec<Buffer>,
    dims: Dim3,
    elem: usize,
    from: Region,
    to: Region,
) -> Work {
    Box::new(move || {
        for a in &arrays {
            if !a.has_data() {
                return;
            }
            a.with_data(|arr| region::copy_region(arr, dims, elem, from, to));
        }
    })
}

/// Build the specialized communication plan for this rank (setup phase 3).
/// Collective: performs the colocated IPC handshake and ends with a
/// barrier.
pub(crate) fn build_plans(
    ctx: &RankCtx,
    dom_part: &crate::partition::Partition,
    placements: &[crate::placement::Placement],
    locals: &[crate::local::LocalDomain],
    spec: &crate::domain::DomainSpec,
) -> (
    Vec<SendPlan>,
    Vec<RecvPlan>,
    Vec<GroupedSendPlan>,
    Vec<GroupedRecvPlan>,
    PlanSummary,
) {
    let machine = ctx.machine().clone();
    let rpn = ctx.ranks_per_node();
    let gpr = machine.gpus_per_node() / rpn;
    let my_rank = ctx.rank();

    let device_of = |n: crate::dim3::Idx3, g: crate::dim3::Idx3| -> usize {
        let node = dom_part.node_linear(n);
        let s = dom_part.gpu_linear(g);
        let local_gpu = placements[node].gpu_for_subdomain[s];
        machine.device_at(node, local_gpu)
    };
    let rank_of_device =
        |d: usize| -> usize { machine.node_of(d) * rpn + machine.local_of(d) / gpr };

    let dirs = spec.neighborhood.directions();
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    let mut summary = PlanSummary::default();

    for local in locals {
        let ext = local.interior.extent;
        let sid = dom_part.subdomain_id(local.node_idx, local.gpu_idx) as u64;
        for &d in &dirs {
            // ---- outgoing: local sends toward d (None on an open edge) ---
            if let Some((nn, gg)) =
                dom_part.neighbor_bc(local.node_idx, local.gpu_idx, d, spec.boundary)
            {
                let dst_dev = device_of(nn, gg);
                let dst_rank = rank_of_device(dst_dev);
                let e = spec.radius.halo_extent(ext, d);
                let bytes = e[0] * e[1] * e[2] * spec.quantities as u64 * spec.elem_size as u64;
                if bytes > 0 {
                    let caps = PairCaps {
                        same_device: dst_dev == local.device,
                        same_rank: dst_rank == my_rank,
                        same_node: machine.node_of(dst_dev) == machine.node_of(local.device),
                        peer_access: machine.can_access_peer(local.device, dst_dev)
                            || dst_dev == local.device,
                        cuda_aware: ctx.cuda_aware(),
                        persistent: ctx.mpi_persistent(),
                        partitioned: ctx.mpi_partitioned(),
                    };
                    let method = select(spec.methods, caps);
                    if matches!(method, Method::PeerMemcpy | Method::ColocatedMemcpy)
                        && dst_dev != local.device
                    {
                        machine
                            .enable_peer_access(local.device, dst_dev)
                            .expect("peer access checked in caps");
                    }
                    let stream = ctx
                        .sim()
                        .with_kernel(|k| machine.create_stream(k, local.device));
                    let pack_buf = (method != Method::Kernel).then(|| {
                        machine
                            .alloc_device_untimed(local.device, bytes)
                            .expect("pack buffer")
                    });
                    let host_buf = matches!(
                        method,
                        Method::Staged | Method::PersistentStaged | Method::PartitionedStaged
                    )
                    .then(|| {
                        machine.alloc_host_untimed(
                            machine.node_of(local.device),
                            machine
                                .fabric()
                                .node_spec()
                                .gpu_socket(machine.local_of(local.device)),
                            bytes,
                        )
                    });
                    summary.record(method, bytes);
                    sends.push(SendPlan {
                        method,
                        stream,
                        dst_rank,
                        tag: sid * 32 + d.index() as u64,
                        bytes,
                        arrays: local.arrays.clone(),
                        dims: local.dims,
                        elem: spec.elem_size,
                        src_region: region::src_region(ext, &spec.radius, d),
                        self_dst_region: region::dst_region(ext, &spec.radius, d),
                        pack_buf,
                        host_buf,
                        remote_buf: None,
                        mailbox: None,
                        peer_recv: None,
                        chan: None,
                    });
                }
            }

            // ---- incoming: neighbor at -d sends toward d to local --------
            let Some((sn, sg)) =
                dom_part.neighbor_bc(local.node_idx, local.gpu_idx, d.opposite(), spec.boundary)
            else {
                continue; // open boundary: outward halo stays untouched
            };
            let src_dev = device_of(sn, sg);
            let src_rank = rank_of_device(src_dev);
            let src_ext = dom_part.gpu_box(sn, sg).extent;
            let se = spec.radius.halo_extent(src_ext, d);
            let rbytes = se[0] * se[1] * se[2] * spec.quantities as u64 * spec.elem_size as u64;
            if rbytes > 0 {
                let dst_reg = region::dst_region(ext, &spec.radius, d);
                debug_assert_eq!(
                    dst_reg.volume() * spec.quantities as u64 * spec.elem_size as u64,
                    rbytes,
                    "sender/receiver disagree on message size"
                );
                let caps = PairCaps {
                    same_device: src_dev == local.device,
                    same_rank: src_rank == my_rank,
                    same_node: machine.node_of(src_dev) == machine.node_of(local.device),
                    peer_access: machine.can_access_peer(src_dev, local.device)
                        || src_dev == local.device,
                    cuda_aware: ctx.cuda_aware(),
                    persistent: ctx.mpi_persistent(),
                    partitioned: ctx.mpi_partitioned(),
                };
                let method = select(spec.methods, caps);
                let src_sid = dom_part.subdomain_id(sn, sg) as u64;
                let stream = ctx
                    .sim()
                    .with_kernel(|k| machine.create_stream(k, local.device));
                let recv_dev_buf = (method != Method::Kernel).then(|| {
                    machine
                        .alloc_device_untimed(local.device, rbytes)
                        .expect("recv buffer")
                });
                let host_buf = matches!(
                    method,
                    Method::Staged | Method::PersistentStaged | Method::PartitionedStaged
                )
                .then(|| {
                    machine.alloc_host_untimed(
                        machine.node_of(local.device),
                        machine
                            .fabric()
                            .node_spec()
                            .gpu_socket(machine.local_of(local.device)),
                        rbytes,
                    )
                });
                let mailbox = (method == Method::ColocatedMemcpy).then(Mailbox::new);
                recvs.push(RecvPlan {
                    method,
                    stream,
                    src_rank,
                    tag: src_sid * 32 + d.index() as u64,
                    bytes: rbytes,
                    arrays: local.arrays.clone(),
                    dims: local.dims,
                    elem: spec.elem_size,
                    dst_region: dst_reg,
                    recv_dev_buf,
                    host_buf,
                    mailbox,
                    chan: None,
                });
            }
        }
    }

    // Colocated IPC handshake: receivers share (handle, mailbox), senders
    // open the handle. One-time, during setup — no MPI during exchanges.
    for rp in &recvs {
        if rp.method == Method::ColocatedMemcpy {
            ctx.send_obj(
                rp.src_rank,
                rp.tag,
                ColoShare {
                    handle: ctx
                        .machine()
                        .ipc_get_handle(rp.recv_dev_buf.as_ref().unwrap()),
                    mailbox: rp.mailbox.clone().unwrap(),
                },
            );
        }
    }
    for sp in &mut sends {
        if sp.method == Method::ColocatedMemcpy {
            let share: ColoShare = ctx.recv_obj(sp.dst_rank, sp.tag);
            sp.remote_buf = Some(ctx.machine().ipc_open(ctx.sim(), &share.handle));
            sp.mailbox = Some(share.mailbox);
        }
    }
    // Optional consolidation (paper §VI): merge every set of >1 staged
    // transfers sharing (source subdomain, destination rank) into a single
    // message. Both sides compute the same groups from the same partition
    // and method-selection math, ordered by tag, so offsets agree without
    // extra handshaking.
    let mut grouped_sends: Vec<GroupedSendPlan> = Vec::new();
    let mut grouped_recvs: Vec<GroupedRecvPlan> = Vec::new();
    if spec.consolidate {
        use std::collections::BTreeMap;
        // --- sends: group staged by (src subdomain, dst rank) -------------
        let mut keep = Vec::new();
        let mut groups: BTreeMap<(u64, usize), Vec<SendPlan>> = BTreeMap::new();
        for sp in sends {
            if sp.method == Method::Staged {
                groups
                    .entry((sp.tag / 32, sp.dst_rank))
                    .or_default()
                    .push(sp);
            } else {
                keep.push(sp);
            }
        }
        for ((sid, dst_rank), mut members) in groups {
            if members.len() == 1 {
                keep.push(members.pop().unwrap());
                continue;
            }
            members.sort_by_key(|p| p.tag);
            // all members originate on one source device
            let device = machine.stream_device(members[0].stream);
            let total: u64 = members.iter().map(|p| p.bytes).sum();
            let pack_buf = machine
                .alloc_device_untimed(device, total)
                .expect("consolidated pack buffer");
            let host_buf = machine.alloc_host_untimed(
                machine.node_of(device),
                machine
                    .fabric()
                    .node_spec()
                    .gpu_socket(machine.local_of(device)),
                total,
            );
            let mut off = 0;
            let segments: Vec<Segment> = members
                .iter()
                .map(|p| {
                    let seg = Segment {
                        arrays: p.arrays.clone(),
                        dims: p.dims,
                        elem: p.elem,
                        region: p.src_region,
                        offset: off,
                        bytes: p.bytes,
                        dev_buf: None,
                        stream: None,
                    };
                    off += p.bytes;
                    seg
                })
                .collect();
            grouped_sends.push(GroupedSendPlan {
                stream: members[0].stream,
                dst_rank,
                tag: sid * 32 + 26, // reserved "consolidated" direction slot
                bytes: total,
                segments,
                pack_buf,
                host_buf,
            });
        }
        sends = keep;
        // --- receives: the mirror grouping by (src subdomain, src rank) ---
        let mut keep = Vec::new();
        let mut groups: BTreeMap<(u64, usize), Vec<RecvPlan>> = BTreeMap::new();
        for rp in recvs {
            if rp.method == Method::Staged {
                groups
                    .entry((rp.tag / 32, rp.src_rank))
                    .or_default()
                    .push(rp);
            } else {
                keep.push(rp);
            }
        }
        for ((sid, src_rank), mut members) in groups {
            if members.len() == 1 {
                keep.push(members.pop().unwrap());
                continue;
            }
            members.sort_by_key(|p| p.tag);
            let total: u64 = members.iter().map(|p| p.bytes).sum();
            // the host landing buffer lives on the first segment's socket
            let dev0 = machine.stream_device(members[0].stream);
            let host_buf = machine.alloc_host_untimed(
                machine.node_of(dev0),
                machine
                    .fabric()
                    .node_spec()
                    .gpu_socket(machine.local_of(dev0)),
                total,
            );
            let mut off = 0;
            let segments: Vec<Segment> = members
                .iter()
                .map(|p| {
                    let seg = Segment {
                        arrays: p.arrays.clone(),
                        dims: p.dims,
                        elem: p.elem,
                        region: p.dst_region,
                        offset: off,
                        bytes: p.bytes,
                        dev_buf: p.recv_dev_buf.clone(),
                        stream: Some(p.stream),
                    };
                    off += p.bytes;
                    seg
                })
                .collect();
            grouped_recvs.push(GroupedRecvPlan {
                src_rank,
                tag: sid * 32 + 26,
                bytes: total,
                segments,
                host_buf,
            });
        }
        recvs = keep;
    }

    // Persistent/partitioned channel setup (`*_init`): register both ends
    // under the plan's (rank pair, tag) key. Pays the full per-call MPI
    // overhead once, here — every exchange then pays only the cheap start.
    // The closing barrier below guarantees both ends exist before the
    // first round starts.
    for sp in &mut sends {
        match sp.method {
            Method::PersistentStaged => {
                let host = sp.host_buf.as_ref().unwrap();
                sp.chan = Some(ctx.send_init(host, 0, sp.bytes, sp.dst_rank, sp.tag));
            }
            Method::PartitionedStaged => {
                let host = sp.host_buf.as_ref().unwrap();
                let parts = partition_count(sp.bytes);
                sp.chan = Some(ctx.psend_init(host, 0, sp.bytes, sp.dst_rank, sp.tag, parts));
            }
            _ => {}
        }
    }
    for rp in &mut recvs {
        match rp.method {
            Method::PersistentStaged => {
                let host = rp.host_buf.as_ref().unwrap();
                rp.chan = Some(ctx.recv_init(host, 0, rp.bytes, rp.src_rank, rp.tag));
            }
            Method::PartitionedStaged => {
                let host = rp.host_buf.as_ref().unwrap();
                let parts = partition_count(rp.bytes);
                rp.chan = Some(ctx.precv_init(host, 0, rp.bytes, rp.src_rank, rp.tag, parts));
            }
            _ => {}
        }
    }

    // Link each peer send to its same-rank receive plan. This must happen
    // after consolidation: filtering staged plans out of `recvs` shifts the
    // indices of the surviving PeerMemcpy plans.
    for sp in &mut sends {
        if sp.method == Method::PeerMemcpy {
            let idx = recvs
                .iter()
                .position(|rp| rp.tag == sp.tag && rp.method == Method::PeerMemcpy)
                .expect("peer send without matching local receive plan");
            assert_eq!(
                recvs[idx].bytes, sp.bytes,
                "peer send/recv plans disagree on message size"
            );
            sp.peer_recv = Some(idx);
        }
    }
    ctx.barrier();
    (sends, recvs, grouped_sends, grouped_recvs, summary)
}

/// A state machine driving one CUDA+MPI transfer through its phases.
enum Machine {
    StagedSend {
        plan: usize,
        staged_ev: Completion,
        req: Option<Request>,
    },
    StagedRecv {
        plan: usize,
        req: Request,
        unpack_ev: Option<Completion>,
    },
    CaSend {
        plan: usize,
        pack_ev: Completion,
        req: Option<Request>,
    },
    CaRecv {
        plan: usize,
        req: Request,
        unpack_ev: Option<Completion>,
    },
    ColoRecv {
        plan: usize,
        arrival: Option<Completion>,
        unpack_ev: Option<Completion>,
    },
    GroupedSend {
        plan: usize,
        staged_ev: Completion,
        req: Option<Request>,
    },
    GroupedRecv {
        plan: usize,
        req: Request,
        unpack_all: Option<Completion>,
    },
    /// `PersistentStaged` send: pack → D2H as staged, then `start` on the
    /// channel instead of a fresh `Isend`.
    PersistentSend {
        plan: usize,
        staged_ev: Completion,
        round: Option<Request>,
    },
    /// `PersistentStaged` receive: the round was started up front
    /// (receivers first); H2D + unpack when it lands.
    PersistentRecv {
        plan: usize,
        round: Request,
        unpack_ev: Option<Completion>,
    },
    /// `PartitionedStaged` send: the packed message stages D2H in
    /// partition-sized chunks; each chunk's `pready` fires as its copy
    /// lands, so early partitions fly while later ones still stage.
    PartitionedSend {
        plan: usize,
        d2h_evs: Vec<Completion>,
        next_ready: usize,
        round: Request,
    },
    /// `PartitionedStaged` receive: partitions H2D individually as they
    /// arrive (`MPI_Parrived`), one unpack after the last.
    PartitionedRecv {
        plan: usize,
        round: ChannelRound,
        next_arrived: usize,
        unpack_ev: Option<Completion>,
    },
}

impl Machine {
    fn method(&self) -> Method {
        match self {
            Machine::StagedSend { .. } | Machine::StagedRecv { .. } => Method::Staged,
            Machine::CaSend { .. } | Machine::CaRecv { .. } => Method::CudaAwareMpi,
            Machine::ColoRecv { .. } => Method::ColocatedMemcpy,
            Machine::GroupedSend { .. } | Machine::GroupedRecv { .. } => Method::Staged,
            Machine::PersistentSend { .. } | Machine::PersistentRecv { .. } => {
                Method::PersistentStaged
            }
            Machine::PartitionedSend { .. } | Machine::PartitionedRecv { .. } => {
                Method::PartitionedStaged
            }
        }
    }
}

enum Poll {
    Done,
    Blocked(Completion),
}

/// An in-flight exchange started by
/// [`DistributedDomain::exchange_start`]; finish it with
/// [`DistributedDomain::exchange_finish`]. Compute on subdomain interiors
/// may proceed (on compute streams) between the two calls.
pub struct ExchangeHandle {
    machines: Vec<Machine>,
    pending: Vec<(Method, Completion)>,
    started: detsim::SimTime,
}

/// Virtual-time breakdown of one exchange: when the last transfer of each
/// method completed, relative to the exchange start (paper Fig. 9's
/// question — "what is the critical path made of?" — as numbers).
#[derive(Clone, Debug, Default)]
pub struct ExchangeTiming {
    /// Start-to-last-completion of the whole exchange.
    pub total: detsim::SimDuration,
    /// Per method: time from exchange start until its last transfer
    /// (including unpack) was observed complete.
    pub per_method: std::collections::BTreeMap<Method, detsim::SimDuration>,
    /// Per phase ("pack", "send", "wait", "unpack"): time from exchange
    /// start until the last transfer finished that phase. Fused methods
    /// (kernel, peer, colocated sends) have no distinct phases and only
    /// appear in `per_method`.
    pub per_phase: std::collections::BTreeMap<&'static str, detsim::SimDuration>,
}

impl ExchangeTiming {
    /// Max-update the completion time of `phase` relative to the start.
    fn phase(&mut self, phase: &'static str, d: detsim::SimDuration) {
        let e = self.per_phase.entry(phase).or_default();
        if d > *e {
            *e = d;
        }
    }
}

impl DistributedDomain {
    /// Issue one full halo exchange asynchronously. Pure-CUDA transfers are
    /// enqueued; CUDA+MPI transfers are set up as state machines. Returns a
    /// handle to finish with.
    pub fn exchange_start(&self, ctx: &RankCtx) -> ExchangeHandle {
        let m = ctx.machine().clone();
        let started = ctx.sim().now();
        let mut machines = Vec::new();
        let mut pending: Vec<(Method, Completion)> = Vec::new();

        // Receivers first: post all MPI receives before anyone sends.
        for (i, gp) in self.grouped_recv_plans.iter().enumerate() {
            let req = ctx.irecv(&gp.host_buf, 0, gp.bytes, gp.src_rank, gp.tag);
            machines.push(Machine::GroupedRecv {
                plan: i,
                req,
                unpack_all: None,
            });
        }
        for (i, rp) in self.recv_plans.iter().enumerate() {
            match rp.method {
                Method::Staged => {
                    let req = ctx.irecv(
                        rp.host_buf.as_ref().unwrap(),
                        0,
                        rp.bytes,
                        rp.src_rank,
                        rp.tag,
                    );
                    machines.push(Machine::StagedRecv {
                        plan: i,
                        req,
                        unpack_ev: None,
                    });
                }
                Method::CudaAwareMpi => {
                    let req = ctx.irecv(
                        rp.recv_dev_buf.as_ref().unwrap(),
                        0,
                        rp.bytes,
                        rp.src_rank,
                        rp.tag,
                    );
                    machines.push(Machine::CaRecv {
                        plan: i,
                        req,
                        unpack_ev: None,
                    });
                }
                Method::ColocatedMemcpy => {
                    machines.push(Machine::ColoRecv {
                        plan: i,
                        arrival: None,
                        unpack_ev: None,
                    });
                }
                Method::PersistentStaged => {
                    let round = ctx.start(rp.chan.as_ref().unwrap());
                    machines.push(Machine::PersistentRecv {
                        plan: i,
                        round: round.all,
                        unpack_ev: None,
                    });
                }
                Method::PartitionedStaged => {
                    let round = ctx.start(rp.chan.as_ref().unwrap());
                    machines.push(Machine::PartitionedRecv {
                        plan: i,
                        round,
                        next_arrived: 0,
                        unpack_ev: None,
                    });
                }
                // Kernel and Peer receives are driven by the sender (same rank).
                Method::Kernel | Method::PeerMemcpy => {}
            }
        }

        for (si, sp) in self.send_plans.iter().enumerate() {
            match sp.method {
                Method::Kernel => {
                    let work = make_self_exchange_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        sp.self_dst_region,
                    );
                    let done = m.launch_kernel(
                        ctx.sim(),
                        sp.stream,
                        "self-exchange",
                        sp.bytes,
                        Some(work),
                    );
                    pending.push((Method::Kernel, done));
                }
                Method::PeerMemcpy => {
                    let rp = &self.recv_plans[sp.peer_recv.expect("linked at setup")];
                    let pack_buf = sp.pack_buf.as_ref().unwrap();
                    let recv_buf = rp.recv_dev_buf.as_ref().unwrap();
                    let pack = make_pack_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        pack_buf.clone(),
                    );
                    m.launch_kernel(ctx.sim(), sp.stream, "pack", sp.bytes, Some(pack));
                    m.memcpy_async(ctx.sim(), sp.stream, recv_buf, 0, pack_buf, 0, sp.bytes);
                    let ev = m.record_event(ctx.sim(), sp.stream);
                    m.stream_wait_event(ctx.sim(), rp.stream, &ev);
                    let unpack = make_unpack_work(
                        rp.arrays.clone(),
                        rp.dims,
                        rp.elem,
                        rp.dst_region,
                        recv_buf.clone(),
                    );
                    let done =
                        m.launch_kernel(ctx.sim(), rp.stream, "unpack", rp.bytes, Some(unpack));
                    pending.push((Method::PeerMemcpy, done));
                }
                Method::ColocatedMemcpy => {
                    let pack_buf = sp.pack_buf.as_ref().unwrap();
                    let remote = sp.remote_buf.as_ref().expect("IPC handshake done at setup");
                    let pack = make_pack_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        pack_buf.clone(),
                    );
                    m.launch_kernel(ctx.sim(), sp.stream, "pack", sp.bytes, Some(pack));
                    let copied =
                        m.memcpy_async(ctx.sim(), sp.stream, remote, 0, pack_buf, 0, sp.bytes);
                    let mailbox = sp.mailbox.clone().unwrap();
                    let c2 = copied.clone();
                    ctx.sim().with_kernel(move |k| {
                        let c3 = c2.clone();
                        k.on_complete(&c2.clone(), move |k| mailbox.put(k, c3));
                    });
                    pending.push((Method::ColocatedMemcpy, copied));
                }
                Method::CudaAwareMpi => {
                    let pack_buf = sp.pack_buf.as_ref().unwrap();
                    let pack = make_pack_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        pack_buf.clone(),
                    );
                    m.launch_kernel(ctx.sim(), sp.stream, "pack", sp.bytes, Some(pack));
                    let pack_ev = m.record_event(ctx.sim(), sp.stream);
                    machines.push(Machine::CaSend {
                        plan: si,
                        pack_ev,
                        req: None,
                    });
                }
                Method::Staged => {
                    let pack_buf = sp.pack_buf.as_ref().unwrap();
                    let host_buf = sp.host_buf.as_ref().unwrap();
                    let pack = make_pack_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        pack_buf.clone(),
                    );
                    m.launch_kernel(ctx.sim(), sp.stream, "pack", sp.bytes, Some(pack));
                    m.memcpy_async(ctx.sim(), sp.stream, host_buf, 0, pack_buf, 0, sp.bytes);
                    let staged_ev = m.record_event(ctx.sim(), sp.stream);
                    machines.push(Machine::StagedSend {
                        plan: si,
                        staged_ev,
                        req: None,
                    });
                }
                Method::PersistentStaged => {
                    // Same pack → D2H pipeline as staged, but the wire leg is
                    // a pre-matched channel: the machine calls `start` (cheap,
                    // no per-iteration match) once staging completes.
                    let pack_buf = sp.pack_buf.as_ref().unwrap();
                    let host_buf = sp.host_buf.as_ref().unwrap();
                    let pack = make_pack_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        pack_buf.clone(),
                    );
                    m.launch_kernel(ctx.sim(), sp.stream, "pack", sp.bytes, Some(pack));
                    m.memcpy_async(ctx.sim(), sp.stream, host_buf, 0, pack_buf, 0, sp.bytes);
                    let staged_ev = m.record_event(ctx.sim(), sp.stream);
                    machines.push(Machine::PersistentSend {
                        plan: si,
                        staged_ev,
                        round: None,
                    });
                }
                Method::PartitionedStaged => {
                    // One pack kernel, then partition-sized D2H chunks with an
                    // event after each: partition p is `pready`d as soon as
                    // its chunk lands on the host, so early partitions are on
                    // the wire while later ones still stage.
                    let pack_buf = sp.pack_buf.as_ref().unwrap();
                    let host_buf = sp.host_buf.as_ref().unwrap();
                    let pack = make_pack_work(
                        sp.arrays.clone(),
                        sp.dims,
                        sp.elem,
                        sp.src_region,
                        pack_buf.clone(),
                    );
                    m.launch_kernel(ctx.sim(), sp.stream, "pack", sp.bytes, Some(pack));
                    let chan = sp.chan.as_ref().unwrap();
                    let parts = chan.parts();
                    let mut d2h_evs = Vec::with_capacity(parts);
                    for p in 0..parts {
                        let (off, len) = partition_range(sp.bytes, parts, p);
                        m.memcpy_async(ctx.sim(), sp.stream, host_buf, off, pack_buf, off, len);
                        d2h_evs.push(m.record_event(ctx.sim(), sp.stream));
                    }
                    let round = ctx.start(chan);
                    machines.push(Machine::PartitionedSend {
                        plan: si,
                        d2h_evs,
                        next_ready: 0,
                        round: round.all,
                    });
                }
            }
        }
        // Consolidated sends: one combined pack kernel, one D2H, then the
        // state machine posts the single Isend when staging completes.
        for (i, gp) in self.grouped_send_plans.iter().enumerate() {
            let pack = make_group_pack_work(&gp.segments, gp.pack_buf.clone());
            m.launch_kernel(ctx.sim(), gp.stream, "pack-group", gp.bytes, Some(pack));
            m.memcpy_async(
                ctx.sim(),
                gp.stream,
                &gp.host_buf,
                0,
                &gp.pack_buf,
                0,
                gp.bytes,
            );
            let staged_ev = m.record_event(ctx.sim(), gp.stream);
            machines.push(Machine::GroupedSend {
                plan: i,
                staged_ev,
                req: None,
            });
        }
        ExchangeHandle {
            machines,
            pending,
            started,
        }
    }

    fn poll_machine(
        &self,
        ctx: &RankCtx,
        mach: &mut Machine,
        started: detsim::SimTime,
        timing: &mut ExchangeTiming,
    ) -> Poll {
        let m = ctx.machine().clone();
        let since_start = |ctx: &RankCtx| ctx.sim().now().since(started);
        match mach {
            Machine::StagedSend {
                plan,
                staged_ev,
                req,
            } => {
                let sp = &self.send_plans[*plan];
                if req.is_none() {
                    if !staged_ev.is_done() {
                        return Poll::Blocked(staged_ev.clone());
                    }
                    timing.phase("pack", since_start(ctx));
                    *req = Some(ctx.isend(
                        sp.host_buf.as_ref().unwrap(),
                        0,
                        sp.bytes,
                        sp.dst_rank,
                        sp.tag,
                    ));
                }
                let r = req.as_ref().unwrap();
                if r.is_done() {
                    timing.phase("send", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(r.completion().clone())
                }
            }
            Machine::StagedRecv {
                plan,
                req,
                unpack_ev,
            } => {
                let rp = &self.recv_plans[*plan];
                if unpack_ev.is_none() {
                    if !req.is_done() {
                        return Poll::Blocked(req.completion().clone());
                    }
                    timing.phase("wait", since_start(ctx));
                    let dev = rp.recv_dev_buf.as_ref().unwrap();
                    m.memcpy_async(
                        ctx.sim(),
                        rp.stream,
                        dev,
                        0,
                        rp.host_buf.as_ref().unwrap(),
                        0,
                        rp.bytes,
                    );
                    let unpack = make_unpack_work(
                        rp.arrays.clone(),
                        rp.dims,
                        rp.elem,
                        rp.dst_region,
                        dev.clone(),
                    );
                    *unpack_ev = Some(m.launch_kernel(
                        ctx.sim(),
                        rp.stream,
                        "unpack",
                        rp.bytes,
                        Some(unpack),
                    ));
                }
                let ev = unpack_ev.as_ref().unwrap();
                if ev.is_done() {
                    timing.phase("unpack", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(ev.clone())
                }
            }
            Machine::PersistentSend {
                plan,
                staged_ev,
                round,
            } => {
                let sp = &self.send_plans[*plan];
                if round.is_none() {
                    if !staged_ev.is_done() {
                        return Poll::Blocked(staged_ev.clone());
                    }
                    timing.phase("pack", since_start(ctx));
                    *round = Some(ctx.start(sp.chan.as_ref().unwrap()).all);
                }
                let r = round.as_ref().unwrap();
                if r.is_done() {
                    timing.phase("send", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(r.completion().clone())
                }
            }
            Machine::PersistentRecv {
                plan,
                round,
                unpack_ev,
            } => {
                let rp = &self.recv_plans[*plan];
                if unpack_ev.is_none() {
                    if !round.is_done() {
                        return Poll::Blocked(round.completion().clone());
                    }
                    timing.phase("wait", since_start(ctx));
                    let dev = rp.recv_dev_buf.as_ref().unwrap();
                    m.memcpy_async(
                        ctx.sim(),
                        rp.stream,
                        dev,
                        0,
                        rp.host_buf.as_ref().unwrap(),
                        0,
                        rp.bytes,
                    );
                    let unpack = make_unpack_work(
                        rp.arrays.clone(),
                        rp.dims,
                        rp.elem,
                        rp.dst_region,
                        dev.clone(),
                    );
                    *unpack_ev = Some(m.launch_kernel(
                        ctx.sim(),
                        rp.stream,
                        "unpack",
                        rp.bytes,
                        Some(unpack),
                    ));
                }
                let ev = unpack_ev.as_ref().unwrap();
                if ev.is_done() {
                    timing.phase("unpack", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(ev.clone())
                }
            }
            Machine::PartitionedSend {
                plan,
                d2h_evs,
                next_ready,
                round,
            } => {
                let sp = &self.send_plans[*plan];
                while *next_ready < d2h_evs.len() {
                    if !d2h_evs[*next_ready].is_done() {
                        return Poll::Blocked(d2h_evs[*next_ready].clone());
                    }
                    ctx.pready(sp.chan.as_ref().unwrap(), *next_ready);
                    *next_ready += 1;
                    if *next_ready == d2h_evs.len() {
                        timing.phase("pack", since_start(ctx));
                    }
                }
                if round.is_done() {
                    timing.phase("send", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(round.completion().clone())
                }
            }
            Machine::PartitionedRecv {
                plan,
                round,
                next_arrived,
                unpack_ev,
            } => {
                let rp = &self.recv_plans[*plan];
                if unpack_ev.is_none() {
                    let parts = round.parts.len();
                    while *next_arrived < parts {
                        if !round.parts[*next_arrived].is_done() {
                            return Poll::Blocked(round.parts[*next_arrived].clone());
                        }
                        // H2D just this partition's bytes as soon as they land.
                        let (off, len) = partition_range(rp.bytes, parts, *next_arrived);
                        m.memcpy_async(
                            ctx.sim(),
                            rp.stream,
                            rp.recv_dev_buf.as_ref().unwrap(),
                            off,
                            rp.host_buf.as_ref().unwrap(),
                            off,
                            len,
                        );
                        *next_arrived += 1;
                    }
                    timing.phase("wait", since_start(ctx));
                    let dev = rp.recv_dev_buf.as_ref().unwrap();
                    let unpack = make_unpack_work(
                        rp.arrays.clone(),
                        rp.dims,
                        rp.elem,
                        rp.dst_region,
                        dev.clone(),
                    );
                    *unpack_ev = Some(m.launch_kernel(
                        ctx.sim(),
                        rp.stream,
                        "unpack",
                        rp.bytes,
                        Some(unpack),
                    ));
                }
                let ev = unpack_ev.as_ref().unwrap();
                if ev.is_done() {
                    timing.phase("unpack", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(ev.clone())
                }
            }
            Machine::CaSend { plan, pack_ev, req } => {
                let sp = &self.send_plans[*plan];
                if req.is_none() {
                    if !pack_ev.is_done() {
                        return Poll::Blocked(pack_ev.clone());
                    }
                    timing.phase("pack", since_start(ctx));
                    *req = Some(ctx.isend(
                        sp.pack_buf.as_ref().unwrap(),
                        0,
                        sp.bytes,
                        sp.dst_rank,
                        sp.tag,
                    ));
                }
                let r = req.as_ref().unwrap();
                if r.is_done() {
                    timing.phase("send", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(r.completion().clone())
                }
            }
            Machine::CaRecv {
                plan,
                req,
                unpack_ev,
            } => {
                let rp = &self.recv_plans[*plan];
                if unpack_ev.is_none() {
                    if !req.is_done() {
                        return Poll::Blocked(req.completion().clone());
                    }
                    timing.phase("wait", since_start(ctx));
                    let dev = rp.recv_dev_buf.as_ref().unwrap();
                    let unpack = make_unpack_work(
                        rp.arrays.clone(),
                        rp.dims,
                        rp.elem,
                        rp.dst_region,
                        dev.clone(),
                    );
                    *unpack_ev = Some(m.launch_kernel(
                        ctx.sim(),
                        rp.stream,
                        "unpack",
                        rp.bytes,
                        Some(unpack),
                    ));
                }
                let ev = unpack_ev.as_ref().unwrap();
                if ev.is_done() {
                    timing.phase("unpack", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(ev.clone())
                }
            }
            Machine::GroupedSend {
                plan,
                staged_ev,
                req,
            } => {
                let gp = &self.grouped_send_plans[*plan];
                if req.is_none() {
                    if !staged_ev.is_done() {
                        return Poll::Blocked(staged_ev.clone());
                    }
                    timing.phase("pack", since_start(ctx));
                    *req = Some(ctx.isend(&gp.host_buf, 0, gp.bytes, gp.dst_rank, gp.tag));
                }
                let r = req.as_ref().unwrap();
                if r.is_done() {
                    timing.phase("send", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(r.completion().clone())
                }
            }
            Machine::GroupedRecv {
                plan,
                req,
                unpack_all,
            } => {
                let gp = &self.grouped_recv_plans[*plan];
                if unpack_all.is_none() {
                    if !req.is_done() {
                        return Poll::Blocked(req.completion().clone());
                    }
                    timing.phase("wait", since_start(ctx));
                    // Fan the combined buffer out: per segment, H2D to its
                    // device then unpack on its stream. Segments on
                    // different devices proceed in parallel.
                    let mut evs = Vec::with_capacity(gp.segments.len());
                    for seg in &gp.segments {
                        let stream = seg.stream.expect("recv segment stream");
                        let dev = seg.dev_buf.as_ref().expect("recv segment buffer");
                        m.memcpy_async(
                            ctx.sim(),
                            stream,
                            dev,
                            0,
                            &gp.host_buf,
                            seg.offset,
                            seg.bytes,
                        );
                        let unpack = make_unpack_work(
                            seg.arrays.clone(),
                            seg.dims,
                            seg.elem,
                            seg.region,
                            dev.clone(),
                        );
                        evs.push(m.launch_kernel(
                            ctx.sim(),
                            stream,
                            "unpack",
                            seg.bytes,
                            Some(unpack),
                        ));
                    }
                    *unpack_all = Some(ctx.sim().with_kernel(|k| k.completion_all(&evs)));
                }
                let ev = unpack_all.as_ref().unwrap();
                if ev.is_done() {
                    timing.phase("unpack", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(ev.clone())
                }
            }
            Machine::ColoRecv {
                plan,
                arrival,
                unpack_ev,
            } => {
                let rp = &self.recv_plans[*plan];
                if unpack_ev.is_none() {
                    // Reuse a cached arrival waiter across polls so that at
                    // most one waiter per machine is ever outstanding.
                    if let Some(a) = arrival.as_ref() {
                        if !a.is_done() {
                            return Poll::Blocked(a.clone());
                        }
                        *arrival = None;
                    }
                    let mailbox = rp.mailbox.as_ref().unwrap();
                    let copied = match ctx.sim().with_kernel(|k| mailbox.try_take(k)) {
                        Ok(c) => c,
                        Err(waiter) => {
                            *arrival = Some(waiter.clone());
                            return Poll::Blocked(waiter);
                        }
                    };
                    timing.phase("wait", since_start(ctx));
                    m.stream_wait_event(ctx.sim(), rp.stream, &copied);
                    let dev = rp.recv_dev_buf.as_ref().unwrap();
                    let unpack = make_unpack_work(
                        rp.arrays.clone(),
                        rp.dims,
                        rp.elem,
                        rp.dst_region,
                        dev.clone(),
                    );
                    *unpack_ev = Some(m.launch_kernel(
                        ctx.sim(),
                        rp.stream,
                        "unpack",
                        rp.bytes,
                        Some(unpack),
                    ));
                }
                let ev = unpack_ev.as_ref().unwrap();
                if ev.is_done() {
                    timing.phase("unpack", since_start(ctx));
                    Poll::Done
                } else {
                    Poll::Blocked(ev.clone())
                }
            }
        }
    }

    /// Drive an in-flight exchange to completion: poll every state machine,
    /// blocking on whichever completions are outstanding, until all
    /// transfers (sends *and* receives, including unpacks) have finished.
    /// Returns the observed timing breakdown.
    pub fn exchange_finish(&self, ctx: &RankCtx, mut handle: ExchangeHandle) -> ExchangeTiming {
        let mut live: Vec<Machine> = std::mem::take(&mut handle.machines);
        let mut done = vec![false; live.len()];
        let mut timing = ExchangeTiming::default();
        let stamp = |timing: &mut ExchangeTiming, m: Method, now: detsim::SimTime| {
            let d = now.since(handle.started);
            let e = timing.per_method.entry(m).or_default();
            if d > *e {
                *e = d;
            }
            if d > timing.total {
                timing.total = d;
            }
        };
        loop {
            let mut blockers: Vec<Completion> = Vec::new();
            for (i, mach) in live.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                match self.poll_machine(ctx, mach, handle.started, &mut timing) {
                    Poll::Done => {
                        done[i] = true;
                        stamp(&mut timing, mach.method(), ctx.sim().now());
                    }
                    Poll::Blocked(c) => blockers.push(c),
                }
            }
            let now = ctx.sim().now();
            handle.pending.retain(|(m, c)| {
                if c.is_done() {
                    stamp(&mut timing, *m, now);
                    false
                } else {
                    true
                }
            });
            blockers.extend(handle.pending.iter().map(|(_, c)| c.clone()));
            if blockers.is_empty() {
                break;
            }
            ctx.wait_any_completion(&blockers);
        }
        self.record_exchange_metrics(ctx, &timing);
        timing
    }

    /// Fold one finished exchange into the metrics registry: critical-path
    /// histograms per method and per phase, plus per-method byte counters
    /// from the plans. No-op unless metrics are enabled on the kernel.
    fn record_exchange_metrics(&self, ctx: &RankCtx, timing: &ExchangeTiming) {
        ctx.sim().with_kernel(|k| {
            if !k.metrics.is_enabled() {
                return;
            }
            k.metrics.counter_add("exchange", "exchanges", &[], 1);
            k.metrics
                .observe("exchange", "total_ps", &[], timing.total.picos() as f64);
            for (method, d) in &timing.per_method {
                let name = method.to_string();
                k.metrics.observe(
                    "exchange",
                    "method_ps",
                    &[("method", &name)],
                    d.picos() as f64,
                );
            }
            for (phase, d) in &timing.per_phase {
                k.metrics.observe(
                    "exchange",
                    "phase_ps",
                    &[("phase", phase)],
                    d.picos() as f64,
                );
            }
            for sp in &self.send_plans {
                let name = sp.method.to_string();
                k.metrics
                    .counter_add("exchange", "method_bytes", &[("method", &name)], sp.bytes);
            }
            for gp in &self.grouped_send_plans {
                k.metrics.counter_add(
                    "exchange",
                    "method_bytes",
                    &[("method", "staged")],
                    gp.bytes,
                );
            }
        });
    }

    /// One complete halo exchange: issue, overlap, and drain.
    pub fn exchange(&self, ctx: &RankCtx) {
        let h = self.exchange_start(ctx);
        self.exchange_finish(ctx, h);
    }

    /// One complete halo exchange, returning the per-method timing
    /// breakdown.
    pub fn exchange_timed(&self, ctx: &RankCtx) -> ExchangeTiming {
        let h = self.exchange_start(ctx);
        self.exchange_finish(ctx, h)
    }
}
