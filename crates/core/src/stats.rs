//! Exchange-plan statistics: which methods were selected and how many bytes
//! each carries per exchange.

use std::collections::BTreeMap;
use std::fmt;

use crate::method::Method;

/// Summary of a domain's specialized communication plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Per method: `(transfer count, bytes per exchange)` for transfers this
    /// rank *sends*.
    pub sends: BTreeMap<Method, (usize, u64)>,
}

impl PlanSummary {
    pub(crate) fn record(&mut self, m: Method, bytes: u64) {
        let e = self.sends.entry(m).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    /// Total transfers sent per exchange.
    pub fn total_sends(&self) -> usize {
        self.sends.values().map(|v| v.0).sum()
    }

    /// Total bytes sent per exchange.
    pub fn total_bytes(&self) -> u64 {
        self.sends.values().map(|v| v.1).sum()
    }

    /// Transfers using `m`.
    pub fn count(&self, m: Method) -> usize {
        self.sends.get(&m).map(|v| v.0).unwrap_or(0)
    }

    /// Bytes per exchange carried by `m`.
    pub fn bytes(&self, m: Method) -> u64 {
        self.sends.get(&m).map(|v| v.1).unwrap_or(0)
    }
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan[")?;
        let mut first = true;
        for (m, (n, b)) in &self.sends {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{m}: {n}x {:.2} MiB", *b as f64 / (1 << 20) as f64)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = PlanSummary::default();
        s.record(Method::Staged, 100);
        s.record(Method::Staged, 50);
        s.record(Method::Kernel, 10);
        assert_eq!(s.count(Method::Staged), 2);
        assert_eq!(s.bytes(Method::Staged), 150);
        assert_eq!(s.total_sends(), 3);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.count(Method::PeerMemcpy), 0);
    }

    #[test]
    fn display_lists_methods() {
        let mut s = PlanSummary::default();
        s.record(Method::PeerMemcpy, 1 << 20);
        let out = s.to_string();
        assert!(out.contains("peer"));
        assert!(out.contains("1.00 MiB"));
    }
}
