//! Property tests over the placement-solver ladder (`docs/PLACEMENT.md`):
//!
//! 1. every rung returns a valid permutation on any instance;
//! 2. ladder quality is monotone — hierarchical ≤ greedy-2-opt ≤ trivial
//!    cost — on deterministic LCG instances;
//! 3. the multilevel rung matches exhaustive *exactly* (same assignment,
//!    same cost bits) for every instance within the exhaustive range;
//! 4. the sparse path (flow graph + distance oracle) agrees with the
//!    dense path it mirrors.
//!
//! Instances are generated with the same fixed-seed LCG used throughout
//! the repo — no RNG state leaks between runs, so a failure is always
//! reproducible from the seed printed in the assert message.

use stencil_core::multilevel::{self, DenseDistance, FlowGraph};
use stencil_core::qap;
use stencil_core::PlacementStrategy;

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    }
}

/// A flow/distance pair shaped like real placement instances: sparse-ish
/// symmetric-support flow (each facility talks to a handful of others)
/// and strictly-positive off-diagonal distances.
fn instance(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut rnd = lcg(seed);
    let mut w = vec![vec![0.0; n]; n];
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            d[i][j] = 0.05 + rnd();
            // ~40% of pairs exchange nothing: placement instances are sparse.
            if rnd() > 0.4 {
                w[i][j] = (rnd() * 20.0).floor();
            }
        }
    }
    (w, d)
}

fn assert_perm(f: &[usize], n: usize, what: &str) {
    let mut s = f.to_vec();
    s.sort_unstable();
    assert_eq!(s, (0..n).collect::<Vec<_>>(), "{what}: not a permutation");
}

#[test]
fn every_rung_returns_a_valid_permutation() {
    for n in [1usize, 2, 5, 8, 9, 12, 16, 23, 31] {
        for seed in 0..4u64 {
            let (w, d) = instance(n, seed * 1001 + n as u64);
            for strategy in [
                PlacementStrategy::NodeAware,
                PlacementStrategy::Trivial,
                PlacementStrategy::Empirical,
                PlacementStrategy::GreedySwap,
                PlacementStrategy::Hierarchical,
            ] {
                let (f, c) = strategy.solve(&w, &d);
                assert_perm(&f, n, &format!("{strategy:?} n={n} seed={seed}"));
                assert!(
                    c.is_finite(),
                    "{strategy:?} n={n} seed={seed}: cost {c} not finite"
                );
            }
        }
    }
}

#[test]
fn ladder_quality_is_monotone() {
    // hierarchical ≤ greedy ≤ trivial, across sizes spanning both the
    // all-pairs refinement regime and the exhaustive base case.
    for n in [2usize, 4, 6, 9, 11, 14, 20, 27, 40, 64] {
        for seed in 0..3u64 {
            let (w, d) = instance(n, seed * 7919 + n as u64 * 13);
            let (_, hier) = PlacementStrategy::Hierarchical.solve(&w, &d);
            let (_, greedy) = PlacementStrategy::GreedySwap.solve(&w, &d);
            let (_, trivial) = PlacementStrategy::Trivial.solve(&w, &d);
            assert!(
                hier <= greedy + 1e-9,
                "n={n} seed={seed}: hierarchical {hier} > greedy {greedy}"
            );
            assert!(
                greedy <= trivial + 1e-9,
                "n={n} seed={seed}: greedy {greedy} > trivial {trivial}"
            );
        }
    }
}

#[test]
fn multilevel_matches_exhaustive_exactly_within_range() {
    // Within the exhaustive range (n ≤ 8 is feasible to check up to 7
    // quickly; include the boundary n = 8 once) the hierarchical rung IS
    // the exhaustive solver: same assignment, same cost bits.
    for n in 2..=7usize {
        for seed in 0..5u64 {
            let (w, d) = instance(n, seed * 31 + n as u64 * 7);
            let (fe, ce) = qap::solve_exhaustive(&w, &d);
            let (fh, ch) = PlacementStrategy::Hierarchical.solve(&w, &d);
            assert_eq!(fe, fh, "n={n} seed={seed}");
            assert_eq!(ce.to_bits(), ch.to_bits(), "n={n} seed={seed}");
        }
    }
    let n = qap::EXHAUSTIVE_MAX_N;
    let (w, d) = instance(n, 99);
    let (fe, ce) = qap::solve_exhaustive(&w, &d);
    let (fh, ch) = PlacementStrategy::Hierarchical.solve(&w, &d);
    assert_eq!(fe, fh);
    assert_eq!(ce.to_bits(), ch.to_bits());
}

#[test]
fn node_aware_dispatch_agrees_with_the_pinned_rungs() {
    // NodeAware at n ≤ 8 is exactly exhaustive (the golden fig12b bit-pins
    // depend on this); beyond it is exactly the hierarchical rung.
    for seed in 0..3u64 {
        let (w, d) = instance(6, seed + 5);
        assert_eq!(
            PlacementStrategy::NodeAware.solve(&w, &d),
            qap::solve_exhaustive(&w, &d),
            "seed={seed}"
        );
        let (w, d) = instance(24, seed + 5);
        assert_eq!(
            PlacementStrategy::NodeAware.solve(&w, &d),
            PlacementStrategy::Hierarchical.solve(&w, &d),
            "seed={seed}"
        );
    }
}

#[test]
fn sparse_solver_agrees_with_dense_on_permutation_validity_and_cost() {
    for n in [10usize, 17, 26, 48] {
        let (w, d) = instance(n, n as u64 * 271 + 3);
        let g = FlowGraph::from_dense(&w);
        let oracle = DenseDistance(&d);
        let f = multilevel::solve_sparse(&g, &oracle);
        assert_perm(&f, n, &format!("sparse n={n}"));
        // The sparse cost accounting agrees with the dense formula.
        let sparse_cost = g.cost(&oracle, &f);
        let dense_cost = qap::cost(&w, &d, &f);
        assert!(
            (sparse_cost - dense_cost).abs() < 1e-6 * (1.0 + dense_cost.abs()),
            "n={n}: {sparse_cost} vs {dense_cost}"
        );
    }
}

#[test]
fn heuristic_rungs_stay_deterministic_across_calls() {
    for strategy in [
        PlacementStrategy::GreedySwap,
        PlacementStrategy::Hierarchical,
        PlacementStrategy::NodeAware,
    ] {
        let (w, d) = instance(33, 777);
        let (fa, ca) = strategy.solve(&w, &d);
        let (fb, cb) = strategy.solve(&w, &d);
        assert_eq!(fa, fb, "{strategy:?}");
        assert_eq!(ca.to_bits(), cb.to_bits(), "{strategy:?}");
    }
}
