//! Randomized end-to-end exchange correctness: proptest drives domain
//! shapes, radii, rank layouts, method sets, and boundary conditions
//! through the full simulated stack, checking every halo cell.

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use stencil_core::dim3::Boundary;
use stencil_core::{Dim3, DomainBuilder, Methods};
use topo::summit::summit_cluster;

fn cell_value(domain: Dim3, p: Dim3) -> f32 {
    (((p[2] % domain[2]) * domain[1] + (p[1] % domain[1])) * domain[0] + (p[0] % domain[0])) as f32
}

fn run_case(
    domain: Dim3,
    radius: u64,
    nodes: usize,
    rpn: usize,
    methods: Methods,
    boundary: Boundary,
    consolidate: bool,
) -> Result<(), String> {
    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let f2 = Arc::clone(&failure);
    run_world(WorldConfig::new(summit_cluster(nodes), rpn), move |ctx| {
        let dom = DomainBuilder::new(domain)
            .radius(radius)
            .methods(methods)
            .boundary(boundary)
            .consolidate(consolidate)
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, |p| cell_value(domain, p));
        }
        ctx.barrier();
        dom.exchange(ctx);
        ctx.barrier();
        let r = radius as i64;
        for local in dom.locals() {
            let o = local.interior.origin;
            let e = local.interior.extent;
            for z in -r..=(e[2] as i64 + r - 1) {
                for y in -r..=(e[1] as i64 + r - 1) {
                    for x in -r..=(e[0] as i64 + r - 1) {
                        let interior = x >= 0
                            && y >= 0
                            && z >= 0
                            && (x as u64) < e[0]
                            && (y as u64) < e[1]
                            && (z as u64) < e[2];
                        let gx = o[0] as i64 + x;
                        let gy = o[1] as i64 + y;
                        let gz = o[2] as i64 + z;
                        let inside = gx >= 0
                            && gy >= 0
                            && gz >= 0
                            && (gx as u64) < domain[0]
                            && (gy as u64) < domain[1]
                            && (gz as u64) < domain[2];
                        let want = if interior || boundary == Boundary::Periodic || inside {
                            let w = [
                                gx.rem_euclid(domain[0] as i64) as u64,
                                gy.rem_euclid(domain[1] as i64) as u64,
                                gz.rem_euclid(domain[2] as i64) as u64,
                            ];
                            cell_value(domain, w)
                        } else {
                            0.0 // open-boundary outward halo: untouched zeros
                        };
                        let got = local.get_local_f32(0, [x, y, z]);
                        if got != want && f2.lock().is_none() {
                            *f2.lock() = Some(format!(
                                "rank {} cell [{x},{y},{z}] (global [{gx},{gy},{gz}]): \
                                 got {got}, want {want}",
                                ctx.rank()
                            ));
                        }
                    }
                }
            }
        }
    });
    let f = failure.lock().clone();
    match f {
        None => Ok(()),
        Some(msg) => Err(msg),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_random_exchange_configs_are_exact(
        dx in 12u64..30, dy in 12u64..30, dz in 12u64..30,
        radius in 1u64..3,
        layout in prop::sample::select(vec![(1usize, 1usize), (1, 2), (1, 6), (2, 3), (2, 6)]),
        mset in prop::sample::select(vec![0u8, 1, 2, 3]),
        boundary in prop::sample::select(vec![Boundary::Periodic, Boundary::Open]),
        consolidate in any::<bool>(),
    ) {
        let methods = match mset {
            0 => Methods::staged_only(),
            1 => Methods::staged_only().with_colocated(),
            2 => Methods::staged_only().with_colocated().with_peer(),
            _ => Methods::all(),
        };
        let (nodes, rpn) = layout;
        let domain = [dx, dy, dz];
        prop_assert!(
            run_case(domain, radius, nodes, rpn, methods, boundary, consolidate).is_ok(),
            "config failed: domain {domain:?} r={radius} {nodes}n/{rpn}r mset={mset} {boundary:?} consolidate={consolidate}: {:?}",
            run_case(domain, radius, nodes, rpn, methods, boundary, consolidate).err()
        );
    }

    /// Exchange must never write outside the halo shell: cells beyond the
    /// first halo ring of a wider allocation stay untouched. (Radius defines
    /// the full shell; we allocate with radius 3 but exchange a domain of
    /// radius 3 — every shell cell is owned, so instead check determinism of
    /// the full picture across two exchanges.)
    #[test]
    fn prop_second_exchange_is_idempotent(
        dx in 12u64..24, dy in 12u64..24, dz in 12u64..24,
        radius in 1u64..3,
    ) {
        let domain = [dx, dy, dz];
        let diffs: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let d2 = Arc::clone(&diffs);
        run_world(WorldConfig::new(summit_cluster(1), 6), move |ctx| {
            let dom = DomainBuilder::new(domain).radius(radius).build(ctx);
            for local in dom.locals() {
                local.fill(0, |p| cell_value(domain, p));
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            // snapshot halo, exchange again, compare
            let r = radius as i64;
            let snap: Vec<Vec<f32>> = dom
                .locals()
                .iter()
                .map(|l| {
                    let e = l.interior.extent;
                    let mut v = Vec::new();
                    for z in -r..=(e[2] as i64 + r - 1) {
                        for y in -r..=(e[1] as i64 + r - 1) {
                            v.push(l.get_local_f32(0, [-1, y, z]));
                            let _ = (y, z);
                        }
                    }
                    v
                })
                .collect();
            dom.exchange(ctx);
            ctx.barrier();
            for (li, l) in dom.locals().iter().enumerate() {
                let e = l.interior.extent;
                let mut i = 0;
                for z in -r..=(e[2] as i64 + r - 1) {
                    for y in -r..=(e[1] as i64 + r - 1) {
                        if l.get_local_f32(0, [-1, y, z]) != snap[li][i] {
                            *d2.lock() += 1;
                        }
                        i += 1;
                        let _ = z;
                    }
                }
            }
        });
        prop_assert_eq!(*diffs.lock(), 0);
    }
}
