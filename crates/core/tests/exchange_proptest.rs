//! Randomized end-to-end exchange correctness: a deterministic case table
//! drives domain shapes, radii, rank layouts, method sets, and boundary
//! conditions through the full simulated stack, checking every halo cell.

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::dim3::Boundary;
use stencil_core::{Dim3, DomainBuilder, Methods};
use topo::summit::summit_cluster;

fn cell_value(domain: Dim3, p: Dim3) -> f32 {
    (((p[2] % domain[2]) * domain[1] + (p[1] % domain[1])) * domain[0] + (p[0] % domain[0])) as f32
}

fn run_case(
    domain: Dim3,
    radius: u64,
    nodes: usize,
    rpn: usize,
    methods: Methods,
    boundary: Boundary,
    consolidate: bool,
) -> Result<(), String> {
    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let f2 = Arc::clone(&failure);
    run_world(WorldConfig::new(summit_cluster(nodes), rpn), move |ctx| {
        let dom = DomainBuilder::new(domain)
            .radius(radius)
            .methods(methods)
            .boundary(boundary)
            .consolidate(consolidate)
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, |p| cell_value(domain, p));
        }
        ctx.barrier();
        dom.exchange(ctx);
        ctx.barrier();
        let r = radius as i64;
        for local in dom.locals() {
            let o = local.interior.origin;
            let e = local.interior.extent;
            for z in -r..=(e[2] as i64 + r - 1) {
                for y in -r..=(e[1] as i64 + r - 1) {
                    for x in -r..=(e[0] as i64 + r - 1) {
                        let interior = x >= 0
                            && y >= 0
                            && z >= 0
                            && (x as u64) < e[0]
                            && (y as u64) < e[1]
                            && (z as u64) < e[2];
                        let gx = o[0] as i64 + x;
                        let gy = o[1] as i64 + y;
                        let gz = o[2] as i64 + z;
                        let inside = gx >= 0
                            && gy >= 0
                            && gz >= 0
                            && (gx as u64) < domain[0]
                            && (gy as u64) < domain[1]
                            && (gz as u64) < domain[2];
                        let want = if interior || boundary == Boundary::Periodic || inside {
                            let w = [
                                gx.rem_euclid(domain[0] as i64) as u64,
                                gy.rem_euclid(domain[1] as i64) as u64,
                                gz.rem_euclid(domain[2] as i64) as u64,
                            ];
                            cell_value(domain, w)
                        } else {
                            0.0 // open-boundary outward halo: untouched zeros
                        };
                        let got = local.get_local_f32(0, [x, y, z]);
                        if got != want && f2.lock().is_none() {
                            *f2.lock() = Some(format!(
                                "rank {} cell [{x},{y},{z}] (global [{gx},{gy},{gz}]): \
                                 got {got}, want {want}",
                                ctx.rank()
                            ));
                        }
                    }
                }
            }
        }
    });
    let f = failure.lock().clone();
    match f {
        None => Ok(()),
        Some(msg) => Err(msg),
    }
}

/// A fixed table of twelve configurations spanning the cross product of
/// method tiers, layouts, boundaries, and consolidation — the same coverage
/// the old randomized driver sampled, now reproducible byte-for-byte.
/// One table row: (dx, dy, dz, radius, (nodes, ranks-per-node), method
/// tier, boundary, consolidate).
type Case = (u64, u64, u64, u64, (usize, usize), u8, Boundary, bool);

#[test]
fn prop_random_exchange_configs_are_exact() {
    #[rustfmt::skip]
    let cases: [Case; 12] = [
        (12, 13, 14, 1, (1, 1), 0, Boundary::Periodic, false),
        (15, 12, 20, 2, (1, 2), 1, Boundary::Open,     true),
        (18, 18, 18, 1, (1, 6), 2, Boundary::Periodic, true),
        (29, 16, 12, 2, (1, 6), 3, Boundary::Open,     false),
        (12, 29, 13, 1, (2, 3), 3, Boundary::Periodic, true),
        (21, 14, 17, 2, (2, 3), 2, Boundary::Open,     false),
        (16, 16, 25, 1, (2, 6), 1, Boundary::Periodic, false),
        (13, 22, 19, 2, (2, 6), 0, Boundary::Open,     true),
        (24, 12, 24, 1, (1, 2), 3, Boundary::Open,     false),
        (14, 27, 15, 2, (1, 1), 2, Boundary::Periodic, true),
        (26, 20, 12, 1, (2, 6), 3, Boundary::Periodic, true),
        (17, 17, 28, 2, (1, 6), 0, Boundary::Periodic, false),
    ];
    for (dx, dy, dz, radius, (nodes, rpn), mset, boundary, consolidate) in cases {
        let methods = match mset {
            0 => Methods::staged_only(),
            1 => Methods::staged_only().with_colocated(),
            2 => Methods::staged_only().with_colocated().with_peer(),
            _ => Methods::all(),
        };
        let domain = [dx, dy, dz];
        eprintln!(
            "case: domain {domain:?} r={radius} {nodes}n/{rpn}r mset={mset} \
             {boundary:?} consolidate={consolidate}"
        );
        let result = run_case(domain, radius, nodes, rpn, methods, boundary, consolidate);
        assert!(
            result.is_ok(),
            "config failed: domain {domain:?} r={radius} {nodes}n/{rpn}r mset={mset} \
             {boundary:?} consolidate={consolidate}: {:?}",
            result.err()
        );
    }
}

/// Exchange must never write outside the halo shell: cells beyond the
/// first halo ring of a wider allocation stay untouched. (Radius defines
/// the full shell; we allocate with radius 3 but exchange a domain of
/// radius 3 — every shell cell is owned, so instead check determinism of
/// the full picture across two exchanges.)
#[test]
fn prop_second_exchange_is_idempotent() {
    for (dx, dy, dz, radius) in [
        (12u64, 13u64, 14u64, 1u64),
        (20, 15, 23, 2),
        (16, 16, 16, 1),
    ] {
        let domain = [dx, dy, dz];
        let diffs: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let d2 = Arc::clone(&diffs);
        run_world(WorldConfig::new(summit_cluster(1), 6), move |ctx| {
            let dom = DomainBuilder::new(domain).radius(radius).build(ctx);
            for local in dom.locals() {
                local.fill(0, |p| cell_value(domain, p));
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            // snapshot halo, exchange again, compare
            let r = radius as i64;
            let snap: Vec<Vec<f32>> = dom
                .locals()
                .iter()
                .map(|l| {
                    let e = l.interior.extent;
                    let mut v = Vec::new();
                    for z in -r..=(e[2] as i64 + r - 1) {
                        for y in -r..=(e[1] as i64 + r - 1) {
                            v.push(l.get_local_f32(0, [-1, y, z]));
                            let _ = (y, z);
                        }
                    }
                    v
                })
                .collect();
            dom.exchange(ctx);
            ctx.barrier();
            for (li, l) in dom.locals().iter().enumerate() {
                let e = l.interior.extent;
                let mut i = 0;
                for z in -r..=(e[2] as i64 + r - 1) {
                    for y in -r..=(e[1] as i64 + r - 1) {
                        if l.get_local_f32(0, [-1, y, z]) != snap[li][i] {
                            *d2.lock() += 1;
                        }
                        i += 1;
                        let _ = z;
                    }
                }
            }
        });
        assert_eq!(*diffs.lock(), 0, "domain {domain:?} r={radius}");
    }
}
