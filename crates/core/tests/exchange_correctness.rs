//! End-to-end halo-exchange correctness: every enabled-method combination,
//! rank layout, radius, and neighborhood must deliver exactly the right
//! bytes to exactly the right halo cells (with periodic wrap).

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{Dim3, DomainBuilder, Methods, Neighborhood, PlacementStrategy, Radius};
use topo::summit::summit_cluster;

/// Unique, wrap-aware cell value.
fn cell_value(domain: Dim3, q: usize, p: Dim3) -> f32 {
    let id = ((p[2] % domain[2]) * domain[1] + (p[1] % domain[1])) * domain[0] + (p[0] % domain[0]);
    (id as f32) + (q as f32) * 0.125
}

struct Case {
    nodes: usize,
    rpn: usize,
    domain: Dim3,
    radius: Radius,
    quantities: usize,
    methods: Methods,
    neighborhood: Neighborhood,
    cuda_aware: bool,
    placement: PlacementStrategy,
}

impl Default for Case {
    fn default() -> Self {
        Case {
            nodes: 1,
            rpn: 1,
            domain: [24, 18, 12],
            radius: Radius::constant(1),
            quantities: 2,
            methods: Methods::all(),
            neighborhood: Neighborhood::Full26,
            cuda_aware: false,
            placement: PlacementStrategy::NodeAware,
        }
    }
}

fn check_exchange(case: Case) {
    let Case {
        nodes,
        rpn,
        domain,
        radius,
        quantities,
        methods,
        neighborhood,
        cuda_aware,
        placement,
    } = case;
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let f2 = Arc::clone(&failures);
    let cfg = WorldConfig::new(summit_cluster(nodes), rpn)
        .cuda_aware(cuda_aware)
        .mpi_persistent(methods.contains(stencil_core::Method::PersistentStaged))
        .mpi_partitioned(methods.contains(stencil_core::Method::PartitionedStaged));
    run_world(cfg, move |ctx| {
        let dom = DomainBuilder::new(domain)
            .radius_faces(radius)
            .quantities(quantities)
            .methods(methods)
            .neighborhood(neighborhood)
            .placement(placement)
            .build(ctx);
        for local in dom.locals() {
            for q in 0..quantities {
                local.fill(q, |p| cell_value(domain, q, p));
            }
        }
        ctx.barrier();
        dom.exchange(ctx);
        ctx.barrier();

        // Verify: for every receive direction, the halo slab holds the
        // periodic-wrapped neighbor data.
        for local in dom.locals() {
            let o = local.interior.origin;
            let e = local.interior.extent;
            let neg = radius.neg();
            let pos = radius.pos();
            for d in neighborhood.directions() {
                // receiving data sent toward d: halo on the -d side
                let mut lo = [0i64; 3];
                let mut hi = [0i64; 3];
                for a in 0..3 {
                    match d.0[a] {
                        0 => {
                            lo[a] = 0;
                            hi[a] = e[a] as i64;
                        }
                        1 => {
                            lo[a] = -(neg[a] as i64);
                            hi[a] = 0;
                        }
                        -1 => {
                            lo[a] = e[a] as i64;
                            hi[a] = e[a] as i64 + pos[a] as i64;
                        }
                        _ => unreachable!(),
                    }
                }
                for q in 0..quantities {
                    for z in lo[2]..hi[2] {
                        for y in lo[1]..hi[1] {
                            for x in lo[0]..hi[0] {
                                let got = local.get_local_f32(q, [x, y, z]);
                                let gp = [
                                    (o[0] as i64 + x).rem_euclid(domain[0] as i64) as u64,
                                    (o[1] as i64 + y).rem_euclid(domain[1] as i64) as u64,
                                    (o[2] as i64 + z).rem_euclid(domain[2] as i64) as u64,
                                ];
                                let want = cell_value(domain, q, gp);
                                if got != want {
                                    f2.lock().push(format!(
                                        "rank {} local {:?} dir {:?} q{q} cell [{x},{y},{z}] \
                                         (global {gp:?}): got {got}, want {want}",
                                        ctx.rank(),
                                        local.gpu_idx,
                                        d
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            // Interior must be untouched.
            for q in 0..quantities {
                for z in [0, e[2] as i64 - 1] {
                    for y in [0, e[1] as i64 - 1] {
                        for x in [0, e[0] as i64 - 1] {
                            let got = local.get_local_f32(q, [x, y, z]);
                            let want = cell_value(
                                domain,
                                q,
                                [o[0] + x as u64, o[1] + y as u64, o[2] + z as u64],
                            );
                            if got != want {
                                f2.lock().push(format!(
                                    "rank {} interior corrupted at [{x},{y},{z}] q{q}",
                                    ctx.rank()
                                ));
                            }
                        }
                    }
                }
            }
        }
    });
    let f = failures.lock();
    assert!(
        f.is_empty(),
        "{} halo mismatches; first few:\n{}",
        f.len(),
        f.iter().take(5).cloned().collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn single_rank_six_gpus_all_methods() {
    // 1 rank drives all 6 GPUs: kernel + peer paths.
    check_exchange(Case::default());
}

#[test]
fn six_ranks_colocated() {
    // 6 ranks, 1 GPU each: colocated path dominates on-node.
    check_exchange(Case {
        rpn: 6,
        ..Case::default()
    });
}

#[test]
fn two_ranks_mixed_peer_and_colocated() {
    check_exchange(Case {
        rpn: 2,
        ..Case::default()
    });
}

#[test]
fn staged_only_everywhere() {
    check_exchange(Case {
        rpn: 6,
        methods: Methods::staged_only(),
        ..Case::default()
    });
}

#[test]
fn staged_plus_colocated() {
    check_exchange(Case {
        rpn: 6,
        methods: Methods::staged_only().with_colocated(),
        ..Case::default()
    });
}

#[test]
fn multi_node_all_methods() {
    check_exchange(Case {
        nodes: 2,
        rpn: 6,
        domain: [24, 24, 24],
        ..Case::default()
    });
}

#[test]
fn multi_node_cuda_aware() {
    check_exchange(Case {
        nodes: 2,
        rpn: 3,
        domain: [24, 24, 24],
        methods: Methods::all_with_cuda_aware(),
        cuda_aware: true,
        ..Case::default()
    });
}

#[test]
fn cuda_aware_only_remote_method() {
    check_exchange(Case {
        nodes: 2,
        rpn: 6,
        domain: [24, 24, 24],
        methods: Methods::cuda_aware_only(),
        cuda_aware: true,
        ..Case::default()
    });
}

#[test]
fn radius_two() {
    check_exchange(Case {
        radius: Radius::constant(2),
        ..Case::default()
    });
}

#[test]
fn radius_three_multi_node() {
    check_exchange(Case {
        nodes: 2,
        rpn: 6,
        domain: [30, 24, 24],
        radius: Radius::constant(3),
        ..Case::default()
    });
}

#[test]
fn asymmetric_radius() {
    check_exchange(Case {
        radius: Radius::faces(1, 2, 0, 1, 2, 1),
        ..Case::default()
    });
}

#[test]
fn faces_only_neighborhood() {
    check_exchange(Case {
        neighborhood: Neighborhood::Faces6,
        ..Case::default()
    });
}

#[test]
fn faces_edges_neighborhood() {
    check_exchange(Case {
        rpn: 2,
        neighborhood: Neighborhood::FacesEdges18,
        ..Case::default()
    });
}

#[test]
fn flat_domain_forces_self_exchanges() {
    // decomposition is 1 wide in y and z: periodic self-exchange (Kernel).
    check_exchange(Case {
        domain: [60, 7, 5],
        ..Case::default()
    });
}

#[test]
fn flat_domain_self_exchange_without_kernel_method() {
    // same geometry, kernel disabled: self-exchanges via peer D2D copies.
    check_exchange(Case {
        domain: [60, 7, 5],
        methods: Methods::staged_only().with_peer(),
        ..Case::default()
    });
}

#[test]
fn flat_domain_self_exchange_staged_only() {
    // self-exchanges staged through the host and MPI-to-self.
    check_exchange(Case {
        domain: [60, 7, 5],
        methods: Methods::staged_only(),
        ..Case::default()
    });
}

#[test]
fn trivial_placement_is_also_correct() {
    check_exchange(Case {
        rpn: 2,
        placement: PlacementStrategy::Trivial,
        ..Case::default()
    });
}

#[test]
fn single_quantity() {
    check_exchange(Case {
        quantities: 1,
        ..Case::default()
    });
}

#[test]
fn four_quantities_multi_node() {
    check_exchange(Case {
        nodes: 2,
        rpn: 2,
        domain: [24, 24, 24],
        quantities: 4,
        ..Case::default()
    });
}

#[test]
fn three_nodes_odd_split() {
    check_exchange(Case {
        nodes: 3,
        rpn: 6,
        domain: [25, 23, 21], // non-divisible extents
        ..Case::default()
    });
}

#[test]
fn multi_node_persistent() {
    // Internode legs ride persistent channels (PersistentStaged outranks
    // Staged when the stack advertises the capability).
    check_exchange(Case {
        nodes: 2,
        rpn: 6,
        domain: [48, 24, 24],
        methods: Methods::all().with_persistent(),
        ..Case::default()
    });
}

#[test]
fn multi_node_partitioned() {
    // Big faces => multi-partition messages; data must still land exactly.
    check_exchange(Case {
        nodes: 2,
        rpn: 6,
        domain: [96, 96, 48],
        radius: Radius::constant(2),
        methods: Methods::all().with_partitioned(),
        ..Case::default()
    });
}

#[test]
fn persistent_only_everywhere() {
    // No node-local rungs enabled: every pair, including intra-node and
    // self-exchange, goes through persistent channels.
    check_exchange(Case {
        rpn: 6,
        methods: Methods::staged_only().with_persistent(),
        ..Case::default()
    });
}

#[test]
fn partitioned_only_everywhere() {
    check_exchange(Case {
        rpn: 6,
        methods: Methods::staged_only().with_partitioned(),
        ..Case::default()
    });
}

#[test]
fn persistent_channels_reused_across_iterations_stay_correct() {
    // The channel is matched once at setup; later exchanges reuse it. Each
    // iteration writes fresh interior values, so a stale round would show
    // up as last iteration's bytes in the halo.
    let failures: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let f2 = Arc::clone(&failures);
    let cfg = WorldConfig::new(summit_cluster(2), 6)
        .mpi_persistent(true)
        .mpi_partitioned(true);
    run_world(cfg, move |ctx| {
        let domain = [48, 24, 24];
        let dom = DomainBuilder::new(domain)
            .radius(1)
            .quantities(1)
            .methods(Methods::all().with_persistent().with_partitioned())
            .build(ctx);
        for iter in 0..3 {
            let bump = iter as f32 * 10_000.0;
            for local in dom.locals() {
                local.fill(0, |p| cell_value(domain, 0, p) + bump);
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            for local in dom.locals() {
                let o = local.interior.origin;
                let e = local.interior.extent;
                for z in 0..e[2] as i64 {
                    for y in 0..e[1] as i64 {
                        let got = local.get_local_f32(0, [-1, y, z]);
                        let gp = [
                            (o[0] as i64 - 1).rem_euclid(domain[0] as i64) as u64,
                            o[1] + y as u64,
                            o[2] + z as u64,
                        ];
                        if got != cell_value(domain, 0, gp) + bump {
                            *f2.lock() += 1;
                        }
                    }
                }
            }
        }
    });
    assert_eq!(*failures.lock(), 0);
}

#[test]
fn exchange_twice_still_correct() {
    // a second exchange must not corrupt anything (buffer reuse).
    let failures: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let f2 = Arc::clone(&failures);
    let cfg = WorldConfig::new(summit_cluster(1), 6);
    run_world(cfg, move |ctx| {
        let domain = [24, 18, 12];
        let dom = DomainBuilder::new(domain)
            .radius(1)
            .quantities(1)
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, |p| cell_value(domain, 0, p));
        }
        ctx.barrier();
        dom.exchange(ctx);
        dom.exchange(ctx);
        ctx.barrier();
        for local in dom.locals() {
            let o = local.interior.origin;
            let e = local.interior.extent;
            // spot-check the -x halo
            for z in 0..e[2] as i64 {
                for y in 0..e[1] as i64 {
                    let got = local.get_local_f32(0, [-1, y, z]);
                    let gp = [
                        (o[0] as i64 - 1).rem_euclid(domain[0] as i64) as u64,
                        o[1] + y as u64,
                        o[2] + z as u64,
                    ];
                    if got != cell_value(domain, 0, gp) {
                        *f2.lock() += 1;
                    }
                }
            }
        }
    });
    assert_eq!(*failures.lock(), 0);
}

#[test]
fn exchange_is_deterministic() {
    let run = || {
        let cfg = WorldConfig::new(summit_cluster(2), 6);
        run_world(cfg, move |ctx| {
            let dom = DomainBuilder::new([48, 48, 48])
                .radius(2)
                .quantities(2)
                .build(ctx);
            ctx.barrier();
            for _ in 0..3 {
                dom.exchange(ctx);
            }
        })
        .elapsed
    };
    assert_eq!(run(), run());
}

mod open_boundary {
    use super::*;
    use stencil_core::dim3::Boundary;

    /// With open boundaries, interior-facing halos are exchanged normally
    /// and outward-facing halos stay exactly as initialized.
    fn check_open(nodes: usize, rpn: usize, methods: Methods) {
        const SENTINEL: f32 = -999.5;
        let domain: Dim3 = [24, 18, 12];
        let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let f2 = Arc::clone(&failures);
        let cfg = WorldConfig::new(summit_cluster(nodes), rpn);
        run_world(cfg, move |ctx| {
            let dom = DomainBuilder::new(domain)
                .radius(1)
                .quantities(1)
                .methods(methods)
                .boundary(Boundary::Open)
                .build(ctx);
            for local in dom.locals() {
                local.fill(0, |p| cell_value(domain, 0, p));
                // paint every halo cell with the sentinel
                let e = local.interior.extent;
                for z in -1..=e[2] as i64 {
                    for y in -1..=e[1] as i64 {
                        for x in -1..=e[0] as i64 {
                            let interior = x >= 0
                                && y >= 0
                                && z >= 0
                                && (x as u64) < e[0]
                                && (y as u64) < e[1]
                                && (z as u64) < e[2];
                            if !interior {
                                local.set_local_f32(0, [x, y, z], SENTINEL);
                            }
                        }
                    }
                }
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            for local in dom.locals() {
                let o = local.interior.origin;
                let e = local.interior.extent;
                for z in -1..=e[2] as i64 {
                    for y in -1..=e[1] as i64 {
                        for x in -1..=e[0] as i64 {
                            let interior = x >= 0
                                && y >= 0
                                && z >= 0
                                && (x as u64) < e[0]
                                && (y as u64) < e[1]
                                && (z as u64) < e[2];
                            if interior {
                                continue;
                            }
                            let gx = o[0] as i64 + x;
                            let gy = o[1] as i64 + y;
                            let gz = o[2] as i64 + z;
                            let inside = gx >= 0
                                && gy >= 0
                                && gz >= 0
                                && (gx as u64) < domain[0]
                                && (gy as u64) < domain[1]
                                && (gz as u64) < domain[2];
                            let got = local.get_local_f32(0, [x, y, z]);
                            let want = if inside {
                                cell_value(domain, 0, [gx as u64, gy as u64, gz as u64])
                            } else {
                                SENTINEL // outward halo must be untouched
                            };
                            if got != want {
                                f2.lock().push(format!(
                                    "rank {} cell [{x},{y},{z}] global [{gx},{gy},{gz}]: \
                                     got {got}, want {want}",
                                    ctx.rank()
                                ));
                            }
                        }
                    }
                }
            }
        });
        let f = failures.lock();
        assert!(
            f.is_empty(),
            "{} open-boundary mismatches; first:\n{}",
            f.len(),
            f.first().cloned().unwrap_or_default()
        );
    }

    #[test]
    fn open_single_rank() {
        check_open(1, 1, Methods::all());
    }

    #[test]
    fn open_six_ranks() {
        check_open(1, 6, Methods::all());
    }

    #[test]
    fn open_staged_only() {
        check_open(1, 6, Methods::staged_only());
    }

    #[test]
    fn open_multi_node() {
        check_open(2, 3, Methods::all());
    }

    #[test]
    fn open_domain_has_fewer_transfers_than_periodic() {
        let count = |b: Boundary| {
            let out: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
            let o2 = Arc::clone(&out);
            run_world(WorldConfig::new(summit_cluster(1), 1), move |ctx| {
                let dom = DomainBuilder::new([24, 18, 12])
                    .radius(1)
                    .boundary(b)
                    .build(ctx);
                *o2.lock() = dom.plan_summary().total_sends();
            });
            let v = *out.lock();
            v
        };
        let periodic = count(Boundary::Periodic);
        let open = count(Boundary::Open);
        assert!(open < periodic, "open {open} must be < periodic {periodic}");
        // 24x18x12 over 6 GPUs = [3,2,1] grid: every z direction and the
        // boundary-facing x/y directions disappear.
        assert_eq!(periodic, 6 * 26);
        assert!(open > 0);
    }
}

mod consolidated {
    use super::*;

    #[test]
    fn consolidated_multi_node_matches_reference() {
        // Consolidation groups all staged (off-node) transfers per
        // (subdomain, destination rank); the halo contents must be
        // unchanged.
        let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let f2 = Arc::clone(&failures);
        let domain: Dim3 = [24, 24, 24];
        run_world(WorldConfig::new(summit_cluster(2), 6), move |ctx| {
            let dom = DomainBuilder::new(domain)
                .radius(1)
                .quantities(2)
                .consolidate(true)
                .build(ctx);
            for local in dom.locals() {
                for q in 0..2 {
                    local.fill(q, |p| cell_value(domain, q, p));
                }
            }
            ctx.barrier();
            dom.exchange(ctx);
            dom.exchange(ctx); // reuse of grouped buffers must also be clean
            ctx.barrier();
            for local in dom.locals() {
                let o = local.interior.origin;
                let e = local.interior.extent;
                for q in 0..2 {
                    for z in -1..=(e[2] as i64) {
                        for y in -1..=(e[1] as i64) {
                            for x in -1..=(e[0] as i64) {
                                let inside = |v: i64, m: u64| v >= 0 && (v as u64) < m;
                                if inside(x, e[0]) && inside(y, e[1]) && inside(z, e[2]) {
                                    continue;
                                }
                                let got = local.get_local_f32(q, [x, y, z]);
                                let gp = [
                                    (o[0] as i64 + x).rem_euclid(domain[0] as i64) as u64,
                                    (o[1] as i64 + y).rem_euclid(domain[1] as i64) as u64,
                                    (o[2] as i64 + z).rem_euclid(domain[2] as i64) as u64,
                                ];
                                let want = cell_value(domain, q, gp);
                                if got != want {
                                    f2.lock().push(format!(
                                        "rank {} q{q} [{x},{y},{z}]: got {got} want {want}",
                                        ctx.rank()
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        });
        let f = failures.lock();
        assert!(f.is_empty(), "{} mismatches: {:?}", f.len(), f.first());
    }

    #[test]
    fn consolidated_staged_only_single_node() {
        // With staged-only methods even on-node messages group.
        let failures: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let f2 = Arc::clone(&failures);
        let domain: Dim3 = [24, 18, 12];
        run_world(WorldConfig::new(summit_cluster(1), 6), move |ctx| {
            let dom = DomainBuilder::new(domain)
                .radius(2)
                .methods(Methods::staged_only())
                .consolidate(true)
                .build(ctx);
            for local in dom.locals() {
                local.fill(0, |p| cell_value(domain, 0, p));
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            for local in dom.locals() {
                let o = local.interior.origin;
                let e = local.interior.extent;
                for z in 0..e[2] as i64 {
                    for y in 0..e[1] as i64 {
                        let got = local.get_local_f32(0, [-2, y, z]);
                        let gp = [
                            (o[0] as i64 - 2).rem_euclid(domain[0] as i64) as u64,
                            o[1] + y as u64,
                            o[2] + z as u64,
                        ];
                        if got != cell_value(domain, 0, gp) {
                            *f2.lock() += 1;
                        }
                    }
                }
            }
        });
        assert_eq!(*failures.lock(), 0);
    }

    #[test]
    fn consolidation_is_deterministic_and_comparable() {
        let time = |consolidate: bool| {
            let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
            let o2 = Arc::clone(&out);
            let cfg = WorldConfig::new(summit_cluster(2), 6).data_mode(gpusim::DataMode::Virtual);
            run_world(cfg, move |ctx| {
                let dom = DomainBuilder::new([512, 512, 512])
                    .radius(2)
                    .quantities(4)
                    .consolidate(consolidate)
                    .build(ctx);
                ctx.barrier();
                let t0 = ctx.wtime();
                dom.exchange(ctx);
                let dt = ctx.wtime() - t0;
                let mut g = o2.lock();
                if dt > *g {
                    *g = dt;
                }
            });
            let v = *out.lock();
            v
        };
        let plain = time(false);
        let grouped = time(true);
        // The paper conjectures its messages are already large enough for
        // consolidation not to matter much; either way it must be within a
        // factor of ~2 and strictly positive.
        assert!(grouped > 0.0 && plain > 0.0);
        assert!(
            grouped < plain * 2.0 && plain < grouped * 2.0,
            "plain {plain} vs grouped {grouped}"
        );
    }
}
