//! Pins the determinism contract of `resolve_node_placements`: the
//! parallel per-node QAP re-solve used by `adapt_placement` must produce
//! **bit-identical** placements to the serial path, for any thread count,
//! on both the exhaustive (6-GPU) and heuristic (12-GPU fat node) ladder
//! rungs. If this breaks, committed virtual times after an adaptation
//! diverge between machines with different core counts.

use stencil_core::dim3::Boundary;
use stencil_core::{resolve_node_placements, Neighborhood, Partition, Radius};
use topo::presets::fat_node;
use topo::summit::summit_node;
use topo::NodeDiscovery;

/// Per-node measured-style matrices: the discovered matrix with a
/// deterministic per-node perturbation (node k's GPU pair (k % g, (k+1) % g)
/// degraded 4×) so different nodes genuinely solve different instances.
fn perturbed_rank_distances(
    base: &[Vec<f64>],
    num_nodes: usize,
    ranks_per_node: usize,
) -> Vec<Vec<Vec<f64>>> {
    let g = base.len();
    let mut all = Vec::with_capacity(num_nodes * ranks_per_node);
    for n in 0..num_nodes {
        let mut d = base.to_vec();
        let (a, b) = (n % g, (n + 1) % g);
        if a != b {
            d[a][b] *= 4.0;
            d[b][a] *= 4.0;
        }
        for _ in 0..ranks_per_node {
            all.push(d.clone());
        }
    }
    all
}

fn assert_bit_identical(part: &Partition, rank_distances: &[Vec<Vec<f64>>], ranks_per_node: usize) {
    let solve = |threads: usize| {
        resolve_node_placements(
            part,
            Neighborhood::Full26,
            &Radius::constant(2),
            4,
            4,
            Boundary::Periodic,
            rank_distances,
            ranks_per_node,
            threads,
        )
    };
    let serial = solve(1);
    for threads in [2, 3, 8, 64] {
        let parallel = solve(threads);
        assert_eq!(serial.len(), parallel.len());
        for (n, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s.gpu_for_subdomain, p.gpu_for_subdomain,
                "node {n}, {threads} threads: assignment diverged"
            );
            assert_eq!(
                s.subdomain_for_gpu, p.subdomain_for_gpu,
                "node {n}, {threads} threads"
            );
            assert_eq!(
                s.cost.to_bits(),
                p.cost.to_bits(),
                "node {n}, {threads} threads: cost bits diverged"
            );
        }
    }
}

#[test]
fn parallel_matches_serial_summit_nodes() {
    // 8 Summit nodes, 6 GPUs each: the exhaustive rung.
    let part = Partition::new([720, 726, 350], 8, 6);
    let disc = NodeDiscovery::discover(&summit_node());
    let all = perturbed_rank_distances(&disc.distance_matrix(), 8, 2);
    assert_bit_identical(&part, &all, 2);
}

#[test]
fn parallel_matches_serial_fat_nodes() {
    // 4 fat nodes, 12 GPUs each: the heuristic rung (n > EXHAUSTIVE_MAX_N).
    let part = Partition::new([720, 726, 352], 4, 12);
    let disc = NodeDiscovery::discover(&fat_node(2, 2, 3));
    let all = perturbed_rank_distances(&disc.distance_matrix(), 4, 1);
    assert_bit_identical(&part, &all, 1);
}

#[test]
fn oversubscribed_thread_count_is_clamped() {
    // More threads than nodes must neither panic nor change results.
    let part = Partition::new([240, 242, 120], 2, 6);
    let disc = NodeDiscovery::discover(&summit_node());
    let all = perturbed_rank_distances(&disc.distance_matrix(), 2, 1);
    assert_bit_identical(&part, &all, 1);
}
