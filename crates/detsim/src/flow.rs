//! Fair-share flow network: models bulk data transfers over shared links.
//!
//! A *link* has a capacity (bytes/sec) and a fixed latency. A *flow* moves a
//! byte count over a path of links. Concurrent flows sharing a link divide
//! its capacity: each flow's rate is `min` over its path links of
//! `capacity / active-flow-count` ("bottleneck fair share"). This is a
//! slightly conservative approximation of max-min fairness — a flow
//! bottlenecked elsewhere still counts against a link's divisor — chosen
//! because rate changes then only propagate to flows that *directly share a
//! link* with the flow that started/finished, which keeps large simulations
//! (hundreds of nodes, tens of thousands of concurrent transfers) cheap and
//! exactly deterministic.
//!
//! Whenever the set of flows on any link changes, the affected flows'
//! remaining byte counts are settled at the current instant, their rates
//! recomputed, and their completion events re-projected. Stale completion
//! events are invalidated with a per-flow generation counter.
//!
//! ## Performance notes
//!
//! Reshares dominate large simulations (a 256-node fig12b step performs
//! ~400k of them, settling millions of flows), so the data structures are
//! arranged to make one reshare allocation-free:
//!
//! * Each link caches its fair `share` (`capacity / flow-count`),
//!   recomputed only when membership changes — not per affected flow.
//! * Link membership is an unordered `Vec` of `(flow, hop)` entries with
//!   `swap_remove` deletion; each flow records its position in every hop's
//!   entry list so leaving a link is O(1) with a single position fix-up.
//! * Paths of up to [`PATH_INLINE`] hops are stored inline in the flow
//!   (internode host routes are at most 7 links), so starting a flow does
//!   not clone the path and resharing never touches the heap.
//! * The affected-flow set is a sorted-and-deduped scratch `Vec` reused
//!   across reshares, replacing a `BTreeSet` rebuilt per membership change.
//! * Completion events are [`EventKind::FlowFinish`] records, not boxed
//!   closures; superseded projections are counted so the kernel can compact
//!   them out of the heap (see [`Kernel::step`]).

use crate::kernel::{push_event, Action, EventKind, Kernel};
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifies a link in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub(crate) usize);

/// Identifies an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(usize);

/// Paths up to this many hops live inline in the flow; longer ones spill
/// to the heap. The deepest route the topology builds (internode host
/// path: intranode hops + inject + eject + intranode hops) is 7 links.
const PATH_INLINE: usize = 8;

/// A flow's route plus, per hop, the flow's index into that link's entry
/// list (maintained by join/leave so leaving is O(1)).
enum FlowPath {
    Inline(u8, [(LinkId, u32); PATH_INLINE]),
    Heap(Vec<(LinkId, u32)>),
}

impl FlowPath {
    fn from_links(path: &[LinkId]) -> Self {
        if path.len() <= PATH_INLINE {
            let mut hops = [(LinkId(0), 0u32); PATH_INLINE];
            for (hop, &l) in hops.iter_mut().zip(path) {
                hop.0 = l;
            }
            FlowPath::Inline(path.len() as u8, hops)
        } else {
            FlowPath::Heap(path.iter().map(|&l| (l, 0)).collect())
        }
    }

    fn hops(&self) -> &[(LinkId, u32)] {
        match self {
            FlowPath::Inline(len, hops) => &hops[..*len as usize],
            FlowPath::Heap(hops) => hops,
        }
    }

    fn hops_mut(&mut self) -> &mut [(LinkId, u32)] {
        match self {
            FlowPath::Inline(len, hops) => &mut hops[..*len as usize],
            FlowPath::Heap(hops) => hops,
        }
    }

    fn set_pos(&mut self, hop: usize, pos: u32) {
        self.hops_mut()[hop].1 = pos;
    }
}

pub(crate) struct Link {
    name: String,
    capacity: f64, // bytes per second
    latency: SimDuration,
    /// Flows currently on this link, unordered, as `(flow, hop index in
    /// that flow's path)` so a swap-removed entry's owner can be fixed up.
    entries: Vec<(FlowId, u32)>,
    /// Cached fair share `capacity / entries.len()`; valid whenever the
    /// link has flows, recomputed only on membership change.
    share: f64,
    /// Cumulative bytes that have finished crossing this link (diagnostics).
    delivered: u64,
    /// Sum of current rates of flows on this link (diagnostics).
    load: f64,
    /// Peak of `load / capacity` observed (diagnostics).
    peak_util: f64,
    /// Time-integral of load (bytes "scheduled" through the link).
    busy_bytes: f64,
    /// Last time `load` changed.
    last_change: SimTime,
}

struct Flow {
    path: FlowPath,
    remaining: f64,
    total: u64,
    rate: f64,
    last_update: SimTime,
    generation: u64,
    on_done: Option<Action>,
}

/// Container for links and flows; lives inside [`Kernel`].
pub(crate) struct FlowNet {
    links: Vec<Link>,
    flows: Vec<Option<Flow>>,
    /// Per-slot generation floor, persisted across slot reuse so that a
    /// stale completion event scheduled for a *previous* occupant of a slot
    /// can never match the current occupant's generation.
    slot_gen: Vec<u64>,
    free: Vec<usize>,
    active: usize,
    /// Reusable affected-flow buffer for joins/leaves (never held across
    /// user callbacks).
    scratch: Vec<FlowId>,
}

impl FlowNet {
    pub(crate) fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            flows: Vec::new(),
            slot_gen: Vec::new(),
            free: Vec::new(),
            active: 0,
            scratch: Vec::new(),
        }
    }

    fn alloc(&mut self, mut flow: Flow) -> FlowId {
        self.active += 1;
        if let Some(i) = self.free.pop() {
            debug_assert!(self.flows[i].is_none());
            flow.generation = self.slot_gen[i];
            self.flows[i] = Some(flow);
            FlowId(i)
        } else {
            self.flows.push(Some(flow));
            self.slot_gen.push(0);
            FlowId(self.flows.len() - 1)
        }
    }

    /// Whether a completion event for `(fid, gen)` still refers to the
    /// current occupant of the slot at its current rate.
    pub(crate) fn is_fresh(&self, fid: FlowId, gen: u64) -> bool {
        self.flows[fid.0]
            .as_ref()
            .is_some_and(|f| f.generation == gen)
    }
}

/// Settle a link's busy-byte integral at `now`, then apply `delta` to its
/// load. When the metrics registry is enabled, also records the link's
/// utilization (time-weighted by the settled interval) and busy time.
fn settle_link(link: &mut Link, metrics: &mut Metrics, now: SimTime, delta: f64) {
    let dt = now.since(link.last_change);
    let secs = dt.as_secs_f64();
    link.busy_bytes += link.load * secs;
    link.last_change = now;
    let old_load = link.load;
    link.load += delta;
    if metrics.is_enabled() && dt > SimDuration::ZERO {
        let util = old_load / link.capacity;
        let name: &str = &link.name;
        metrics.observe_weighted("flow", "link_utilization", &[("link", name)], util, secs);
        if old_load > 0.0 {
            metrics.counter_add("flow", "link_busy_ps", &[("link", name)], dt.picos());
        }
    }
}

impl Kernel {
    /// Add a link with the given capacity (bytes/second) and one-way latency.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        capacity_bps: f64,
        latency: SimDuration,
    ) -> LinkId {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "link capacity must be positive and finite"
        );
        self.flows.links.push(Link {
            name: name.into(),
            capacity: capacity_bps,
            latency,
            entries: Vec::new(),
            share: capacity_bps,
            delivered: 0,
            load: 0.0,
            peak_util: 0.0,
            busy_bytes: 0.0,
            last_change: SimTime::ZERO,
        });
        LinkId(self.flows.links.len() - 1)
    }

    /// Capacity of a link in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.flows.links[link.0].capacity
    }

    /// Change a link's capacity (bytes/second) mid-run — the degradation /
    /// repair hook used by fault injection.
    ///
    /// The link's utilization integral is settled at the *old* capacity
    /// first, then every flow currently crossing the link is re-settled at
    /// its old rate, re-rated against the new fair share, and has its
    /// completion re-projected — the same machinery a membership change
    /// uses, so the conservation invariants (busy-byte integral tracks
    /// delivered bytes, utilization ≤ 1) hold across the change. Flows not
    /// on this link are untouched: a flow's rate is the min of its links'
    /// shares, and only this link's share moved.
    ///
    /// Setting the current capacity is a no-op (no settlement, no events),
    /// so an installed-but-never-firing schedule keeps runs bit-identical.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity_bps: f64) {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "link capacity must be positive and finite"
        );
        if self.flows.links[link.0].capacity == capacity_bps {
            return;
        }
        let now = self.now();
        let mut affected = std::mem::take(&mut self.flows.scratch);
        {
            let l = &mut self.flows.links[link.0];
            // Flush the utilization integral while `capacity` still holds
            // the value the elapsed interval ran under.
            settle_link(l, &mut self.metrics, now, 0.0);
            l.capacity = capacity_bps;
            l.share = if l.entries.is_empty() {
                capacity_bps
            } else {
                capacity_bps / l.entries.len() as f64
            };
            affected.extend(l.entries.iter().map(|e| e.0));
        }
        self.reshare(&mut affected);
        affected.clear();
        self.flows.scratch = affected;
    }

    /// Change a link's one-way latency. Latency is charged once, up front,
    /// when a flow starts ([`Kernel::start_flow`]), so the new value applies
    /// only to flows started after this call; in-flight flows keep the
    /// latency they already paid.
    pub fn set_link_latency(&mut self, link: LinkId, latency: SimDuration) {
        self.flows.links[link.0].latency = latency;
    }

    /// One-way latency of a link.
    pub fn link_latency(&self, link: LinkId) -> SimDuration {
        self.flows.links[link.0].latency
    }

    /// Human-readable link name.
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.flows.links[link.0].name
    }

    /// Total bytes delivered over a link so far.
    pub fn link_delivered(&self, link: LinkId) -> u64 {
        self.flows.links[link.0].delivered
    }

    /// Peak instantaneous utilization (sum of flow rates / capacity) seen on
    /// a link. Values above 1.0 indicate an over-allocation bug.
    pub fn link_peak_utilization(&self, link: LinkId) -> f64 {
        self.flows.links[link.0].peak_util
    }

    /// Bytes "scheduled" through the link according to the time-integral of
    /// its load. Should track [`Kernel::link_delivered`] closely; a large
    /// mismatch indicates settlement bugs.
    pub fn link_busy_bytes(&self, link: LinkId) -> f64 {
        self.flows.links[link.0].busy_bytes
    }

    /// Number of flows currently in the network (activated, not yet done).
    pub fn active_flows(&self) -> usize {
        self.flows.active
    }

    /// Sum of one-way latencies along `path`.
    pub fn path_latency(&self, path: &[LinkId]) -> SimDuration {
        path.iter().fold(SimDuration::ZERO, |acc, l| {
            acc + self.flows.links[l.0].latency
        })
    }

    /// Minimum capacity along `path` (the zero-contention bandwidth).
    pub fn path_capacity(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|l| self.flows.links[l.0].capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Start a transfer of `bytes` over `path`, running `on_done` when the
    /// last byte arrives. The path latency is charged up front (pipelined
    /// store-and-forward is not modeled; halo messages are large enough that
    /// latency is a small additive term). Zero-byte transfers still pay the
    /// latency.
    ///
    /// An empty path completes after zero time plus nothing — permitted for
    /// degenerate "local" transfers.
    pub fn start_flow(
        &mut self,
        path: &[LinkId],
        bytes: u64,
        on_done: impl FnOnce(&mut Kernel) + Send + 'static,
    ) {
        if path.is_empty() {
            self.schedule_in(SimDuration::ZERO, on_done);
            return;
        }
        debug_assert!(
            path.iter()
                .all(|l| path.iter().filter(|m| *m == l).count() == 1),
            "flow paths must not repeat a link"
        );
        let latency = self.path_latency(path);
        let path = FlowPath::from_links(path);
        let on_done: Action = Box::new(on_done);
        // After the latency elapses, the flow joins the links and begins
        // consuming bandwidth.
        self.schedule_in(latency, move |k| k.activate_flow(path, bytes, on_done));
    }

    /// Join a flow onto its path links and give the affected set its first
    /// reshare. Runs after the path latency has elapsed.
    fn activate_flow(&mut self, path: FlowPath, bytes: u64, on_done: Action) {
        let now = self.now();
        let id = self.flows.alloc(Flow {
            path,
            remaining: bytes as f64,
            total: bytes,
            rate: 0.0,
            last_update: now,
            generation: 0,
            on_done: Some(on_done),
        });
        let mut affected = std::mem::take(&mut self.flows.scratch);
        {
            let net = &mut self.flows;
            // Split borrow: the flow lives in `net.flows`, membership in
            // `net.links`.
            let (links, flows) = (&mut net.links, &mut net.flows);
            let flow = flows[id.0].as_mut().expect("flow just allocated");
            for (hop, entry) in flow.path.hops_mut().iter_mut().enumerate() {
                let link = &mut links[entry.0 .0];
                affected.extend(link.entries.iter().map(|e| e.0));
                entry.1 = link.entries.len() as u32;
                link.entries.push((id, hop as u32));
                link.share = link.capacity / link.entries.len() as f64;
            }
        }
        affected.push(id);
        if self.metrics.is_enabled() {
            let flow = self.flows.flows[id.0]
                .as_ref()
                .expect("flow just allocated");
            for &(l, _) in flow.path.hops() {
                let name: &str = &self.flows.links[l.0].name;
                self.metrics
                    .gauge_add("flow", "link_active_flows", &[("link", name)], 1.0);
            }
            self.metrics.gauge_add("flow", "active_flows", &[], 1.0);
        }
        self.reshare(&mut affected);
        affected.clear();
        self.flows.scratch = affected;
    }

    /// Settle remaining bytes and recompute rates for `affected` flows
    /// (duplicates welcome; the buffer is sorted and deduped in place), then
    /// re-project their completion events.
    ///
    /// Flows are processed in ascending id order — the same order the
    /// original `BTreeSet`-based implementation used — because link
    /// settlement accumulates floating-point state order-sensitively and
    /// virtual times must stay bit-identical.
    fn reshare(&mut self, affected: &mut Vec<FlowId>) {
        affected.sort_unstable();
        affected.dedup();
        let now = self.now();
        let net = &mut self.flows;
        let (links, flows, slot_gen) = (&mut net.links, &mut net.flows, &net.slot_gen);
        let metrics = &mut self.metrics;
        let (queue, next_seq) = (&mut self.queue, &mut self.next_seq);
        for &fid in affected.iter() {
            let Some(flow) = flows[fid.0].as_mut() else {
                continue; // completed in the meantime
            };
            // New bottleneck-fair rate: min of the cached link shares.
            let mut rate = f64::INFINITY;
            for &(l, _) in flow.path.hops() {
                rate = rate.min(links[l.0].share);
            }
            let old_rate = flow.rate;
            for &(l, _) in flow.path.hops() {
                settle_link(&mut links[l.0], metrics, now, rate - old_rate);
            }
            // Settle progress at the old rate.
            let dt = now.since(flow.last_update).as_secs_f64();
            flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
            flow.last_update = now;
            flow.rate = rate;
            if flow.generation > slot_gen[fid.0] {
                // This flow already had a projected completion; bumping the
                // generation supersedes it.
                self.stale_pending += 1;
            }
            flow.generation += 1;
            let gen = flow.generation;
            let eta = SimDuration::from_secs_f64(flow.remaining / rate);
            push_event(
                queue,
                next_seq,
                now + eta,
                EventKind::FlowFinish { fid, gen },
            );
        }
        // Record utilization peaks only after the whole batch settles.
        for &fid in affected.iter() {
            if let Some(flow) = flows[fid.0].as_ref() {
                for &(l, _) in flow.path.hops() {
                    let link = &mut links[l.0];
                    let u = link.load / link.capacity;
                    if u > link.peak_util {
                        link.peak_util = u;
                    }
                }
            }
        }
    }

    /// Deliver a flow's last byte: detach it from its links, reshare the
    /// survivors, and run its callback. Called by the event loop for fresh
    /// [`EventKind::FlowFinish`] events.
    pub(crate) fn finish_flow(&mut self, fid: FlowId, gen: u64) {
        if !self.flows.is_fresh(fid, gen) {
            return; // superseded by a rate change
        }
        let mut flow = self.flows.flows[fid.0].take().expect("flow vanished");
        // Outstanding (stale) events carry generations <= flow.generation;
        // start the next occupant of this slot above all of them.
        self.flows.slot_gen[fid.0] = flow.generation + 1;
        self.flows.free.push(fid.0);
        self.flows.active -= 1;
        let now = self.now();
        let mut affected = std::mem::take(&mut self.flows.scratch);
        {
            let net = &mut self.flows;
            let (links, flows) = (&mut net.links, &mut net.flows);
            let metrics = &mut self.metrics;
            for (hop, &(l, pos)) in flow.path.hops().iter().enumerate() {
                let link = &mut links[l.0];
                let removed = link.entries.swap_remove(pos as usize);
                debug_assert_eq!(removed, (fid, hop as u32), "link entry out of sync");
                // The swapped-in entry moved; tell its owner.
                if let Some(&(moved, moved_hop)) = link.entries.get(pos as usize) {
                    flows[moved.0]
                        .as_mut()
                        .expect("dangling link entry")
                        .path
                        .set_pos(moved_hop as usize, pos);
                }
                link.share = if link.entries.is_empty() {
                    link.capacity
                } else {
                    link.capacity / link.entries.len() as f64
                };
                link.delivered += flow.total;
                settle_link(link, metrics, now, -flow.rate);
                if metrics.is_enabled() {
                    let name: &str = &links[l.0].name;
                    metrics.counter_add(
                        "flow",
                        "link_delivered_bytes",
                        &[("link", name)],
                        flow.total,
                    );
                    metrics.gauge_add("flow", "link_active_flows", &[("link", name)], -1.0);
                }
                affected.extend(links[l.0].entries.iter().map(|e| e.0));
            }
            if metrics.is_enabled() {
                metrics.gauge_add("flow", "active_flows", &[], -1.0);
            }
        }
        self.reshare(&mut affected);
        affected.clear();
        self.flows.scratch = affected;
        if let Some(cb) = flow.on_done.take() {
            cb(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::time::PS_PER_SEC;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn finish_time(k: &mut Kernel, done: &Arc<AtomicU64>) -> f64 {
        k.run_to_completion();
        assert!(done.load(Ordering::SeqCst) > 0, "flow never finished");
        k.now().as_secs_f64()
    }

    fn make_done(k: &mut Kernel) -> (Arc<AtomicU64>, impl FnOnce(&mut Kernel) + Send + 'static) {
        let _ = k;
        let done = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&done);
        (done, move |k: &mut Kernel| {
            d2.store(k.now().picos().max(1), Ordering::SeqCst);
        })
    }

    #[test]
    fn solo_flow_runs_at_link_capacity() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 200, cb);
        let t = finish_time(&mut k, &done);
        assert!((t - 2.0).abs() < 1e-9, "expected 2s, got {t}");
    }

    #[test]
    fn latency_is_charged_up_front() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::from_secs_f64(0.5));
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        let t = finish_time(&mut k, &done);
        assert!((t - 1.5).abs() < 1e-9, "expected 1.5s, got {t}");
    }

    #[test]
    fn two_flows_share_a_link_evenly() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        let (done2, cb2) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        k.start_flow(&[l], 100, cb2);
        k.run_to_completion();
        // Each gets 50 B/s -> both finish at t=2.
        let t1 = done.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        let t2 = done2.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t1 - 2.0).abs() < 1e-9, "t1={t1}");
        assert!((t2 - 2.0).abs() < 1e-9, "t2={t2}");
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        // second flow arrives at t=0.5 (when flow 1 has 50 bytes left)
        let (done2, cb2) = make_done(&mut k);
        k.schedule_in(SimDuration::from_secs_f64(0.5), move |k| {
            k.start_flow(&[l], 100, cb2);
        });
        k.run_to_completion();
        // flow1: 50B at 100B/s then 50B at 50B/s -> done at t=1.5
        let t1 = done.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t1 - 1.5).abs() < 1e-6, "t1={t1}");
        // flow2: 50B at 50B/s (until t=1.5), then 50B at 100B/s -> t=2.0
        let t2 = done2.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t2 - 2.0).abs() < 1e-6, "t2={t2}");
    }

    #[test]
    fn multi_link_path_bottlenecked_by_slowest() {
        let mut k = Kernel::new();
        let fast = k.add_link("fast", 1000.0, SimDuration::ZERO);
        let slow = k.add_link("slow", 10.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[fast, slow], 100, cb);
        let t = finish_time(&mut k, &done);
        assert!((t - 10.0).abs() < 1e-9, "expected 10s, got {t}");
    }

    #[test]
    fn empty_path_completes_immediately() {
        let mut k = Kernel::new();
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[], 12345, cb);
        k.run_to_completion();
        assert_eq!(k.now(), SimTime::ZERO);
        assert!(done.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn zero_byte_flow_pays_latency_only() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::from_micros(7));
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 0, cb);
        k.run_to_completion();
        assert_eq!(k.now(), SimTime::ZERO + SimDuration::from_micros(7));
        assert!(done.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn delivered_bytes_accumulate() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        for _ in 0..3 {
            k.start_flow(&[l], 50, |_| {});
        }
        k.run_to_completion();
        assert_eq!(k.link_delivered(l), 150);
        assert_eq!(k.active_flows(), 0);
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut k = Kernel::new();
        let a = k.add_link("a", 100.0, SimDuration::ZERO);
        let b = k.add_link("b", 100.0, SimDuration::ZERO);
        let (done_a, cb_a) = make_done(&mut k);
        let (done_b, cb_b) = make_done(&mut k);
        k.start_flow(&[a], 100, cb_a);
        k.start_flow(&[b], 100, cb_b);
        k.run_to_completion();
        let ta = done_a.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        let tb = done_b.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((ta - 1.0).abs() < 1e-9);
        assert!((tb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn many_flows_conserve_bytes() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 1e9, SimDuration::from_micros(1));
        let total = Arc::new(AtomicU64::new(0));
        let mut expected = 0u64;
        for i in 1..=64u64 {
            let bytes = i * 1000;
            expected += bytes;
            let total = Arc::clone(&total);
            // stagger starts
            k.schedule_in(SimDuration::from_nanos(i * 100), move |k| {
                k.start_flow(&[l], bytes, move |_| {
                    total.fetch_add(bytes, Ordering::SeqCst);
                });
            });
        }
        k.run_to_completion();
        assert_eq!(total.load(Ordering::SeqCst), expected);
        assert_eq!(k.link_delivered(l), expected);
        assert_eq!(k.active_flows(), 0);
    }

    #[test]
    fn capacity_cut_mid_flow_slows_completion() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        // At t=0.5 the flow has 50 B left; cut to 25 B/s -> 2 more seconds.
        k.schedule_in(SimDuration::from_secs_f64(0.5), move |k| {
            k.set_link_capacity(l, 25.0);
        });
        let t = finish_time(&mut k, &done);
        assert!((t - 2.5).abs() < 1e-9, "expected 2.5s, got {t}");
        assert_eq!(k.link_capacity(l), 25.0);
    }

    #[test]
    fn capacity_restore_speeds_completion_back_up() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 200, cb);
        // 0..0.5s at 100 B/s (50 B), 0.5..1.5s at 50 B/s (50 B), then back
        // to 100 B/s for the last 100 B -> finish at t=2.5.
        k.schedule_in(SimDuration::from_secs_f64(0.5), move |k| {
            k.set_link_capacity(l, 50.0);
        });
        k.schedule_in(SimDuration::from_secs_f64(1.5), move |k| {
            k.set_link_capacity(l, 100.0);
        });
        let t = finish_time(&mut k, &done);
        assert!((t - 2.5).abs() < 1e-9, "expected 2.5s, got {t}");
    }

    #[test]
    fn capacity_change_affects_only_flows_on_the_link() {
        let mut k = Kernel::new();
        let a = k.add_link("a", 100.0, SimDuration::ZERO);
        let b = k.add_link("b", 100.0, SimDuration::ZERO);
        let (done_a, cb_a) = make_done(&mut k);
        let (done_b, cb_b) = make_done(&mut k);
        k.start_flow(&[a], 100, cb_a);
        k.start_flow(&[b], 100, cb_b);
        k.schedule_in(SimDuration::from_secs_f64(0.5), move |k| {
            k.set_link_capacity(a, 10.0);
        });
        k.run_to_completion();
        let ta = done_a.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        let tb = done_b.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        // a: 50 B at 100 B/s then 50 B at 10 B/s -> 5.5s; b untouched.
        assert!((ta - 5.5).abs() < 1e-6, "ta={ta}");
        assert!((tb - 1.0).abs() < 1e-9, "tb={tb}");
    }

    #[test]
    fn capacity_change_conserves_bytes_and_utilization() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 1e9, SimDuration::from_micros(1));
        let mut expected = 0u64;
        for i in 1..=32u64 {
            let bytes = i * 10_000;
            expected += bytes;
            k.schedule_in(SimDuration::from_nanos(i * 300), move |k| {
                k.start_flow(&[l], bytes, |_| {});
            });
        }
        // Degrade and restore while the flows are in flight.
        k.schedule_in(SimDuration::from_micros(20), move |k| {
            k.set_link_capacity(l, 2e8);
        });
        k.schedule_in(SimDuration::from_micros(400), move |k| {
            k.set_link_capacity(l, 1e9);
        });
        k.run_to_completion();
        assert_eq!(k.link_delivered(l), expected);
        assert_eq!(k.active_flows(), 0);
        let busy = k.link_busy_bytes(l);
        let delivered = expected as f64;
        assert!(
            (busy - delivered).abs() < delivered * 1e-6,
            "busy-byte integral {busy} diverged from delivered {delivered}"
        );
        let peak = k.link_peak_utilization(l);
        assert!(peak <= 1.0 + 1e-9, "peak utilization {peak} > 1");
    }

    #[test]
    fn setting_same_capacity_is_bit_identical_noop() {
        let run = |touch: bool| {
            let mut k = Kernel::new();
            let l = k.add_link("l", 12.5e9, SimDuration::from_nanos(500));
            let (done, cb) = make_done(&mut k);
            k.start_flow(&[l], 1_000_000, cb);
            k.start_flow(&[l], 777_777, |_| {});
            if touch {
                k.schedule_in(SimDuration::from_micros(10), move |k| {
                    k.set_link_capacity(l, 12.5e9);
                });
            }
            k.run_to_completion();
            done.load(Ordering::SeqCst)
        };
        assert_eq!(
            run(false),
            run(true),
            "no-op capacity set perturbed completion time"
        );
    }

    #[test]
    fn latency_change_applies_to_new_flows_only() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::from_secs_f64(0.25));
        let (done, cb) = make_done(&mut k);
        // In-flight flow keeps the latency it paid at start.
        k.start_flow(&[l], 100, cb);
        k.schedule_in(SimDuration::from_secs_f64(0.1), move |k| {
            k.set_link_latency(l, SimDuration::from_secs_f64(1.0));
        });
        let (done2, cb2) = make_done(&mut k);
        k.schedule_in(SimDuration::from_secs_f64(2.0), move |k| {
            assert_eq!(k.link_latency(l), SimDuration::from_secs_f64(1.0));
            k.start_flow(&[l], 100, cb2);
        });
        k.run_to_completion();
        let t1 = done.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        let t2 = done2.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t1 - 1.25).abs() < 1e-9, "t1={t1}");
        assert!((t2 - 4.0).abs() < 1e-9, "t2={t2}");
    }

    #[test]
    fn path_helpers() {
        let mut k = Kernel::new();
        let a = k.add_link("a", 100.0, SimDuration::from_micros(1));
        let b = k.add_link("b", 50.0, SimDuration::from_micros(2));
        assert_eq!(k.path_latency(&[a, b]), SimDuration::from_micros(3));
        assert_eq!(k.path_capacity(&[a, b]), 50.0);
        assert_eq!(k.link_name(a), "a");
        assert_eq!(k.link_capacity(b), 50.0);
    }
}
