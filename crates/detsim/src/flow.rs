//! Fair-share flow network: models bulk data transfers over shared links.
//!
//! A *link* has a capacity (bytes/sec) and a fixed latency. A *flow* moves a
//! byte count over a path of links. Concurrent flows sharing a link divide
//! its capacity: each flow's rate is `min` over its path links of
//! `capacity / active-flow-count` ("bottleneck fair share"). This is a
//! slightly conservative approximation of max-min fairness — a flow
//! bottlenecked elsewhere still counts against a link's divisor — chosen
//! because rate changes then only propagate to flows that *directly share a
//! link* with the flow that started/finished, which keeps large simulations
//! (hundreds of nodes, tens of thousands of concurrent transfers) cheap and
//! exactly deterministic.
//!
//! Whenever the set of flows on any link changes, the affected flows'
//! remaining byte counts are settled at the current instant, their rates
//! recomputed, and their completion events re-projected. Stale completion
//! events are invalidated with a per-flow generation counter.

use std::collections::BTreeSet;

use crate::kernel::{Action, Kernel};
use crate::time::{SimDuration, SimTime};

/// Identifies a link in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub(crate) usize);

/// Identifies an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(usize);

pub(crate) struct Link {
    name: String,
    capacity: f64, // bytes per second
    latency: SimDuration,
    flows: BTreeSet<FlowId>,
    /// Cumulative bytes that have finished crossing this link (diagnostics).
    delivered: u64,
    /// Sum of current rates of flows on this link (diagnostics).
    load: f64,
    /// Peak of `load / capacity` observed (diagnostics).
    peak_util: f64,
    /// Time-integral of load (bytes "scheduled" through the link).
    busy_bytes: f64,
    /// Last time `load` changed.
    last_change: SimTime,
}

struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    total: u64,
    rate: f64,
    last_update: SimTime,
    generation: u64,
    on_done: Option<Action>,
}

/// Container for links and flows; lives inside [`Kernel`].
pub(crate) struct FlowNet {
    links: Vec<Link>,
    flows: Vec<Option<Flow>>,
    /// Per-slot generation floor, persisted across slot reuse so that a
    /// stale completion event scheduled for a *previous* occupant of a slot
    /// can never match the current occupant's generation.
    slot_gen: Vec<u64>,
    free: Vec<usize>,
    active: usize,
}

impl FlowNet {
    pub(crate) fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            flows: Vec::new(),
            slot_gen: Vec::new(),
            free: Vec::new(),
            active: 0,
        }
    }

    fn alloc(&mut self, mut flow: Flow) -> FlowId {
        self.active += 1;
        if let Some(i) = self.free.pop() {
            debug_assert!(self.flows[i].is_none());
            flow.generation = self.slot_gen[i];
            self.flows[i] = Some(flow);
            FlowId(i)
        } else {
            self.flows.push(Some(flow));
            self.slot_gen.push(0);
            FlowId(self.flows.len() - 1)
        }
    }
}

impl Kernel {
    /// Add a link with the given capacity (bytes/second) and one-way latency.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        capacity_bps: f64,
        latency: SimDuration,
    ) -> LinkId {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "link capacity must be positive and finite"
        );
        self.flows.links.push(Link {
            name: name.into(),
            capacity: capacity_bps,
            latency,
            flows: BTreeSet::new(),
            delivered: 0,
            load: 0.0,
            peak_util: 0.0,
            busy_bytes: 0.0,
            last_change: SimTime::ZERO,
        });
        LinkId(self.flows.links.len() - 1)
    }

    /// Capacity of a link in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.flows.links[link.0].capacity
    }

    /// Human-readable link name.
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.flows.links[link.0].name
    }

    /// Total bytes delivered over a link so far.
    pub fn link_delivered(&self, link: LinkId) -> u64 {
        self.flows.links[link.0].delivered
    }

    /// Peak instantaneous utilization (sum of flow rates / capacity) seen on
    /// a link. Values above 1.0 indicate an over-allocation bug.
    pub fn link_peak_utilization(&self, link: LinkId) -> f64 {
        self.flows.links[link.0].peak_util
    }

    /// Bytes "scheduled" through the link according to the time-integral of
    /// its load. Should track [`Kernel::link_delivered`] closely; a large
    /// mismatch indicates settlement bugs.
    pub fn link_busy_bytes(&self, link: LinkId) -> f64 {
        self.flows.links[link.0].busy_bytes
    }

    /// Number of flows currently in the network (activated, not yet done).
    pub fn active_flows(&self) -> usize {
        self.flows.active
    }

    /// Sum of one-way latencies along `path`.
    pub fn path_latency(&self, path: &[LinkId]) -> SimDuration {
        path.iter().fold(SimDuration::ZERO, |acc, l| {
            acc + self.flows.links[l.0].latency
        })
    }

    /// Minimum capacity along `path` (the zero-contention bandwidth).
    pub fn path_capacity(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|l| self.flows.links[l.0].capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Start a transfer of `bytes` over `path`, running `on_done` when the
    /// last byte arrives. The path latency is charged up front (pipelined
    /// store-and-forward is not modeled; halo messages are large enough that
    /// latency is a small additive term). Zero-byte transfers still pay the
    /// latency.
    ///
    /// An empty path completes after zero time plus nothing — permitted for
    /// degenerate "local" transfers.
    pub fn start_flow(
        &mut self,
        path: &[LinkId],
        bytes: u64,
        on_done: impl FnOnce(&mut Kernel) + Send + 'static,
    ) {
        if path.is_empty() {
            self.schedule_in(SimDuration::ZERO, on_done);
            return;
        }
        let latency = self.path_latency(path);
        let path: Vec<LinkId> = path.to_vec();
        // After the latency elapses, the flow joins the links and begins
        // consuming bandwidth.
        self.schedule_in(latency, move |k| {
            let id = k.flows.alloc(Flow {
                path: path.clone(),
                remaining: bytes as f64,
                total: bytes,
                rate: 0.0,
                last_update: k.now(),
                generation: 0,
                on_done: Some(Box::new(on_done)),
            });
            let mut affected = BTreeSet::new();
            for l in &path {
                let link = &mut k.flows.links[l.0];
                affected.extend(link.flows.iter().copied());
                link.flows.insert(id);
            }
            affected.insert(id);
            if k.metrics.is_enabled() {
                for l in &path {
                    let name: &str = &k.flows.links[l.0].name;
                    k.metrics
                        .gauge_add("flow", "link_active_flows", &[("link", name)], 1.0);
                }
                k.metrics.gauge_add("flow", "active_flows", &[], 1.0);
            }
            k.reshare(&affected);
        });
    }

    /// Settle a link's busy-byte integral at `now`, then apply `delta` to its
    /// load. When the metrics registry is enabled, also records the link's
    /// utilization (time-weighted by the settled interval) and busy time.
    fn settle_link(&mut self, l: LinkId, now: SimTime, delta: f64) {
        let link = &mut self.flows.links[l.0];
        let dt = now.since(link.last_change);
        let secs = dt.as_secs_f64();
        link.busy_bytes += link.load * secs;
        link.last_change = now;
        let old_load = link.load;
        link.load += delta;
        if self.metrics.is_enabled() && dt > SimDuration::ZERO {
            let util = old_load / link.capacity;
            let name: &str = &link.name;
            self.metrics.observe_weighted(
                "flow",
                "link_utilization",
                &[("link", name)],
                util,
                secs,
            );
            if old_load > 0.0 {
                self.metrics
                    .counter_add("flow", "link_busy_ps", &[("link", name)], dt.picos());
            }
        }
    }

    /// Settle remaining bytes and recompute rates for `affected` flows, then
    /// re-project their completion events.
    fn reshare(&mut self, affected: &BTreeSet<FlowId>) {
        let now = self.now();
        for &fid in affected {
            let Some(flow) = self.flows.flows[fid.0].as_ref() else {
                continue; // completed in the meantime
            };
            // New bottleneck-fair rate.
            let mut rate = f64::INFINITY;
            for l in &flow.path {
                let link = &self.flows.links[l.0];
                let share = link.capacity / link.flows.len() as f64;
                rate = rate.min(share);
            }
            let path = flow.path.clone();
            let old_rate = flow.rate;
            for l in &path {
                self.settle_link(*l, now, rate - old_rate);
            }
            let flow = self.flows.flows[fid.0].as_mut().unwrap();
            // Settle progress at the old rate.
            let dt = now.since(flow.last_update).as_secs_f64();
            flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
            flow.last_update = now;
            flow.rate = rate;
            flow.generation += 1;
            let gen = flow.generation;
            let eta = SimDuration::from_secs_f64(flow.remaining / rate);
            self.schedule_in(eta, move |k| k.finish_flow(fid, gen));
        }
        // Record utilization peaks only after the whole batch settles.
        for &fid in affected {
            if let Some(flow) = self.flows.flows[fid.0].as_ref() {
                let path = flow.path.clone();
                for l in &path {
                    let link = &mut self.flows.links[l.0];
                    let u = link.load / link.capacity;
                    if u > link.peak_util {
                        link.peak_util = u;
                    }
                }
            }
        }
    }

    fn finish_flow(&mut self, fid: FlowId, gen: u64) {
        let fresh = match self.flows.flows[fid.0].as_ref() {
            Some(f) => f.generation == gen,
            None => false,
        };
        if !fresh {
            return; // superseded by a rate change
        }
        let flow = self.flows.flows[fid.0].take().expect("flow vanished");
        // Outstanding (stale) events carry generations <= flow.generation;
        // start the next occupant of this slot above all of them.
        self.flows.slot_gen[fid.0] = flow.generation + 1;
        self.flows.free.push(fid.0);
        self.flows.active -= 1;
        let mut affected = BTreeSet::new();
        let now = self.now();
        for l in &flow.path {
            let link = &mut self.flows.links[l.0];
            link.flows.remove(&fid);
            link.delivered += flow.total;
            self.settle_link(*l, now, -flow.rate);
            if self.metrics.is_enabled() {
                let name: &str = &self.flows.links[l.0].name;
                self.metrics.counter_add(
                    "flow",
                    "link_delivered_bytes",
                    &[("link", name)],
                    flow.total,
                );
                self.metrics
                    .gauge_add("flow", "link_active_flows", &[("link", name)], -1.0);
            }
            affected.extend(self.flows.links[l.0].flows.iter().copied());
        }
        if self.metrics.is_enabled() {
            self.metrics.gauge_add("flow", "active_flows", &[], -1.0);
        }
        self.reshare(&affected);
        if let Some(cb) = flow.on_done {
            cb(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::time::PS_PER_SEC;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn finish_time(k: &mut Kernel, done: &Arc<AtomicU64>) -> f64 {
        k.run_to_completion();
        assert!(done.load(Ordering::SeqCst) > 0, "flow never finished");
        k.now().as_secs_f64()
    }

    fn make_done(k: &mut Kernel) -> (Arc<AtomicU64>, impl FnOnce(&mut Kernel) + Send + 'static) {
        let _ = k;
        let done = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&done);
        (done, move |k: &mut Kernel| {
            d2.store(k.now().picos().max(1), Ordering::SeqCst);
        })
    }

    #[test]
    fn solo_flow_runs_at_link_capacity() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 200, cb);
        let t = finish_time(&mut k, &done);
        assert!((t - 2.0).abs() < 1e-9, "expected 2s, got {t}");
    }

    #[test]
    fn latency_is_charged_up_front() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::from_secs_f64(0.5));
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        let t = finish_time(&mut k, &done);
        assert!((t - 1.5).abs() < 1e-9, "expected 1.5s, got {t}");
    }

    #[test]
    fn two_flows_share_a_link_evenly() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        let (done2, cb2) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        k.start_flow(&[l], 100, cb2);
        k.run_to_completion();
        // Each gets 50 B/s -> both finish at t=2.
        let t1 = done.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        let t2 = done2.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t1 - 2.0).abs() < 1e-9, "t1={t1}");
        assert!((t2 - 2.0).abs() < 1e-9, "t2={t2}");
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 100, cb);
        // second flow arrives at t=0.5 (when flow 1 has 50 bytes left)
        let (done2, cb2) = make_done(&mut k);
        k.schedule_in(SimDuration::from_secs_f64(0.5), move |k| {
            k.start_flow(&[l], 100, cb2);
        });
        k.run_to_completion();
        // flow1: 50B at 100B/s then 50B at 50B/s -> done at t=1.5
        let t1 = done.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t1 - 1.5).abs() < 1e-6, "t1={t1}");
        // flow2: 50B at 50B/s (until t=1.5), then 50B at 100B/s -> t=2.0
        let t2 = done2.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((t2 - 2.0).abs() < 1e-6, "t2={t2}");
    }

    #[test]
    fn multi_link_path_bottlenecked_by_slowest() {
        let mut k = Kernel::new();
        let fast = k.add_link("fast", 1000.0, SimDuration::ZERO);
        let slow = k.add_link("slow", 10.0, SimDuration::ZERO);
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[fast, slow], 100, cb);
        let t = finish_time(&mut k, &done);
        assert!((t - 10.0).abs() < 1e-9, "expected 10s, got {t}");
    }

    #[test]
    fn empty_path_completes_immediately() {
        let mut k = Kernel::new();
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[], 12345, cb);
        k.run_to_completion();
        assert_eq!(k.now(), SimTime::ZERO);
        assert!(done.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn zero_byte_flow_pays_latency_only() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::from_micros(7));
        let (done, cb) = make_done(&mut k);
        k.start_flow(&[l], 0, cb);
        k.run_to_completion();
        assert_eq!(k.now(), SimTime::ZERO + SimDuration::from_micros(7));
        assert!(done.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn delivered_bytes_accumulate() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 100.0, SimDuration::ZERO);
        for _ in 0..3 {
            k.start_flow(&[l], 50, |_| {});
        }
        k.run_to_completion();
        assert_eq!(k.link_delivered(l), 150);
        assert_eq!(k.active_flows(), 0);
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut k = Kernel::new();
        let a = k.add_link("a", 100.0, SimDuration::ZERO);
        let b = k.add_link("b", 100.0, SimDuration::ZERO);
        let (done_a, cb_a) = make_done(&mut k);
        let (done_b, cb_b) = make_done(&mut k);
        k.start_flow(&[a], 100, cb_a);
        k.start_flow(&[b], 100, cb_b);
        k.run_to_completion();
        let ta = done_a.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        let tb = done_b.load(Ordering::SeqCst) as f64 / PS_PER_SEC as f64;
        assert!((ta - 1.0).abs() < 1e-9);
        assert!((tb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn many_flows_conserve_bytes() {
        let mut k = Kernel::new();
        let l = k.add_link("l", 1e9, SimDuration::from_micros(1));
        let total = Arc::new(AtomicU64::new(0));
        let mut expected = 0u64;
        for i in 1..=64u64 {
            let bytes = i * 1000;
            expected += bytes;
            let total = Arc::clone(&total);
            // stagger starts
            k.schedule_in(SimDuration::from_nanos(i * 100), move |k| {
                k.start_flow(&[l], bytes, move |_| {
                    total.fetch_add(bytes, Ordering::SeqCst);
                });
            });
        }
        k.run_to_completion();
        assert_eq!(total.load(Ordering::SeqCst), expected);
        assert_eq!(k.link_delivered(l), expected);
        assert_eq!(k.active_flows(), 0);
    }

    #[test]
    fn path_helpers() {
        let mut k = Kernel::new();
        let a = k.add_link("a", 100.0, SimDuration::from_micros(1));
        let b = k.add_link("b", 50.0, SimDuration::from_micros(2));
        assert_eq!(k.path_latency(&[a, b]), SimDuration::from_micros(3));
        assert_eq!(k.path_capacity(&[a, b]), 50.0);
        assert_eq!(k.link_name(a), "a");
        assert_eq!(k.link_capacity(b), 50.0);
    }
}
