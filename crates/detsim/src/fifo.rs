//! FIFO service resources.
//!
//! A [`FifoId`] names a queue with a bounded number of concurrent service
//! slots. Tasks submitted to it start in submission order as slots free up.
//! A task is an *asynchronous* unit of work: when started it receives a
//! [`FifoToken`] and may kick off flows or schedule events; the slot is held
//! until someone calls [`Kernel::fifo_task_done`] with the token.
//!
//! This one abstraction models all the serialized engines in the simulated
//! machine: CUDA streams (concurrency 1), GPU copy engines, GPU kernel
//! engines, per-rank MPI progress engines, and NIC packet processors.

use std::collections::VecDeque;

use crate::kernel::Kernel;
use crate::time::SimTime;

/// Identifies a FIFO resource.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FifoId(usize);

/// Proof that a task occupies a slot of a FIFO; hand it back via
/// [`Kernel::fifo_task_done`] to release the slot.
#[derive(Debug)]
#[must_use = "the FIFO slot is held until fifo_task_done is called with this token"]
pub struct FifoToken {
    fifo: FifoId,
}

type Task = Box<dyn FnOnce(&mut Kernel, FifoToken) + Send>;

struct Fifo {
    name: String,
    concurrency: usize,
    active: usize,
    /// Waiting tasks with their submission times (for wait-time metrics).
    queue: VecDeque<(SimTime, Task)>,
    completed: u64,
}

pub(crate) struct FifoTable {
    fifos: Vec<Fifo>,
}

impl FifoTable {
    pub(crate) fn new() -> Self {
        FifoTable { fifos: Vec::new() }
    }
}

impl Kernel {
    /// Create a FIFO resource with `concurrency` simultaneous service slots.
    pub fn add_fifo(&mut self, name: impl Into<String>, concurrency: usize) -> FifoId {
        assert!(concurrency > 0, "fifo needs at least one slot");
        self.fifos.fifos.push(Fifo {
            name: name.into(),
            concurrency,
            active: 0,
            queue: VecDeque::new(),
            completed: 0,
        });
        FifoId(self.fifos.fifos.len() - 1)
    }

    /// Submit a task. It starts immediately if a slot is free, otherwise when
    /// earlier tasks release slots, always in submission order.
    pub fn fifo_submit(
        &mut self,
        fifo: FifoId,
        task: impl FnOnce(&mut Kernel, FifoToken) + Send + 'static,
    ) {
        let now = self.now();
        let f = &mut self.fifos.fifos[fifo.0];
        if f.active < f.concurrency && f.queue.is_empty() {
            f.active += 1;
            if self.metrics.is_enabled() {
                let name: &str = &self.fifos.fifos[fifo.0].name;
                self.metrics
                    .observe("fifo", "wait_ps", &[("fifo", name)], 0.0);
            }
            task(self, FifoToken { fifo });
        } else {
            f.queue.push_back((now, Box::new(task)));
            if self.metrics.is_enabled() {
                let name: &str = &self.fifos.fifos[fifo.0].name;
                self.metrics
                    .gauge_add("fifo", "queue_depth", &[("fifo", name)], 1.0);
            }
        }
    }

    /// Convenience: a task that simply occupies a slot for `service` time.
    /// `on_done` runs when the slot is released.
    pub fn fifo_submit_timed(
        &mut self,
        fifo: FifoId,
        service: crate::time::SimDuration,
        on_done: impl FnOnce(&mut Kernel) + Send + 'static,
    ) {
        self.fifo_submit(fifo, move |k, token| {
            k.schedule_in(service, move |k| {
                k.fifo_task_done(token);
                on_done(k);
            });
        });
    }

    /// Release the slot held by `token`; starts the next queued task, if any.
    pub fn fifo_task_done(&mut self, token: FifoToken) {
        let now = self.now();
        let f = &mut self.fifos.fifos[token.fifo.0];
        debug_assert!(f.active > 0, "fifo_task_done without active task");
        f.active -= 1;
        f.completed += 1;
        if f.active < f.concurrency {
            if let Some((submitted, next)) = f.queue.pop_front() {
                f.active += 1;
                if self.metrics.is_enabled() {
                    let name: &str = &self.fifos.fifos[token.fifo.0].name;
                    let wait = now.since(submitted).picos() as f64;
                    self.metrics
                        .observe("fifo", "wait_ps", &[("fifo", name)], wait);
                    self.metrics
                        .gauge_add("fifo", "queue_depth", &[("fifo", name)], -1.0);
                }
                next(self, FifoToken { fifo: token.fifo });
            }
        }
    }

    /// Number of tasks that have completed on this FIFO.
    pub fn fifo_completed(&self, fifo: FifoId) -> u64 {
        self.fifos.fifos[fifo.0].completed
    }

    /// Tasks currently being served plus queued.
    pub fn fifo_backlog(&self, fifo: FifoId) -> usize {
        let f = &self.fifos.fifos[fifo.0];
        f.active + f.queue.len()
    }

    /// Human-readable FIFO name.
    pub fn fifo_name(&self, fifo: FifoId) -> &str {
        &self.fifos.fifos[fifo.0].name
    }

    /// Diagnostic: all FIFOs with active or queued tasks.
    pub fn busy_fifos(&self) -> Vec<(String, usize, usize)> {
        self.fifos
            .fifos
            .iter()
            .filter(|f| f.active > 0 || !f.queue.is_empty())
            .map(|f| (f.name.clone(), f.active, f.queue.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn serial_fifo_serializes() {
        let mut k = Kernel::new();
        let f = k.add_fifo("stream", 1);
        let ends: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![]));
        for _ in 0..3 {
            let ends = Arc::clone(&ends);
            k.fifo_submit_timed(f, SimDuration::from_micros(10), move |k| {
                ends.lock().push(k.now().picos());
            });
        }
        k.run_to_completion();
        let e = ends.lock();
        assert_eq!(
            *e,
            vec![
                SimDuration::from_micros(10).picos(),
                SimDuration::from_micros(20).picos(),
                SimDuration::from_micros(30).picos()
            ]
        );
        assert_eq!(k.fifo_completed(f), 3);
    }

    #[test]
    fn concurrency_two_overlaps_pairs() {
        let mut k = Kernel::new();
        let f = k.add_fifo("engines", 2);
        let ends: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![]));
        for _ in 0..4 {
            let ends = Arc::clone(&ends);
            k.fifo_submit_timed(f, SimDuration::from_micros(10), move |k| {
                ends.lock().push(k.now().picos());
            });
        }
        k.run_to_completion();
        let us = |n| SimDuration::from_micros(n).picos();
        assert_eq!(*ends.lock(), vec![us(10), us(10), us(20), us(20)]);
    }

    #[test]
    fn async_task_holds_slot_until_done() {
        let mut k = Kernel::new();
        let f = k.add_fifo("stream", 1);
        let l = k.add_link("link", 100.0, SimDuration::ZERO);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(vec![]));
        // Task 1: a flow of 100 bytes (1 second), slot held until it lands.
        let o1 = Arc::clone(&order);
        k.fifo_submit(f, move |k, token| {
            k.start_flow(&[l], 100, move |k| {
                o1.lock().push("flow-done");
                k.fifo_task_done(token);
            });
        });
        // Task 2: instantaneous, but must wait for task 1's flow.
        let o2 = Arc::clone(&order);
        k.fifo_submit(f, move |k, token| {
            o2.lock().push("task2");
            k.fifo_task_done(token);
        });
        k.run_to_completion();
        assert_eq!(*order.lock(), vec!["flow-done", "task2"]);
        assert_eq!(k.now(), SimTime::ZERO + SimDuration::from_secs_f64(1.0));
    }

    #[test]
    fn backlog_tracks_queue() {
        let mut k = Kernel::new();
        let f = k.add_fifo("q", 1);
        for _ in 0..5 {
            k.fifo_submit_timed(f, SimDuration::from_micros(1), |_| {});
        }
        assert_eq!(k.fifo_backlog(f), 5);
        k.run_to_completion();
        assert_eq!(k.fifo_backlog(f), 0);
        assert_eq!(k.fifo_name(f), "q");
    }
}
