//! A minimal thread parker (the `crossbeam::sync::Parker` API surface the
//! scheduler needs), implemented over `std::sync::{Mutex, Condvar}` so the
//! crate has no external dependencies.
//!
//! Semantics: an [`Unparker`] deposits a single token; [`Parker::park`]
//! consumes a token, blocking until one is available. Tokens do not
//! accumulate — many `unpark`s before a `park` release exactly one `park`.
//! Spurious wakeups are absorbed by the token check.

use std::sync::{Arc, Condvar, Mutex};

struct Inner {
    token: Mutex<bool>,
    cv: Condvar,
}

/// The blocking side: owned by the thread that waits.
pub(crate) struct Parker {
    inner: Arc<Inner>,
}

/// The waking side: cloneable handle that deposits run tokens.
#[derive(Clone)]
pub(crate) struct Unparker {
    inner: Arc<Inner>,
}

impl Parker {
    /// A fresh parker with no token deposited.
    pub(crate) fn new() -> Self {
        Parker {
            inner: Arc::new(Inner {
                token: Mutex::new(false),
                cv: Condvar::new(),
            }),
        }
    }

    /// An [`Unparker`] paired with this parker.
    pub(crate) fn unparker(&self) -> Unparker {
        Unparker {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Block until a token is available, then consume it.
    pub(crate) fn park(&self) {
        let mut token = self
            .inner
            .token
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while !*token {
            token = self
                .inner
                .cv
                .wait(token)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        *token = false;
    }
}

impl Unparker {
    /// Deposit a token, waking the parked thread if there is one.
    pub(crate) fn unpark(&self) {
        let mut token = self
            .inner
            .token
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *token = true;
        drop(token);
        self.inner.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unpark_before_park_does_not_block() {
        let p = Parker::new();
        p.unparker().unpark();
        p.park(); // must return immediately
    }

    #[test]
    fn park_blocks_until_unpark() {
        let p = Parker::new();
        let u = p.unparker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            u.unpark();
        });
        p.park();
        h.join().unwrap();
    }

    #[test]
    fn tokens_do_not_accumulate() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark();
        p.park();
        // a second park must block again; unpark from another thread
        let u2 = p.unparker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            u2.unpark();
        });
        p.park();
        h.join().unwrap();
    }
}
