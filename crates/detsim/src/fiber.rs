//! Stackful coroutines ("fibers") for the cooperative scheduler.
//!
//! Each simulated rank runs on its own heap-allocated stack and is entered
//! and exited by swapping the callee-saved register set — spawning a rank is
//! an allocation, and handing over the run token is a function call, not a
//! futex round-trip through the OS scheduler. The context switch saves only
//! what the System V / AAPCS64 ABIs require a callee to preserve; everything
//! else is dead across the call by definition.
//!
//! The module is deliberately minimal: a [`FiberStack`], a `fiber_switch`
//! primitive per architecture, and a [`Runtime`] that owns the per-fiber
//! saved stack pointers plus the scheduler's own context. Policy (who runs
//! next, deadlock detection, panic routing) lives in [`crate::sched`], which
//! is the only user.
//!
//! Safety model, in brief:
//!
//! * All fibers of a [`Runtime`] run on the **same OS thread**, strictly
//!   interleaved — there is no concurrency, so `Cell`s are enough for the
//!   mutable slots and the kernel mutex is never contended.
//! * Unwinding never crosses a `fiber_switch`: the fiber entry wrapper
//!   catches every panic before it could reach the assembly frame.
//! * A fiber that is abandoned mid-flight (simulation poisoned while it
//!   still has frames on its stack) is never resumed again; its stack
//!   memory is freed without running the remaining destructors, which can
//!   leak heap objects but cannot touch freed memory.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::any::Any;
use std::cell::{Cell, RefCell};

/// Message passed into a fiber when it is granted the run token.
pub(crate) const RESUME_RUN: usize = 0;
/// Message passed into a fiber when the simulation has been poisoned and the
/// fiber should unwind instead of continuing its program.
pub(crate) const RESUME_POISON: usize = 1;

/// Default per-fiber stack size: matches the 512 KiB the scheduler used to
/// request for each rank's OS thread, so no program that ran under the
/// thread model can newly overflow.
pub(crate) const DEFAULT_STACK_SIZE: usize = 512 * 1024;

/// Written to the lowest word of every stack; checked after each switch back
/// to the scheduler. Fiber stacks have no OS guard page, so an overflow
/// scribbles over adjacent heap — the canary turns that into a loud abort
/// instead of silent corruption.
const STACK_CANARY: u64 = 0xFEED_FACE_CAFE_BEEF;

/// The boxed entry closure a fiber runs. Receives the first resume message
/// ([`RESUME_RUN`] or [`RESUME_POISON`]) and must never return: it ends by
/// switching back to the scheduler forever.
pub(crate) type FiberFn = Box<dyn FnOnce(usize)>;

// ---------------------------------------------------------------------------
// Context switch (per architecture)
// ---------------------------------------------------------------------------
//
// `fiber_switch(save, restore, msg)` pushes the callee-saved registers on
// the current stack, stores the resulting stack pointer to `*save`, loads a
// new stack pointer from `*restore`, pops the callee-saved registers from
// it, and returns `msg` to whatever call site that stack was suspended in.
// A freshly initialized stack "returns" into `fiber_tramp`, which forwards
// the stashed closure pointer and the message to `fiber_entry`.

#[cfg(target_arch = "x86_64")]
#[unsafe(naked)]
pub(crate) unsafe extern "sysv64" fn fiber_switch(
    save: *mut *mut u8,
    restore: *mut *mut u8,
    msg: usize,
) -> usize {
    core::arch::naked_asm!(
        // Callee-saved per SysV: rbp, rbx, r12-r15 (rsp implicitly).
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        // The message rides through the switch in rdx and becomes the
        // return value on the resumed side.
        "mov rax, rdx",
        "ret",
    )
}

#[cfg(target_arch = "x86_64")]
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_tramp() {
    core::arch::naked_asm!(
        // First activation of a fresh stack: the init frame put the closure
        // pointer in r12 and `fiber_switch` left the resume message in rax.
        "mov rdi, r12",
        "mov rsi, rax",
        // Terminate unwinder/backtrace frame chains here.
        "xor ebp, ebp",
        "and rsp, -16",
        "call {entry}",
        "ud2",
        entry = sym fiber_entry,
    )
}

#[cfg(target_arch = "x86_64")]
unsafe extern "sysv64" fn fiber_entry(arg: *mut u8, msg: usize) -> ! {
    fiber_entry_impl(arg, msg)
}

#[cfg(target_arch = "aarch64")]
#[unsafe(naked)]
pub(crate) unsafe extern "C" fn fiber_switch(
    save: *mut *mut u8,
    restore: *mut *mut u8,
    msg: usize,
) -> usize {
    core::arch::naked_asm!(
        // Callee-saved per AAPCS64: x19-x28, fp (x29), lr (x30), d8-d15.
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x9, sp",
        "str x9, [x0]",
        "ldr x9, [x1]",
        "mov sp, x9",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "mov x0, x2",
        "ret",
    )
}

#[cfg(target_arch = "aarch64")]
#[unsafe(naked)]
unsafe extern "C" fn fiber_tramp() {
    core::arch::naked_asm!(
        // Fresh stack: closure pointer was stashed in x19, message arrived
        // in x0 (moved there from x2 by fiber_switch before `ret`).
        "mov x1, x0",
        "mov x0, x19",
        "mov x29, xzr",
        "mov x30, xzr",
        "bl {entry}",
        "brk #0x1",
        entry = sym fiber_entry,
    )
}

#[cfg(target_arch = "aarch64")]
unsafe extern "C" fn fiber_entry(arg: *mut u8, msg: usize) -> ! {
    fiber_entry_impl(arg, msg)
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("detsim's fiber runtime supports x86_64 and aarch64 only");

fn fiber_entry_impl(arg: *mut u8, msg: usize) -> ! {
    {
        // Reclaim the double-boxed closure stashed by `Runtime::spawn`.
        let f: Box<FiberFn> = unsafe { Box::from_raw(arg.cast()) };
        f(msg);
    }
    // The closure must end by parking itself in the runtime (it switches to
    // the scheduler in a loop and is never resumed once finished). If it
    // ever returns there is no frame to return into; fail loudly.
    eprintln!("detsim: fiber entry returned — runtime bug");
    std::process::abort();
}

// ---------------------------------------------------------------------------
// Stacks
// ---------------------------------------------------------------------------

/// A heap-allocated fiber stack with a canary word at the overflow end.
struct FiberStack {
    base: *mut u8,
    layout: Layout,
}

impl FiberStack {
    fn new(size: usize) -> Self {
        let layout = Layout::from_size_align(size, 16).expect("fiber stack layout");
        let base = unsafe { alloc(layout) };
        if base.is_null() {
            handle_alloc_error(layout);
        }
        // Stacks grow down, so the lowest word is the last one a deep call
        // chain would reach.
        unsafe { base.cast::<u64>().write(STACK_CANARY) };
        FiberStack { base, layout }
    }

    fn canary_intact(&self) -> bool {
        unsafe { self.base.cast::<u64>().read() == STACK_CANARY }
    }

    /// Lay out the initial frame so the first `fiber_switch` into this stack
    /// "returns" into `fiber_tramp` with `arg` in the stash register.
    /// Returns the stack pointer to store in the fiber's slot.
    fn init_frame(&mut self, arg: *mut u8) -> *mut u8 {
        let top = unsafe { self.base.add(self.layout.size()) };
        let top = ((top as usize) & !15) as *mut u8;
        unsafe {
            #[cfg(target_arch = "x86_64")]
            {
                // Matches the pop order in fiber_switch: r15, r14, r13, r12,
                // rbx, rbp, then `ret` into the trampoline.
                let sp = top.sub(64).cast::<u64>();
                sp.add(0).write(0); // r15
                sp.add(1).write(0); // r14
                sp.add(2).write(0); // r13
                sp.add(3).write(arg as u64); // r12 -> closure pointer
                sp.add(4).write(0); // rbx
                sp.add(5).write(0); // rbp
                sp.add(6).write(fiber_tramp as *const () as u64); // return address
                sp.cast()
            }
            #[cfg(target_arch = "aarch64")]
            {
                // Matches the ldp layout in fiber_switch; lr (x30) carries
                // the trampoline address, x19 the closure pointer.
                let sp = top.sub(160).cast::<u64>();
                for i in 0..20 {
                    sp.add(i).write(0);
                }
                sp.add(0).write(arg as u64); // x19 -> closure pointer
                sp.add(11).write(fiber_tramp as *const () as u64); // x30 (lr)
                sp.cast()
            }
        }
    }
}

impl Drop for FiberStack {
    fn drop(&mut self) {
        unsafe { dealloc(self.base, self.layout) };
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

struct FiberSlot {
    /// Saved stack pointer while the fiber is suspended; meaningless while
    /// it runs.
    sp: Cell<*mut u8>,
    stack: FiberStack,
}

/// Owns every fiber of one `Sim::run_programs` call plus the scheduler's own
/// saved context. Lives on the scheduler's stack for the duration of the
/// run; fibers hold a raw pointer to it (valid because the runtime strictly
/// outlives every resumable fiber).
pub(crate) struct Runtime {
    sched_sp: Cell<*mut u8>,
    slots: RefCell<Vec<FiberSlot>>,
    /// First real (non-poison) panic payload captured from a fiber.
    panic_payload: Cell<Option<Box<dyn Any + Send>>>,
}

impl Runtime {
    pub(crate) fn new(capacity: usize) -> Self {
        Runtime {
            sched_sp: Cell::new(std::ptr::null_mut()),
            slots: RefCell::new(Vec::with_capacity(capacity)),
            panic_payload: Cell::new(None),
        }
    }

    /// Allocate a stack for fiber `tid` (== current slot count) and arm it
    /// with `f`. Must be called for all fibers before the first `resume`.
    pub(crate) fn spawn(&self, f: FiberFn, stack_size: usize) {
        let mut stack = FiberStack::new(stack_size);
        // Double-box so a single thin pointer carries the fat closure.
        let arg = Box::into_raw(Box::new(f)) as *mut u8;
        let sp = Cell::new(stack.init_frame(arg));
        self.slots.borrow_mut().push(FiberSlot { sp, stack });
    }

    /// Scheduler side: run fiber `tid` until it switches back. Returns the
    /// message the fiber passed on its way out (currently unused).
    ///
    /// # Safety
    /// Must be called from the scheduler context only, for a spawned,
    /// unfinished, un-abandoned fiber.
    pub(crate) unsafe fn resume(&self, tid: usize, msg: usize) -> usize {
        let (save, restore) = {
            let slots = self.slots.borrow();
            (self.sched_sp.as_ptr(), slots[tid].sp.as_ptr())
        };
        let out = unsafe { fiber_switch(save, restore, msg) };
        if !self.slots.borrow()[tid].stack.canary_intact() {
            // Adjacent allocations are already clobbered; unwinding through
            // them would make it worse.
            eprintln!(
                "detsim: fiber {tid} overflowed its stack (canary clobbered); \
                 raise it with Sim::stack_size. aborting"
            );
            std::process::abort();
        }
        out
    }

    /// Fiber side: suspend fiber `tid` and hand control to the scheduler.
    /// Returns the message of the next resume.
    ///
    /// # Safety
    /// Must be called from fiber `tid` itself.
    pub(crate) unsafe fn yield_to_scheduler(&self, tid: usize, msg: usize) -> usize {
        let (save, restore) = {
            let slots = self.slots.borrow();
            (slots[tid].sp.as_ptr(), self.sched_sp.as_ptr())
        };
        unsafe { fiber_switch(save, restore, msg) }
    }

    /// Record a fiber's real panic payload; the first one wins (matching the
    /// old thread model, which preferred the original panic over cascades).
    pub(crate) fn store_panic(&self, p: Box<dyn Any + Send>) {
        let prev = self.panic_payload.take();
        self.panic_payload.set(Some(match prev {
            Some(first) => first,
            None => p,
        }));
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic_payload.take()
    }
}
