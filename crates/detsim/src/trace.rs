//! Timeline tracing: spans on named tracks, exportable as Chrome trace JSON
//! (load in `chrome://tracing` / Perfetto) or rendered as an ASCII timeline.
//!
//! Used to reproduce the paper's Fig. 9 (overlapped exchange operations).

use std::fmt::Write as _;

use crate::time::SimTime;

/// Identifies a trace track (rendered as one row / thread in the viewer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TrackId(usize);

/// A completed interval on a track.
#[derive(Clone, Debug)]
pub struct Span {
    /// Track the span belongs to.
    pub track: TrackId,
    /// Display name (e.g. "pack", "Isend").
    pub name: String,
    /// Category; its first letter is used in ASCII rendering.
    pub category: &'static str,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
}

/// Trace recorder. Disabled by default — recording costs nothing until
/// [`Trace::enable`] is called.
pub struct Trace {
    enabled: bool,
    tracks: Vec<String>,
    spans: Vec<Span>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// A disabled trace with no tracks.
    pub fn new() -> Self {
        Trace {
            enabled: false,
            tracks: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Begin recording spans.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register a named track. Call regardless of enablement so ids are
    /// stable whether or not the trace records.
    pub fn add_track(&mut self, name: impl Into<String>) -> TrackId {
        self.tracks.push(name.into());
        TrackId(self.tracks.len() - 1)
    }

    /// Record a completed `[start, end]` span. No-op while disabled.
    pub fn record(
        &mut self,
        track: TrackId,
        name: impl Into<String>,
        category: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            track,
            name: name.into(),
            category,
            start,
            end,
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Name of track `t`.
    pub fn track_name(&self, t: TrackId) -> &str {
        &self.tracks[t.0]
    }

    /// Number of registered tracks.
    pub fn num_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Serialize as Chrome trace-event JSON ("X" complete events,
    /// microsecond timestamps). Hand-rolled writer: the format is trivial and
    /// this avoids a JSON dependency.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str, out: &mut String) {
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (i, name) in self.tracks.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("{\"ph\":\"M\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{i}");
            out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
            esc(name, &mut out);
            out.push_str("\"}}");
        }
        for s in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{}", s.track.0);
            out.push_str(",\"name\":\"");
            esc(&s.name, &mut out);
            out.push_str("\",\"cat\":\"");
            esc(s.category, &mut out);
            let ts = s.start.picos() as f64 / 1e6; // ps -> us
            let dur = (s.end.picos().saturating_sub(s.start.picos())) as f64 / 1e6;
            let _ = write!(out, "\",\"ts\":{ts:.3},\"dur\":{dur:.3}}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Render an ASCII timeline (one row per track), `width` characters wide.
    /// Each span is drawn with the first letter of its category. The window
    /// starts at the earliest recorded span (idle prefix clipped).
    pub fn to_ascii(&self, width: usize) -> String {
        let t_min = self
            .spans
            .iter()
            .map(|s| s.start.picos())
            .min()
            .unwrap_or(0);
        let t_end = self
            .spans
            .iter()
            .map(|s| s.end.picos())
            .max()
            .unwrap_or(0)
            .max(t_min + 1)
            - t_min;
        let label_w = self
            .tracks
            .iter()
            .map(|t| t.len())
            .max()
            .unwrap_or(0)
            .min(28);
        let mut out = String::new();
        for (i, tname) in self.tracks.iter().enumerate() {
            let mut row = vec![b'.'; width];
            let mut any = false;
            for s in &self.spans {
                if s.track.0 != i {
                    continue;
                }
                any = true;
                let a =
                    ((s.start.picos() - t_min) as u128 * width as u128 / t_end as u128) as usize;
                let b = ((s.end.picos() - t_min) as u128 * width as u128 / t_end as u128) as usize;
                let b = b.clamp(a + 1, width).max(a + 1).min(width);
                let ch = s.category.bytes().next().unwrap_or(b'#');
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            if !any {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>label_w$} |{}|",
                &tname[..tname.len().min(28)],
                String::from_utf8_lossy(&row)
            );
        }
        let _ = writeln!(
            out,
            "{:>label_w$}  {:.3} {:-^w$} {:.3} ms",
            "",
            t_min as f64 / 1e9,
            "time",
            (t_min + t_end) as f64 / 1e9,
            w = width.saturating_sub(16)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        let track = tr.add_track("gpu0");
        tr.record(track, "pack", "kernel", t(0), t(10));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn enabled_trace_records_spans() {
        let mut tr = Trace::new();
        tr.enable();
        let track = tr.add_track("gpu0");
        tr.record(track, "pack", "kernel", t(0), t(10));
        tr.record(track, "copy", "memcpy", t(10), t(30));
        assert_eq!(tr.spans().len(), 2);
        assert_eq!(tr.track_name(track), "gpu0");
        assert_eq!(tr.num_tracks(), 1);
    }

    #[test]
    fn chrome_json_is_well_formed_ish() {
        let mut tr = Trace::new();
        tr.enable();
        let track = tr.add_track("gpu \"0\"");
        tr.record(track, "pack\n", "kernel", t(5), t(15));
        let json = tr.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\\\"0\\\""), "quotes escaped: {json}");
        assert!(json.contains("\\n"), "newline escaped");
        assert!(json.contains("\"ts\":5.000"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn ascii_render_shows_spans() {
        let mut tr = Trace::new();
        tr.enable();
        let a = tr.add_track("gpu0");
        let b = tr.add_track("gpu1");
        tr.record(a, "pack", "kernel", t(0), t(50));
        tr.record(b, "copy", "memcpy", t(50), t(100));
        let s = tr.to_ascii(40);
        assert!(s.contains("gpu0"));
        assert!(s.contains('k'), "kernel span rendered: {s}");
        assert!(s.contains('m'), "memcpy span rendered: {s}");
    }
}
