//! # detsim — deterministic discrete-event simulation kernel
//!
//! The foundation of the `stencil-rs` reproduction of *Node-Aware Stencil
//! Communication for Heterogeneous Supercomputers* (Pearson et al., 2020):
//! a small, exactly-reproducible simulator that supplies the pieces the
//! higher layers (simulated CUDA, simulated MPI, the stencil library) are
//! built from.
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) — integer picoseconds.
//! * **Event queue** ([`Kernel`]) — `(time, sequence)`-ordered callbacks.
//! * **Completions** ([`Completion`]) — one-shot signals connecting events,
//!   callbacks, and blocked threads.
//! * **Flow network** — bulk transfers over shared links with bottleneck
//!   fair-share bandwidth division (models NVLink / X-Bus / InfiniBand
//!   contention).
//! * **FIFO resources** — bounded-concurrency service queues (models CUDA
//!   streams, copy engines, kernel engines, MPI progress threads).
//! * **Cooperative scheduler** ([`Sim`], [`SimCtx`]) — simulated processes
//!   run as stackful coroutines on one OS thread, one at a time, handed a
//!   run token in deterministic order; blocking operations advance virtual
//!   time. Spawning a rank is an allocation, not a syscall, so worlds of
//!   tens of thousands of ranks are practical (see `docs/RUNTIME.md`).
//! * **Tracing** ([`trace::Trace`]) — span timelines exportable as Chrome
//!   trace JSON or ASCII art (reproduces the paper's Fig. 9).
//! * **Metrics** ([`Metrics`]) — a deterministic registry of counters,
//!   gauges, and histograms fed by the flow network, the FIFOs, and the
//!   upper layers; disabled by default with near-zero overhead, rendered
//!   as a text table or JSON by [`MetricsReport`] (see
//!   `docs/OBSERVABILITY.md`).
//!
//! ## Example: two ranks ping-ponging over a shared link
//!
//! ```
//! use detsim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new();
//! let link = sim.with_kernel(|k| k.add_link("wire", 1e9, SimDuration::from_micros(1)));
//! sim.run(1, move |ctx| {
//!     let done = ctx.with_kernel(|k| {
//!         let c = k.completion();
//!         let c2 = c.clone();
//!         k.start_flow(&[link], 1_000_000, move |k| k.complete(&c2));
//!         c
//!     });
//!     ctx.wait(&done);
//!     // 1 MB at 1 GB/s = 1 ms, plus 1 us latency
//!     assert_eq!(ctx.now().picos(), 1_001_000_000_000 / 1_000);
//! });
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_doctest_main)]

mod fiber;
mod fifo;
mod flow;
mod kernel;
pub mod metrics;
mod sched;
mod time;
pub mod trace;

pub use fifo::{FifoId, FifoToken};
pub use flow::{FlowId, LinkId};
pub use kernel::{Action, Completion, Kernel};
pub use metrics::{Metrics, MetricsReport, SCHEMA_VERSION};
pub use sched::{Program, Sim, SimCtx};
pub use time::{SimDuration, SimTime, PS_PER_SEC};
