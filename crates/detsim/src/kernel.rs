//! The simulation kernel: virtual clock, deterministic event queue, and
//! one-shot completions.
//!
//! All simulation state (links, flows, FIFOs, traces, scheduler bookkeeping)
//! hangs off [`Kernel`]. Exactly one thread touches the kernel at a time (it
//! lives behind a mutex owned by [`crate::Sim`]), so event callbacks get
//! `&mut Kernel` and can mutate anything.
//!
//! Determinism: events are ordered by `(time, sequence-number)` where the
//! sequence number is assigned at scheduling time. Two events scheduled for
//! the same instant therefore execute in scheduling order, independent of
//! heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fifo::FifoTable;
use crate::flow::{FlowId, FlowNet};
use crate::metrics::Metrics;
use crate::sched::SchedState;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// A callback run by the event loop. Runs at most once.
pub type Action = Box<dyn FnOnce(&mut Kernel) + Send>;

/// A type-erased `FnOnce(&mut Kernel)` that stores one-word closures inline
/// instead of boxing them.
///
/// Event churn at paper scale is dominated by tiny closures — typically a
/// single completion handle or id — so keeping the capture inside the event
/// itself removes a heap round-trip per scheduled event. Closures that
/// don't fit in one word fall back to a (thin) box, transparently. The
/// whole thing is two words — payload plus a `&'static` vtable — which
/// keeps `Event` at the same size the old fat-boxed `Action` gave it:
/// growing events would slow every `BinaryHeap` sift for *all* event kinds,
/// including the flow completions that dominate paper-scale heaps.
pub(crate) struct SmallAction {
    data: MaybeUninit<*mut ()>,
    vtable: &'static ActionVTable,
}

struct ActionVTable {
    call: unsafe fn(*mut *mut (), &mut Kernel),
    drop: unsafe fn(*mut *mut ()),
}

// SAFETY: constructed only from `F: Send` closures (enforced by `new`), and
// the vtable functions only touch that F.
unsafe impl Send for SmallAction {}

impl SmallAction {
    pub(crate) fn new<F: FnOnce(&mut Kernel) + Send + 'static>(f: F) -> Self {
        let mut data = MaybeUninit::<*mut ()>::uninit();
        if size_of::<F>() <= size_of::<*mut ()>() && align_of::<F>() <= align_of::<*mut ()>() {
            unsafe { data.as_mut_ptr().cast::<F>().write(f) };
            SmallAction {
                data,
                vtable: &ActionVTable {
                    call: call_inline::<F>,
                    drop: drop_inline::<F>,
                },
            }
        } else {
            let p = Box::into_raw(Box::new(f));
            unsafe { data.as_mut_ptr().cast::<*mut F>().write(p) };
            SmallAction {
                data,
                vtable: &ActionVTable {
                    call: call_boxed::<F>,
                    drop: drop_boxed::<F>,
                },
            }
        }
    }

    /// Invoke the closure, consuming it.
    pub(crate) fn call(self, k: &mut Kernel) {
        let mut this = ManuallyDrop::new(self);
        unsafe { (this.vtable.call)(this.data.as_mut_ptr(), k) }
    }
}

impl Drop for SmallAction {
    fn drop(&mut self) {
        unsafe { (self.vtable.drop)(self.data.as_mut_ptr()) }
    }
}

unsafe fn call_inline<F: FnOnce(&mut Kernel)>(data: *mut *mut (), k: &mut Kernel) {
    let f = unsafe { data.cast::<F>().read() };
    f(k)
}

unsafe fn drop_inline<F>(data: *mut *mut ()) {
    unsafe { std::ptr::drop_in_place(data.cast::<F>()) }
}

unsafe fn call_boxed<F: FnOnce(&mut Kernel)>(data: *mut *mut (), k: &mut Kernel) {
    let f = unsafe { Box::from_raw(data.cast::<*mut F>().read()) };
    f(k)
}

unsafe fn drop_boxed<F>(data: *mut *mut ()) {
    drop(unsafe { Box::from_raw(data.cast::<*mut F>().read()) });
}

/// What happens when an event fires. Flow completions — by far the most
/// common event at paper scale, and the only kind that is routinely
/// superseded — are a plain enum variant instead of a boxed closure, so
/// re-projecting a flow allocates nothing and a stale completion can be
/// recognized (and dropped) without executing it. Timer wakes (the
/// `SimCtx::delay` fast path) are likewise a bare variant: waking a rank
/// needs no completion object at all.
pub(crate) enum EventKind {
    /// Run a callback (inline if small, boxed otherwise).
    Call(SmallAction),
    /// Deliver the last byte of flow `fid`, provided its generation still
    /// equals `gen` (otherwise the event is stale: the flow was re-rated or
    /// already finished and the slot possibly reused).
    FlowFinish { fid: FlowId, gen: u64 },
    /// Wake rank `tid` from a `SimCtx::delay`, provided `token` is still
    /// the wake it is armed for (see `SchedState::fire_wake`).
    Wake { tid: usize, token: u64 },
}

pub(crate) struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

/// Append an event to a queue, assigning the next sequence number. A free
/// function (not a method) so the flow network can schedule completions
/// while holding disjoint borrows of other kernel fields.
pub(crate) fn push_event(
    queue: &mut BinaryHeap<Event>,
    next_seq: &mut u64,
    at: SimTime,
    kind: EventKind,
) {
    let seq = *next_seq;
    *next_seq += 1;
    queue.push(Event { at, seq, kind });
}

/// Compact the heap once at least this many stale completions accumulated
/// (and they make up at least half the queue — see [`Kernel::step`]).
const STALE_COMPACT_MIN: usize = 4096;

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

enum CompletionState {
    Pending {
        /// Rank ids to make runnable when this completes.
        waiters: Vec<usize>,
        /// Callbacks to run (in registration order) when this completes.
        callbacks: Vec<SmallAction>,
    },
    Done,
}

/// A one-shot completion signal.
///
/// Threads block on completions via [`crate::SimCtx::wait`]; event callbacks
/// chain off them via [`Kernel::on_complete`]. Cloning yields another handle
/// to the same underlying signal.
#[derive(Clone)]
pub struct Completion(Arc<Mutex<CompletionState>>);

impl Completion {
    pub(crate) fn new() -> Self {
        Completion(Arc::new(Mutex::new(CompletionState::Pending {
            waiters: Vec::new(),
            callbacks: Vec::new(),
        })))
    }

    /// Whether the completion has fired. Only meaningful while holding the
    /// kernel lock (i.e. from sim threads or event callbacks).
    pub fn is_done(&self) -> bool {
        matches!(*self.0.lock(), CompletionState::Done)
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Completion({})",
            if self.is_done() { "done" } else { "pending" }
        )
    }
}

/// The heart of the simulator. See module docs.
pub struct Kernel {
    now: SimTime,
    pub(crate) next_seq: u64,
    pub(crate) queue: BinaryHeap<Event>,
    pub(crate) flows: FlowNet,
    pub(crate) fifos: FifoTable,
    pub(crate) sched: SchedState,
    /// Trace recorder (spans + instants) for timeline output.
    pub trace: Trace,
    /// Metrics registry (counters, gauges, histograms); disabled by default.
    pub metrics: Metrics,
    executed_events: u64,
    /// Flow-completion events still queued whose generation no longer
    /// matches their flow — bumped by the flow network on every
    /// re-projection, decremented as stale events are skipped or compacted.
    pub(crate) stale_pending: usize,
    /// Stale completions discarded so far (skipped at pop or compacted).
    stale_dropped: u64,
    /// Times the event heap was rebuilt to shed stale completions.
    compactions: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// A fresh kernel at t = 0 with no hardware.
    pub fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            flows: FlowNet::new(),
            fifos: FifoTable::new(),
            sched: SchedState::new(),
            trace: Trace::new(),
            metrics: Metrics::new(),
            executed_events: 0,
            stale_pending: 0,
            stale_dropped: 0,
            compactions: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics). Stale flow
    /// completions are skipped, not executed, and do not count.
    pub fn executed_events(&self) -> u64 {
        self.executed_events
    }

    /// Stale flow-completion events discarded so far (diagnostics).
    pub fn stale_events_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Times the event heap was compacted to shed stale completions
    /// (diagnostics).
    pub fn heap_compactions(&self) -> u64 {
        self.compactions
    }

    /// Events currently queued, live and stale (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `action` to run at absolute time `at`. Scheduling into the
    /// past is clamped to "now" (it still runs strictly after the current
    /// callback returns).
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Kernel) + Send + 'static) {
        let at = at.max(self.now);
        push_event(
            &mut self.queue,
            &mut self.next_seq,
            at,
            EventKind::Call(SmallAction::new(action)),
        );
    }

    /// Arm and schedule a bare timer wake for rank `tid`, `d` from now: the
    /// `SimCtx::delay` fast path. One event, same `(time, seq)` key a
    /// completion-based delay would have consumed — virtual times are
    /// unchanged — but no completion allocation and no callback.
    pub(crate) fn schedule_wake(&mut self, tid: usize, d: SimDuration) {
        let token = self.sched.arm_wake(tid);
        push_event(
            &mut self.queue,
            &mut self.next_seq,
            self.now + d,
            EventKind::Wake { tid, token },
        );
    }

    /// Schedule `action` to run `d` from now.
    pub fn schedule_in(
        &mut self,
        d: SimDuration,
        action: impl FnOnce(&mut Kernel) + Send + 'static,
    ) {
        self.schedule_at(self.now + d, action);
    }

    /// Create a fresh pending completion.
    pub fn completion(&mut self) -> Completion {
        Completion::new()
    }

    /// Create a completion that fires `d` from now.
    pub fn completion_in(&mut self, d: SimDuration) -> Completion {
        let c = Completion::new();
        let c2 = c.clone();
        self.schedule_in(d, move |k| k.complete(&c2));
        c
    }

    /// Create a completion that fires when all of `parts` have fired.
    /// An empty slice yields an already-done completion.
    pub fn completion_all(&mut self, parts: &[Completion]) -> Completion {
        let all = Completion::new();
        let pending: Vec<&Completion> = parts.iter().filter(|c| !c.is_done()).collect();
        if pending.is_empty() {
            self.complete(&all);
            return all;
        }
        let count = Arc::new(Mutex::new(pending.len()));
        for part in pending {
            let all = all.clone();
            let count = Arc::clone(&count);
            self.on_complete(part, move |k| {
                let mut n = count.lock();
                *n -= 1;
                let zero = *n == 0;
                drop(n);
                if zero {
                    k.complete(&all);
                }
            });
        }
        all
    }

    /// Fire a completion: wake all waiting threads and run all chained
    /// callbacks (in registration order). Completing twice is a no-op.
    pub fn complete(&mut self, c: &Completion) {
        let prev = std::mem::replace(&mut *c.0.lock(), CompletionState::Done);
        if let CompletionState::Pending { waiters, callbacks } = prev {
            for tid in waiters {
                self.sched.make_runnable(tid);
            }
            for cb in callbacks {
                cb.call(self);
            }
        }
    }

    /// Run `action` when `c` completes; immediately if it already has.
    pub fn on_complete(
        &mut self,
        c: &Completion,
        action: impl FnOnce(&mut Kernel) + Send + 'static,
    ) {
        let mut st = c.0.lock();
        match &mut *st {
            CompletionState::Pending { callbacks, .. } => {
                callbacks.push(SmallAction::new(action));
            }
            CompletionState::Done => {
                drop(st);
                action(self);
            }
        }
    }

    /// Register sim thread `tid` as a waiter. Returns `true` if the
    /// completion was already done (no registration happened).
    pub(crate) fn add_waiter(&mut self, c: &Completion, tid: usize) -> bool {
        let mut st = c.0.lock();
        match &mut *st {
            CompletionState::Pending { waiters, .. } => {
                waiters.push(tid);
                false
            }
            CompletionState::Done => true,
        }
    }

    /// Whether any events remain queued.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Execute the earliest pending event (advancing the clock to it).
    /// Returns `false` if the queue was empty.
    ///
    /// A stale flow completion (generation mismatch) is discarded without
    /// advancing the clock or counting as executed; the call still returns
    /// `true` because the queue made progress. When enough stale events
    /// accumulate (`STALE_COMPACT_MIN`, and at least half the queue), the
    /// heap is rebuilt without them so their `O(log n)` sift cost and
    /// memory are not paid for the rest of the run.
    pub fn step(&mut self) -> bool {
        if self.stale_pending >= STALE_COMPACT_MIN && self.stale_pending * 2 >= self.queue.len() {
            self.compact_queue();
        }
        match self.queue.pop() {
            Some(ev) => {
                match ev.kind {
                    EventKind::Call(action) => {
                        debug_assert!(ev.at >= self.now, "event queue went backwards");
                        self.now = ev.at;
                        self.executed_events += 1;
                        action.call(self);
                    }
                    EventKind::Wake { tid, token } => {
                        debug_assert!(ev.at >= self.now, "event queue went backwards");
                        self.now = ev.at;
                        self.executed_events += 1;
                        self.sched.fire_wake(tid, token);
                    }
                    EventKind::FlowFinish { fid, gen } => {
                        if self.flows.is_fresh(fid, gen) {
                            debug_assert!(ev.at >= self.now, "event queue went backwards");
                            self.now = ev.at;
                            self.executed_events += 1;
                            self.finish_flow(fid, gen);
                        } else {
                            self.stale_pending = self.stale_pending.saturating_sub(1);
                            self.stale_dropped += 1;
                        }
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Rebuild the event heap without stale flow completions. Pop order of
    /// the survivors is unchanged: the comparator is the same and `(time,
    /// seq)` keys are unique.
    fn compact_queue(&mut self) {
        let before = self.queue.len();
        let mut events = std::mem::take(&mut self.queue).into_vec();
        events.retain(|ev| match ev.kind {
            EventKind::Call(_) | EventKind::Wake { .. } => true,
            EventKind::FlowFinish { fid, gen } => self.flows.is_fresh(fid, gen),
        });
        let dropped = before - events.len();
        self.queue = BinaryHeap::from(events);
        self.stale_pending = self.stale_pending.saturating_sub(dropped);
        self.stale_dropped += dropped as u64;
        self.compactions += 1;
    }

    /// Run the event loop until the queue drains. For pure event-driven
    /// simulations (no sim threads).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run the event loop until `c` completes or the queue drains. Returns
    /// `true` if `c` completed.
    pub fn run_until(&mut self, c: &Completion) -> bool {
        while !c.is_done() {
            if !self.step() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_execute_in_time_order() {
        let mut k = Kernel::new();
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(vec![]));
        for (i, us) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let log = Arc::clone(&log);
            k.schedule_in(SimDuration::from_micros(us), move |_| log.lock().push(i));
        }
        k.run_to_completion();
        assert_eq!(*log.lock(), vec![2, 3, 1]);
        assert_eq!(k.now(), SimTime::ZERO + SimDuration::from_micros(30));
    }

    #[test]
    fn same_time_events_execute_in_schedule_order() {
        let mut k = Kernel::new();
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(vec![]));
        for i in 0..100u32 {
            let log = Arc::clone(&log);
            k.schedule_in(SimDuration::from_micros(5), move |_| log.lock().push(i));
        }
        k.run_to_completion();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_from_callbacks() {
        let mut k = Kernel::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(vec![]));
        let l2 = Arc::clone(&log);
        k.schedule_in(SimDuration::from_micros(1), move |k| {
            l2.lock().push("outer");
            let l3 = Arc::clone(&l2);
            k.schedule_in(SimDuration::from_micros(1), move |_| {
                l3.lock().push("inner");
            });
        });
        k.run_to_completion();
        assert_eq!(*log.lock(), vec!["outer", "inner"]);
        assert_eq!(k.now(), SimTime::ZERO + SimDuration::from_micros(2));
    }

    #[test]
    fn completion_fires_callbacks_in_order() {
        let mut k = Kernel::new();
        let c = k.completion();
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(vec![]));
        for i in 0..5u32 {
            let log = Arc::clone(&log);
            k.on_complete(&c, move |_| log.lock().push(i));
        }
        assert!(!c.is_done());
        k.complete(&c);
        assert!(c.is_done());
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn on_complete_after_done_runs_immediately() {
        let mut k = Kernel::new();
        let c = k.completion();
        k.complete(&c);
        let hit = Arc::new(Mutex::new(false));
        let h2 = Arc::clone(&hit);
        k.on_complete(&c, move |_| *h2.lock() = true);
        assert!(*hit.lock());
    }

    #[test]
    fn double_complete_is_noop() {
        let mut k = Kernel::new();
        let c = k.completion();
        let hits = Arc::new(Mutex::new(0));
        let h2 = Arc::clone(&hits);
        k.on_complete(&c, move |_| *h2.lock() += 1);
        k.complete(&c);
        k.complete(&c);
        assert_eq!(*hits.lock(), 1);
    }

    #[test]
    fn completion_all_waits_for_every_part() {
        let mut k = Kernel::new();
        let a = k.completion_in(SimDuration::from_micros(10));
        let b = k.completion_in(SimDuration::from_micros(20));
        let all = k.completion_all(&[a, b]);
        assert!(k.run_until(&all));
        assert_eq!(k.now(), SimTime::ZERO + SimDuration::from_micros(20));
    }

    #[test]
    fn completion_all_empty_is_done() {
        let mut k = Kernel::new();
        let all = k.completion_all(&[]);
        assert!(all.is_done());
    }

    #[test]
    fn run_until_reports_unreachable_completion() {
        let mut k = Kernel::new();
        let c = k.completion();
        assert!(!k.run_until(&c));
    }

    #[test]
    fn schedule_into_past_clamps_to_now() {
        let mut k = Kernel::new();
        let fired_at = Arc::new(Mutex::new(SimTime::ZERO));
        let f2 = Arc::clone(&fired_at);
        k.schedule_in(SimDuration::from_micros(10), move |k| {
            let f3 = Arc::clone(&f2);
            // deliberately "before now"
            k.schedule_at(SimTime::ZERO, move |k| *f3.lock() = k.now());
        });
        k.run_to_completion();
        assert_eq!(
            *fired_at.lock(),
            SimTime::ZERO + SimDuration::from_micros(10)
        );
    }
}
