//! Virtual time for the discrete-event simulation.
//!
//! Time is kept as an integer count of picoseconds so that simulations are
//! exactly reproducible: there is no accumulated floating-point drift in the
//! clock itself. Durations derived from bandwidth math are computed in `f64`
//! and rounded up to the next picosecond.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An instant in virtual time, measured in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, measured in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Picoseconds since simulation start.
    #[inline]
    pub fn picos(self) -> u64 {
        self.0
    }

    /// Convert to (floating-point) seconds. Used for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "SimTime::since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Construct from floating-point seconds, rounding up to the next
    /// picosecond. Negative or NaN inputs are treated as zero; infinite
    /// inputs saturate.
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN and negatives both land in the zero branch on purpose.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(s > 0.0) {
            return SimDuration(0);
        }
        let ps = s * PS_PER_SEC as f64;
        if ps >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ps.ceil() as u64)
        }
    }

    /// The time it takes to move `bytes` bytes at `bytes_per_sec`, rounded up
    /// to the next picosecond. A zero or non-finite bandwidth saturates.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        // NaN capacity saturates, like zero.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(bytes_per_sec > 0.0) {
            return SimDuration(u64::MAX);
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Picoseconds in this duration.
    #[inline]
    pub fn picos(self) -> u64 {
        self.0
    }

    /// This duration in (floating-point) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// This duration in microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}ms", self.as_secs_f64() * 1e3)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_secs_f64() * 1e3)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(3).picos(), 3_000_000);
        assert_eq!(SimDuration::from_nanos(5).picos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).picos(), 2_000_000_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.picos(), 3 * PS_PER_SEC / 2);
    }

    #[test]
    fn bandwidth_time() {
        // 1 GiB at 1 GiB/s is exactly one second.
        let d = SimDuration::for_bytes(1 << 30, (1u64 << 30) as f64);
        assert_eq!(d.picos(), PS_PER_SEC);
    }

    #[test]
    fn bandwidth_time_rounds_up() {
        // one byte at 3 bytes/sec: 1/3 sec, must round up.
        let d = SimDuration::for_bytes(1, 3.0);
        assert!(d.picos() > PS_PER_SEC / 3);
        assert!(d.picos() <= PS_PER_SEC / 3 + 1);
    }

    #[test]
    fn degenerate_inputs_saturate() {
        assert_eq!(SimDuration::for_bytes(10, 0.0).picos(), u64::MAX);
        assert_eq!(SimDuration::from_secs_f64(-1.0).picos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).picos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).picos(), u64::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.picos(), 10_000_000);
        assert_eq!((t - SimTime::ZERO).picos(), 10_000_000);
        assert_eq!(t.since(t).picos(), 0);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime(u64::MAX - 1) + SimDuration::from_millis(5);
        assert_eq!(t.picos(), u64::MAX);
    }
}
