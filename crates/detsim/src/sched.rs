//! Cooperative, deterministic scheduling of simulated ranks.
//!
//! Simulated processes (e.g. MPI ranks) run as **stackful coroutines**
//! ("fibers", see [`crate::fiber`]): each rank program gets its own stack
//! and a natural blocking programming model, but there is only one OS
//! thread. Exactly one rank executes at a time — the scheduler hands a run
//! token from rank to rank by switching stacks. A rank gives up the token
//! only at explicit blocking points (waiting on a [`Completion`], delaying).
//! When no rank is runnable, the scheduler runs the event loop until an
//! event makes one runnable. Runnable ranks are granted the token in
//! ascending rank-id order.
//!
//! Because grants depend only on (deterministic) event order and rank ids,
//! a simulation produces bit-identical virtual times on every run. The
//! full execution model — token contract, fiber discipline, the
//! determinism argument, and how this replaced the earlier
//! one-OS-thread-per-rank design — is documented in `docs/RUNTIME.md`.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::fiber::{FiberFn, Runtime, DEFAULT_STACK_SIZE, RESUME_POISON, RESUME_RUN};
use crate::kernel::{Completion, Kernel};
use crate::time::{SimDuration, SimTime};

/// Lifecycle of one simulated rank, indexed by rank id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RankState {
    /// In the ready queue, waiting for the token.
    Ready,
    /// Holds the token.
    Running,
    /// Suspended on a blocking primitive; not in the ready queue.
    Blocked,
    /// Program returned (or unwound); never runnable again.
    Finished,
}

/// Two-level bitset of ready rank ids with O(1) lowest-id pop.
///
/// Level 0 packs one bit per rank; level 1 summarizes which level-0 words
/// are non-empty. `pop_first` finds the lowest set bit via two
/// `trailing_zeros` — constant time up to 4096 ranks, and one extra word
/// scan per further 4096. This replaces a `BTreeSet<usize>`, whose node
/// allocations and pointer chasing dominated token hand-off at paper scale
/// (1536 ranks = 256 nodes x 6).
struct ReadyQueue {
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl ReadyQueue {
    fn new() -> Self {
        ReadyQueue {
            words: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Size for `n` rank ids, all bits clear.
    fn reset(&mut self, n: usize) {
        let nw = n.div_ceil(64);
        self.words.clear();
        self.words.resize(nw, 0);
        self.summary.clear();
        self.summary.resize(nw.div_ceil(64), 0);
    }

    /// Idempotent.
    fn insert(&mut self, tid: usize) {
        let w = tid / 64;
        self.words[w] |= 1u64 << (tid % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    fn remove(&mut self, tid: usize) {
        let w = tid / 64;
        if w >= self.words.len() {
            return;
        }
        self.words[w] &= !(1u64 << (tid % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
    }

    /// Remove and return the lowest ready rank id.
    fn pop_first(&mut self) -> Option<usize> {
        for (si, summary) in self.summary.iter_mut().enumerate() {
            if *summary == 0 {
                continue;
            }
            let w = si * 64 + summary.trailing_zeros() as usize;
            let bits = self.words[w];
            let remaining = bits & (bits - 1);
            self.words[w] = remaining;
            if remaining == 0 {
                *summary &= !(1u64 << (w % 64));
            }
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
        None
    }
}

/// Scheduler bookkeeping; lives inside [`Kernel`] so event callbacks can wake
/// ranks.
pub(crate) struct SchedState {
    ready: ReadyQueue,
    state: Vec<RankState>,
    current: Option<usize>,
    alive: usize,
    poisoned: bool,
    /// Per-rank token of the timer wake the rank is blocked on (0 = none).
    /// Lets [`crate::SimCtx::delay`] use a bare [`EventKind::Wake`] event —
    /// no completion allocation — while still ignoring spurious wakeups
    /// from stale completion waiters.
    ///
    /// [`EventKind::Wake`]: crate::kernel::EventKind
    wake_wanted: Vec<u64>,
    /// Monotonic timer-wake token source. Never reset, so a stale wake
    /// event surviving a poisoned run can never match a later token.
    next_wake_token: u64,
}

impl SchedState {
    pub(crate) fn new() -> Self {
        SchedState {
            ready: ReadyQueue::new(),
            state: Vec::new(),
            current: None,
            alive: 0,
            poisoned: false,
            wake_wanted: Vec::new(),
            next_wake_token: 1,
        }
    }

    /// Mark a rank ready to receive the token. Idempotent; no-ops for the
    /// currently-running or already-finished ranks.
    pub(crate) fn make_runnable(&mut self, tid: usize) {
        // Running: a wakeup for the token holder is meaningless — it
        // re-checks its wait condition before blocking. Ready: already
        // queued. Finished / out of range (a stale waiter from an earlier
        // `Sim::run`): gone.
        if let Some(RankState::Blocked) = self.state.get(tid) {
            self.state[tid] = RankState::Ready;
            self.ready.insert(tid);
        }
    }

    /// Arm a timer wake for `tid`, returning its token.
    pub(crate) fn arm_wake(&mut self, tid: usize) -> u64 {
        let token = self.next_wake_token;
        self.next_wake_token += 1;
        self.wake_wanted[tid] = token;
        token
    }

    /// Fire a timer wake: wakes `tid` iff `token` is the one it is armed
    /// with (a mismatch means the wake is stale — e.g. left over from a
    /// poisoned earlier run).
    pub(crate) fn fire_wake(&mut self, tid: usize, token: u64) {
        if token != 0 && self.wake_wanted.get(tid).copied() == Some(token) {
            self.wake_wanted[tid] = 0;
            self.make_runnable(tid);
        }
    }
}

/// A deterministic simulation with cooperative coroutine ranks.
///
/// ```
/// use detsim::{Sim, SimDuration};
///
/// let mut sim = Sim::new();
/// let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
/// let o = order.clone();
/// sim.run(2, move |ctx| {
///     ctx.delay(SimDuration::from_micros(10 * (ctx.tid() as u64 + 1)));
///     o.lock().push(ctx.tid());
/// });
/// assert_eq!(*order.lock(), vec![0, 1]);
/// ```
pub struct Sim {
    shared: Arc<SimShared>,
    stack_size: usize,
}

pub(crate) struct SimShared {
    pub(crate) kernel: Mutex<Kernel>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// A fresh simulation (empty kernel at t = 0).
    pub fn new() -> Self {
        Sim {
            shared: Arc::new(SimShared {
                kernel: Mutex::new(Kernel::new()),
            }),
            stack_size: DEFAULT_STACK_SIZE,
        }
    }

    /// Set the per-rank fiber stack size in bytes for subsequent
    /// [`Sim::run`] calls (default 512 KiB, the same budget rank OS threads
    /// used to get). Values below 16 KiB are clamped up; the size is
    /// rounded to 16-byte alignment internally.
    ///
    /// Stacks are plain heap allocations: untouched pages cost nothing, so
    /// large worlds with a generous stack size are cheap — but there is no
    /// OS guard page. A canary at the overflow end turns an overflow into
    /// an abort with a message naming this method.
    ///
    /// ```
    /// use detsim::{Sim, SimDuration};
    ///
    /// let mut sim = Sim::new();
    /// sim.stack_size(1024 * 1024); // rank programs recurse deeply
    /// sim.run(1, |ctx| ctx.delay(SimDuration::from_micros(1)));
    /// assert_eq!(sim.now().picos(), SimDuration::from_micros(1).picos());
    /// ```
    pub fn stack_size(&mut self, bytes: usize) -> &mut Self {
        self.stack_size = bytes.max(16 * 1024);
        self
    }

    /// Mutate or inspect the kernel outside of a running simulation
    /// (topology setup, reading traces/statistics afterwards).
    ///
    /// Must not be called concurrently with [`Sim::run`].
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// Run `n` copies of `program` (distinguished by [`SimCtx::tid`]) to
    /// completion. Blocks the calling thread; returns when every rank has
    /// returned. Virtual time persists across calls.
    pub fn run<F>(&mut self, n: usize, program: F)
    where
        F: Fn(&SimCtx) + Send + Sync + 'static,
    {
        let program = Arc::new(program);
        let programs: Vec<Program> = (0..n)
            .map(|_| {
                let p = Arc::clone(&program);
                Box::new(move |ctx: &SimCtx| p(ctx)) as Program
            })
            .collect();
        self.run_programs(programs);
    }

    /// Run heterogeneous per-rank programs.
    pub fn run_programs(&mut self, programs: Vec<Program>) {
        let n = programs.len();
        if n == 0 {
            return;
        }
        {
            let mut k = self.shared.kernel.lock();
            assert!(
                k.sched.alive == 0 && k.sched.current.is_none(),
                "Sim::run re-entered while already running"
            );
            k.sched.ready.reset(n);
            k.sched.state = vec![RankState::Ready; n];
            k.sched.wake_wanted.clear();
            k.sched.wake_wanted.resize(n, 0);
            k.sched.poisoned = false;
            k.sched.alive = n;
            for tid in 0..n {
                k.sched.ready.insert(tid);
            }
        }
        let rt = Runtime::new(n);
        let rt_ptr: *const Runtime = &rt;
        for (tid, program) in programs.into_iter().enumerate() {
            let shared = Arc::clone(&self.shared);
            let f: FiberFn = Box::new(move |first_msg| {
                fiber_main(shared, tid, rt_ptr, program, first_msg);
            });
            rt.spawn(f, self.stack_size);
        }
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| drive(&self.shared, &rt)))
            .unwrap_or_else(Outcome::Panicked);
        match outcome {
            Outcome::Completed => {}
            Outcome::Deadlock(msg) => {
                poison_teardown(&self.shared, &rt);
                panic!("{msg}");
            }
            Outcome::Panicked(p) => {
                self.shared.kernel.lock().sched.poisoned = true;
                poison_teardown(&self.shared, &rt);
                panic::resume_unwind(p);
            }
        }
    }

    /// Virtual time at present.
    pub fn now(&self) -> SimTime {
        self.shared.kernel.lock().now()
    }
}

/// A boxed per-rank program.
pub type Program = Box<dyn FnOnce(&SimCtx) + Send>;

/// Panic payload used to unwind ranks when the simulation has been poisoned
/// (another rank panicked, or a deadlock was detected); filtered out in
/// favour of the original panic.
struct SimPoisoned;

/// How a drive loop ended.
enum Outcome {
    /// Every rank finished.
    Completed,
    /// No rank runnable and no event pending; the message lists the stuck
    /// ranks.
    Deadlock(String),
    /// A rank program (or an event callback) panicked with this payload.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// The scheduler proper: grant the token to the lowest ready rank, switch
/// into its fiber, repeat; run the event loop when nobody is ready.
///
/// This is the same decision procedure the thread-based scheduler ran
/// (pop lowest ready id, else step one event, else deadlock) — executed on
/// the scheduler's own context instead of by whichever rank was releasing
/// the token. The sequence of pops and steps, and therefore every virtual
/// timestamp, is unchanged. See `docs/RUNTIME.md`.
fn drive(shared: &SimShared, rt: &Runtime) -> Outcome {
    loop {
        let next = {
            let mut k = shared.kernel.lock();
            loop {
                if let Some(next) = k.sched.ready.pop_first() {
                    k.sched.state[next] = RankState::Running;
                    k.sched.current = Some(next);
                    break next;
                }
                if k.sched.alive == 0 {
                    return Outcome::Completed;
                }
                if !k.step() {
                    k.sched.poisoned = true;
                    let alive = k.sched.alive;
                    let blocked: Vec<usize> = (0..k.sched.state.len())
                        .filter(|&t| k.sched.state[t] != RankState::Finished)
                        .collect();
                    return Outcome::Deadlock(format!(
                        "detsim: deadlock — {alive} sim rank(s) blocked at {} with no pending \
                         events; blocked ranks {blocked:?}; active flows {}; busy fifos {:?}",
                        k.now(),
                        k.active_flows(),
                        k.busy_fifos(),
                    ));
                }
            }
        };
        // Kernel unlocked: the fiber re-locks it at its own pace.
        unsafe { rt.resume(next, RESUME_RUN) };
        if let Some(p) = rt.take_panic() {
            return Outcome::Panicked(p);
        }
    }
}

/// Unwind every unfinished fiber after the simulation is poisoned, so rank
/// stacks run their destructors before being freed. A fiber that blocks
/// *again* while unwinding (a destructor waiting on virtual time that will
/// never come) is abandoned: its stack is freed without running the
/// remaining frames. The old thread model hung forever on join in that
/// case; leaking is strictly better.
fn poison_teardown(shared: &SimShared, rt: &Runtime) {
    let n = shared.kernel.lock().sched.state.len();
    for tid in 0..n {
        {
            let mut k = shared.kernel.lock();
            debug_assert!(k.sched.poisoned);
            if k.sched.state[tid] == RankState::Finished {
                continue;
            }
            k.sched.ready.remove(tid);
            k.sched.state[tid] = RankState::Running;
            k.sched.current = Some(tid);
        }
        unsafe { rt.resume(tid, RESUME_POISON) };
        let mut k = shared.kernel.lock();
        if k.sched.current == Some(tid) {
            // The fiber re-blocked instead of finishing: abandon it.
            k.sched.current = None;
        }
    }
}

/// Body of every fiber: run the rank program, catch any unwind before it
/// could reach the context-switch frame, record the outcome, then park
/// forever (the scheduler never resumes a finished fiber; its stack is
/// freed when the runtime drops).
fn fiber_main(
    shared: Arc<SimShared>,
    tid: usize,
    rt: *const Runtime,
    program: Program,
    first_msg: usize,
) {
    {
        let ctx = SimCtx { shared, tid, rt };
        let panicked = if first_msg == RESUME_RUN {
            match panic::catch_unwind(AssertUnwindSafe(|| program(&ctx))) {
                Ok(()) => None,
                Err(p) if p.is::<SimPoisoned>() => None,
                Err(p) => Some(p),
            }
        } else {
            // Poisoned before ever running: don't start the program.
            drop(program);
            None
        };
        let mut k = ctx.shared.kernel.lock();
        if k.sched.state[tid] != RankState::Finished {
            k.sched.state[tid] = RankState::Finished;
            k.sched.ready.remove(tid);
            k.sched.alive -= 1;
        }
        if k.sched.current == Some(tid) {
            k.sched.current = None;
        }
        if panicked.is_some() {
            k.sched.poisoned = true;
        }
        drop(k);
        if let Some(p) = panicked {
            unsafe { (*rt).store_panic(p) };
        }
        // `ctx` (and its Arc) drops here, before the final switch: nothing
        // on this stack owns heap memory any more, so freeing the stack
        // without unwinding it leaks nothing.
    }
    loop {
        unsafe { (*rt).yield_to_scheduler(tid, 0) };
    }
}

/// Per-rank handle into the simulation. Passed to each program; provides
/// virtual-clock blocking primitives. Each method runs on the rank's own
/// fiber and may suspend it (handing the run token back to the scheduler)
/// until the wake condition holds.
pub struct SimCtx {
    shared: Arc<SimShared>,
    tid: usize,
    rt: *const Runtime,
}

impl SimCtx {
    /// This rank's id, `0..n`.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.kernel.lock().now()
    }

    /// Mutate the kernel (start flows, submit FIFO tasks, build hardware…).
    /// Runs instantaneously in virtual time.
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// Block this rank for `d` of virtual time.
    ///
    /// Fast path: schedules a single bare timer-wake event — no completion,
    /// no allocation. The event fires at the same `(time, seq)` key the
    /// old completion-based implementation used, so virtual times are
    /// unchanged to the bit.
    pub fn delay(&self, d: SimDuration) {
        let mut k = self.shared.kernel.lock();
        k.schedule_wake(self.tid, d);
        loop {
            k = self.block(k);
            // Wakes from stale completion waiters (e.g. a `wait_any` loser
            // completing later) are spurious: the timer is still armed, so
            // give the token straight back — exactly what the old
            // completion-based delay did.
            if k.sched.wake_wanted[self.tid] == 0 {
                return;
            }
        }
    }

    /// Block until `c` completes. Returns immediately if it already has.
    pub fn wait(&self, c: &Completion) {
        let mut k = self.shared.kernel.lock();
        loop {
            if c.is_done() {
                return;
            }
            k.add_waiter(c, self.tid);
            k = self.block(k);
        }
    }

    /// Block until every one of `cs` completes.
    pub fn wait_all(&self, cs: &[Completion]) {
        for c in cs {
            self.wait(c);
        }
    }

    /// Block until at least one of `cs` completes; returns the index of the
    /// first (lowest-index) completed one. Panics on an empty slice.
    pub fn wait_any(&self, cs: &[Completion]) -> usize {
        assert!(!cs.is_empty(), "wait_any on empty slice");
        let mut k = self.shared.kernel.lock();
        loop {
            if let Some(i) = cs.iter().position(|c| c.is_done()) {
                return i;
            }
            for c in cs {
                k.add_waiter(c, self.tid);
            }
            k = self.block(k);
        }
    }

    /// Yield the token; other runnable ranks (and due events) run before
    /// this rank resumes at the same virtual instant.
    pub fn yield_now(&self) {
        self.delay(SimDuration::ZERO);
    }

    /// Give up the token — suspend this fiber and switch to the scheduler —
    /// returning a re-acquired kernel guard once the token is granted back.
    fn block<'a>(&'a self, mut guard: MutexGuard<'a, Kernel>) -> MutexGuard<'a, Kernel> {
        debug_assert_eq!(guard.sched.current, Some(self.tid));
        guard.sched.current = None;
        guard.sched.state[self.tid] = RankState::Blocked;
        drop(guard);
        let msg = unsafe { (*self.rt).yield_to_scheduler(self.tid, 0) };
        if msg == RESUME_POISON && !std::thread::panicking() {
            // Another rank panicked or a deadlock was declared; unwind this
            // rank's stack. (While already unwinding, keep going normally —
            // a destructor is doing sim work and gets one chance to run.)
            panic::resume_unwind(Box::new(SimPoisoned));
        }
        self.shared.kernel.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ready_queue_pops_in_ascending_order() {
        let mut q = ReadyQueue::new();
        q.reset(200);
        for tid in [150, 3, 64, 199, 0, 65, 127, 128] {
            q.insert(tid);
        }
        q.insert(3); // idempotent
        q.remove(127);
        q.remove(127); // idempotent
        let mut got = Vec::new();
        while let Some(t) = q.pop_first() {
            got.push(t);
        }
        assert_eq!(got, vec![0, 3, 64, 65, 128, 150, 199]);
        assert_eq!(q.pop_first(), None);
    }

    #[test]
    fn threads_interleave_by_virtual_time() {
        let mut sim = Sim::new();
        let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(vec![]));
        let l = Arc::clone(&log);
        sim.run(3, move |ctx| {
            // rank 0 sleeps 30us, rank 1 sleeps 20us, rank 2 sleeps 10us
            let d = SimDuration::from_micros(30 - 10 * ctx.tid() as u64);
            ctx.delay(d);
            l.lock().push((ctx.tid(), ctx.now().picos()));
        });
        let log = log.lock();
        assert_eq!(
            *log,
            vec![
                (2, SimDuration::from_micros(10).picos()),
                (1, SimDuration::from_micros(20).picos()),
                (0, SimDuration::from_micros(30).picos()),
            ]
        );
    }

    #[test]
    fn equal_wakeups_resolve_in_tid_order() {
        for _ in 0..10 {
            let mut sim = Sim::new();
            let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![]));
            let l = Arc::clone(&log);
            sim.run(4, move |ctx| {
                ctx.delay(SimDuration::from_micros(5));
                l.lock().push(ctx.tid());
            });
            assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn wait_on_completion_fired_by_other_thread() {
        let mut sim = Sim::new();
        let c = sim.with_kernel(|k| k.completion());
        let c2 = c.clone();
        let done_at = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done_at);
        sim.run(2, move |ctx| {
            if ctx.tid() == 0 {
                ctx.wait(&c2);
                d2.store(ctx.now().picos() as usize, Ordering::SeqCst);
            } else {
                ctx.delay(SimDuration::from_micros(42));
                let c3 = c2.clone();
                ctx.with_kernel(move |k| k.complete(&c3));
            }
        });
        assert_eq!(
            done_at.load(Ordering::SeqCst) as u64,
            SimDuration::from_micros(42).picos()
        );
    }

    #[test]
    fn wait_any_returns_first_done() {
        let mut sim = Sim::new();
        let winner = Arc::new(AtomicUsize::new(usize::MAX));
        let w = Arc::clone(&winner);
        sim.run(1, move |ctx| {
            let (a, b) = ctx.with_kernel(|k| {
                (
                    k.completion_in(SimDuration::from_micros(50)),
                    k.completion_in(SimDuration::from_micros(10)),
                )
            });
            let i = ctx.wait_any(&[a, b]);
            w.store(i, Ordering::SeqCst);
        });
        assert_eq!(winner.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_all_waits_for_latest() {
        let mut sim = Sim::new();
        let t = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&t);
        sim.run(1, move |ctx| {
            let cs: Vec<_> = (1..=5)
                .map(|i| ctx.with_kernel(|k| k.completion_in(SimDuration::from_micros(i * 10))))
                .collect();
            ctx.wait_all(&cs);
            t2.store(ctx.now().picos() as usize, Ordering::SeqCst);
        });
        assert_eq!(
            t.load(Ordering::SeqCst) as u64,
            SimDuration::from_micros(50).picos()
        );
    }

    #[test]
    fn determinism_many_threads() {
        let run_once = || {
            let mut sim = Sim::new();
            let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(vec![]));
            let l = Arc::clone(&log);
            sim.run(16, move |ctx| {
                for round in 0..20u64 {
                    let d = SimDuration::from_nanos(((ctx.tid() as u64 * 7 + round * 13) % 29) + 1);
                    ctx.delay(d);
                }
                l.lock().push((ctx.tid(), ctx.now().picos()));
            });
            let v = log.lock().clone();
            v
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "simulation must be deterministic");
    }

    #[test]
    fn virtual_time_persists_across_runs() {
        let mut sim = Sim::new();
        sim.run(1, |ctx| ctx.delay(SimDuration::from_micros(10)));
        sim.run(1, |ctx| ctx.delay(SimDuration::from_micros(5)));
        assert_eq!(sim.now().picos(), SimDuration::from_micros(15).picos());
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let mut sim = Sim::new();
        sim.run_programs(vec![]);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = Sim::new();
        let c = sim.with_kernel(|k| k.completion());
        sim.run_programs(vec![Box::new(move |ctx: &SimCtx| {
            ctx.wait(&c); // nobody will ever complete this
        })]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates() {
        let mut sim = Sim::new();
        sim.run(2, |ctx| {
            if ctx.tid() == 1 {
                panic!("boom");
            }
            ctx.delay(SimDuration::from_micros(100));
        });
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let mut sim = Sim::new();
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![]));
        let l = Arc::clone(&log);
        sim.run(2, move |ctx| {
            for _ in 0..3 {
                l.lock().push(ctx.tid());
                ctx.yield_now();
            }
        });
        let v = log.lock().clone();
        assert_eq!(v, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn panic_on_first_rank_unwinds_large_world() {
        // Poison teardown must unwind every not-yet-started fiber without
        // running its program.
        let mut sim = Sim::new();
        let started = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&started);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run(100, move |ctx| {
                s.fetch_add(1, Ordering::SeqCst);
                if ctx.tid() == 0 {
                    panic!("early");
                }
                ctx.delay(SimDuration::from_micros(1));
            });
        }));
        assert!(r.is_err());
        // Rank 0 panicked before anyone else got the token.
        assert_eq!(started.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn custom_stack_size_survives_deep_recursion() {
        fn burn(depth: usize) -> usize {
            // Defeat tail-call-ish optimization with a stack array.
            let pad = [depth as u8; 256];
            if depth == 0 {
                pad[0] as usize
            } else {
                burn(depth - 1) + pad.len()
            }
        }
        let mut sim = Sim::new();
        sim.stack_size(4 * 1024 * 1024);
        let out = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&out);
        sim.run(1, move |ctx| {
            ctx.delay(SimDuration::from_nanos(1));
            o.store(burn(2000), Ordering::SeqCst);
        });
        assert_eq!(out.load(Ordering::SeqCst), 2000 * 256);
    }
}
