//! Cooperative, deterministic scheduling of simulation threads.
//!
//! Simulated processes (e.g. MPI ranks) run as real OS threads for a natural
//! blocking programming model, but **exactly one sim thread executes at a
//! time**: a run token is handed from thread to thread. A thread gives up the
//! token only at explicit blocking points (waiting on a [`Completion`],
//! delaying). When no thread is runnable, the thread releasing the token runs
//! the event loop until an event makes one runnable. Runnable threads are
//! granted the token in ascending thread-id order.
//!
//! Because grants depend only on (deterministic) event order and thread ids,
//! a simulation produces bit-identical virtual times on every run.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::park::{Parker, Unparker};

use crate::kernel::{Completion, Kernel};
use crate::time::{SimDuration, SimTime};

/// Lifecycle of one sim thread, indexed by thread id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RankState {
    /// In the ready queue, waiting for the token.
    Ready,
    /// Holds the token.
    Running,
    /// Parked on a blocking primitive; not in the ready queue.
    Blocked,
    /// Program returned (or unwound); never runnable again.
    Finished,
}

/// Two-level bitset of ready thread ids with O(1) lowest-id pop.
///
/// Level 0 packs one bit per thread; level 1 summarizes which level-0 words
/// are non-empty. `pop_first` finds the lowest set bit via two
/// `trailing_zeros` — constant time up to 4096 threads, and one extra word
/// scan per further 4096. This replaces a `BTreeSet<usize>`, whose node
/// allocations and pointer chasing dominated token hand-off at paper scale
/// (1536 ranks = 256 nodes x 6).
struct ReadyQueue {
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl ReadyQueue {
    fn new() -> Self {
        ReadyQueue {
            words: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Size for `n` thread ids, all bits clear.
    fn reset(&mut self, n: usize) {
        let nw = n.div_ceil(64);
        self.words.clear();
        self.words.resize(nw, 0);
        self.summary.clear();
        self.summary.resize(nw.div_ceil(64), 0);
    }

    /// Idempotent.
    fn insert(&mut self, tid: usize) {
        let w = tid / 64;
        self.words[w] |= 1u64 << (tid % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    fn remove(&mut self, tid: usize) {
        let w = tid / 64;
        if w >= self.words.len() {
            return;
        }
        self.words[w] &= !(1u64 << (tid % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
    }

    /// Remove and return the lowest ready thread id.
    fn pop_first(&mut self) -> Option<usize> {
        for (si, summary) in self.summary.iter_mut().enumerate() {
            if *summary == 0 {
                continue;
            }
            let w = si * 64 + summary.trailing_zeros() as usize;
            let bits = self.words[w];
            let remaining = bits & (bits - 1);
            self.words[w] = remaining;
            if remaining == 0 {
                *summary &= !(1u64 << (w % 64));
            }
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
        None
    }
}

/// Scheduler bookkeeping; lives inside [`Kernel`] so event callbacks can wake
/// threads.
pub(crate) struct SchedState {
    ready: ReadyQueue,
    state: Vec<RankState>,
    current: Option<usize>,
    alive: usize,
    poisoned: bool,
    unparkers: Vec<Unparker>,
}

impl SchedState {
    pub(crate) fn new() -> Self {
        SchedState {
            ready: ReadyQueue::new(),
            state: Vec::new(),
            current: None,
            alive: 0,
            poisoned: false,
            unparkers: Vec::new(),
        }
    }

    /// Mark a thread ready to receive the token. Idempotent; no-ops for the
    /// currently-running or already-finished threads.
    pub(crate) fn make_runnable(&mut self, tid: usize) {
        // Running: a wakeup for the token holder is meaningless — it
        // re-checks its wait condition before blocking. Ready: already
        // queued. Finished / out of range (a stale waiter from an earlier
        // `Sim::run`): gone.
        if let Some(RankState::Blocked) = self.state.get(tid) {
            self.state[tid] = RankState::Ready;
            self.ready.insert(tid);
        }
    }
}

/// A deterministic simulation with cooperative threads.
///
/// ```
/// use detsim::{Sim, SimDuration};
///
/// let mut sim = Sim::new();
/// let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
/// let o = order.clone();
/// sim.run(2, move |ctx| {
///     ctx.delay(SimDuration::from_micros(10 * (ctx.tid() as u64 + 1)));
///     o.lock().push(ctx.tid());
/// });
/// assert_eq!(*order.lock(), vec![0, 1]);
/// ```
pub struct Sim {
    shared: Arc<SimShared>,
}

pub(crate) struct SimShared {
    pub(crate) kernel: Mutex<Kernel>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// A fresh simulation (empty kernel at t = 0).
    pub fn new() -> Self {
        Sim {
            shared: Arc::new(SimShared {
                kernel: Mutex::new(Kernel::new()),
            }),
        }
    }

    /// Mutate or inspect the kernel outside of a running simulation
    /// (topology setup, reading traces/statistics afterwards).
    ///
    /// Must not be called concurrently with [`Sim::run`].
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// Run `n` copies of `program` (distinguished by [`SimCtx::tid`]) to
    /// completion. Blocks the calling thread; returns when every sim thread
    /// has returned. Virtual time persists across calls.
    pub fn run<F>(&mut self, n: usize, program: F)
    where
        F: Fn(&SimCtx) + Send + Sync + 'static,
    {
        let program = Arc::new(program);
        let programs: Vec<Program> = (0..n)
            .map(|_| {
                let p = Arc::clone(&program);
                Box::new(move |ctx: &SimCtx| p(ctx)) as Program
            })
            .collect();
        self.run_programs(programs);
    }

    /// Run heterogeneous per-thread programs.
    pub fn run_programs(&mut self, programs: Vec<Program>) {
        let n = programs.len();
        if n == 0 {
            return;
        }
        let mut parkers = Vec::with_capacity(n);
        {
            let mut k = self.shared.kernel.lock();
            assert!(
                k.sched.alive == 0 && k.sched.current.is_none(),
                "Sim::run re-entered while already running"
            );
            k.sched.ready.reset(n);
            k.sched.state = vec![RankState::Ready; n];
            k.sched.poisoned = false;
            k.sched.alive = n;
            k.sched.unparkers.clear();
            for _ in 0..n {
                let p = Parker::new();
                k.sched.unparkers.push(p.unparker());
                parkers.push(p);
            }
            for tid in 0..n {
                k.sched.ready.insert(tid);
            }
            dispatch(&mut k);
        }
        let mut handles = Vec::with_capacity(n);
        for (tid, (program, parker)) in programs.into_iter().zip(parkers).enumerate() {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sim-{tid}"))
                    .stack_size(512 * 1024)
                    .spawn(move || {
                        let ctx = SimCtx {
                            shared,
                            tid,
                            parker,
                        };
                        ctx.wait_granted();
                        let result = panic::catch_unwind(AssertUnwindSafe(|| program(&ctx)));
                        ctx.retire(result.is_err());
                        if let Err(p) = result {
                            panic::resume_unwind(p);
                        }
                    })
                    .expect("spawn sim thread"),
            );
        }
        // Prefer propagating the original panic over secondary
        // poisoned-simulation panics raised by bystander threads.
        let mut real_panic = None;
        let mut poison_panic = None;
        for h in handles {
            if let Err(p) = h.join() {
                if p.is::<SimPoisoned>() {
                    poison_panic.get_or_insert(p);
                } else {
                    real_panic.get_or_insert(p);
                }
            }
        }
        if let Some(p) = real_panic.or(poison_panic) {
            panic::resume_unwind(p);
        }
    }

    /// Virtual time at present.
    pub fn now(&self) -> SimTime {
        self.shared.kernel.lock().now()
    }
}

/// A boxed per-thread program.
pub type Program = Box<dyn FnOnce(&SimCtx) + Send>;

/// Panic payload used when a thread aborts because another thread poisoned
/// the simulation; filtered out in favour of the original panic.
struct SimPoisoned;

/// Hand the run token to the next runnable thread, advancing the event loop
/// as needed. Caller must have cleared `current`.
fn dispatch(k: &mut Kernel) {
    debug_assert!(k.sched.current.is_none());
    loop {
        if let Some(next) = k.sched.ready.pop_first() {
            k.sched.state[next] = RankState::Running;
            k.sched.current = Some(next);
            k.sched.unparkers[next].unpark();
            return;
        }
        if k.sched.alive == 0 {
            return;
        }
        if !k.step() {
            k.sched.poisoned = true;
            let alive = k.sched.alive;
            let blocked: Vec<usize> = (0..k.sched.state.len())
                .filter(|&t| k.sched.state[t] != RankState::Finished)
                .collect();
            for u in &k.sched.unparkers {
                u.unpark();
            }
            panic!(
                "detsim: deadlock — {alive} sim thread(s) blocked at {} with no pending events; \
                 blocked threads {blocked:?}; active flows {}; busy fifos {:?}",
                k.now(),
                k.active_flows(),
                k.busy_fifos(),
            );
        }
    }
}

/// Per-thread handle into the simulation. Passed to each program; provides
/// virtual-clock blocking primitives.
pub struct SimCtx {
    shared: Arc<SimShared>,
    tid: usize,
    parker: Parker,
}

impl SimCtx {
    /// This thread's id, `0..n`.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.kernel.lock().now()
    }

    /// Mutate the kernel (start flows, submit FIFO tasks, build hardware…).
    /// Runs instantaneously in virtual time.
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// Block this thread for `d` of virtual time.
    pub fn delay(&self, d: SimDuration) {
        let c = self.with_kernel(|k| k.completion_in(d));
        self.wait(&c);
    }

    /// Block until `c` completes. Returns immediately if it already has.
    pub fn wait(&self, c: &Completion) {
        let mut k = self.shared.kernel.lock();
        loop {
            if c.is_done() {
                return;
            }
            k.add_waiter(c, self.tid);
            k = self.block(k);
        }
    }

    /// Block until every one of `cs` completes.
    pub fn wait_all(&self, cs: &[Completion]) {
        for c in cs {
            self.wait(c);
        }
    }

    /// Block until at least one of `cs` completes; returns the index of the
    /// first (lowest-index) completed one. Panics on an empty slice.
    pub fn wait_any(&self, cs: &[Completion]) -> usize {
        assert!(!cs.is_empty(), "wait_any on empty slice");
        let mut k = self.shared.kernel.lock();
        loop {
            if let Some(i) = cs.iter().position(|c| c.is_done()) {
                return i;
            }
            for c in cs {
                k.add_waiter(c, self.tid);
            }
            k = self.block(k);
        }
    }

    /// Yield the token; other runnable threads (and due events) run before
    /// this thread resumes at the same virtual instant.
    pub fn yield_now(&self) {
        let c = self.with_kernel(|k| k.completion_in(SimDuration::ZERO));
        self.wait(&c);
    }

    /// Give up the token, returning a re-acquired kernel guard once the token
    /// is granted back.
    fn block<'a>(&'a self, mut guard: MutexGuard<'a, Kernel>) -> MutexGuard<'a, Kernel> {
        debug_assert_eq!(guard.sched.current, Some(self.tid));
        guard.sched.current = None;
        guard.sched.state[self.tid] = RankState::Blocked;
        dispatch(&mut guard);
        drop(guard);
        self.wait_granted_inner()
    }

    fn wait_granted(&self) {
        drop(self.wait_granted_inner());
    }

    fn wait_granted_inner(&self) -> MutexGuard<'_, Kernel> {
        loop {
            self.parker.park();
            let g = self.shared.kernel.lock();
            if g.sched.poisoned {
                // Avoid double-panicking threads that are already unwinding.
                if !std::thread::panicking() {
                    drop(g);
                    panic::panic_any(SimPoisoned);
                }
                return g;
            }
            if g.sched.current == Some(self.tid) {
                return g;
            }
            drop(g);
        }
    }

    /// Mark this thread finished and hand off the token.
    fn retire(&self, panicked: bool) {
        let mut k = self.shared.kernel.lock();
        if k.sched.state[self.tid] == RankState::Finished {
            return;
        }
        k.sched.state[self.tid] = RankState::Finished;
        k.sched.ready.remove(self.tid);
        k.sched.alive -= 1;
        if k.sched.current == Some(self.tid) {
            k.sched.current = None;
        }
        if panicked {
            k.sched.poisoned = true;
            for u in &k.sched.unparkers {
                u.unpark();
            }
            return;
        }
        dispatch(&mut k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ready_queue_pops_in_ascending_order() {
        let mut q = ReadyQueue::new();
        q.reset(200);
        for tid in [150, 3, 64, 199, 0, 65, 127, 128] {
            q.insert(tid);
        }
        q.insert(3); // idempotent
        q.remove(127);
        q.remove(127); // idempotent
        let mut got = Vec::new();
        while let Some(t) = q.pop_first() {
            got.push(t);
        }
        assert_eq!(got, vec![0, 3, 64, 65, 128, 150, 199]);
        assert_eq!(q.pop_first(), None);
    }

    #[test]
    fn threads_interleave_by_virtual_time() {
        let mut sim = Sim::new();
        let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(vec![]));
        let l = Arc::clone(&log);
        sim.run(3, move |ctx| {
            // thread 0 sleeps 30us, thread 1 sleeps 20us, thread 2 sleeps 10us
            let d = SimDuration::from_micros(30 - 10 * ctx.tid() as u64);
            ctx.delay(d);
            l.lock().push((ctx.tid(), ctx.now().picos()));
        });
        let log = log.lock();
        assert_eq!(
            *log,
            vec![
                (2, SimDuration::from_micros(10).picos()),
                (1, SimDuration::from_micros(20).picos()),
                (0, SimDuration::from_micros(30).picos()),
            ]
        );
    }

    #[test]
    fn equal_wakeups_resolve_in_tid_order() {
        for _ in 0..10 {
            let mut sim = Sim::new();
            let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![]));
            let l = Arc::clone(&log);
            sim.run(4, move |ctx| {
                ctx.delay(SimDuration::from_micros(5));
                l.lock().push(ctx.tid());
            });
            assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn wait_on_completion_fired_by_other_thread() {
        let mut sim = Sim::new();
        let c = sim.with_kernel(|k| k.completion());
        let c2 = c.clone();
        let done_at = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done_at);
        sim.run(2, move |ctx| {
            if ctx.tid() == 0 {
                ctx.wait(&c2);
                d2.store(ctx.now().picos() as usize, Ordering::SeqCst);
            } else {
                ctx.delay(SimDuration::from_micros(42));
                let c3 = c2.clone();
                ctx.with_kernel(move |k| k.complete(&c3));
            }
        });
        assert_eq!(
            done_at.load(Ordering::SeqCst) as u64,
            SimDuration::from_micros(42).picos()
        );
    }

    #[test]
    fn wait_any_returns_first_done() {
        let mut sim = Sim::new();
        let winner = Arc::new(AtomicUsize::new(usize::MAX));
        let w = Arc::clone(&winner);
        sim.run(1, move |ctx| {
            let (a, b) = ctx.with_kernel(|k| {
                (
                    k.completion_in(SimDuration::from_micros(50)),
                    k.completion_in(SimDuration::from_micros(10)),
                )
            });
            let i = ctx.wait_any(&[a, b]);
            w.store(i, Ordering::SeqCst);
        });
        assert_eq!(winner.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_all_waits_for_latest() {
        let mut sim = Sim::new();
        let t = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&t);
        sim.run(1, move |ctx| {
            let cs: Vec<_> = (1..=5)
                .map(|i| ctx.with_kernel(|k| k.completion_in(SimDuration::from_micros(i * 10))))
                .collect();
            ctx.wait_all(&cs);
            t2.store(ctx.now().picos() as usize, Ordering::SeqCst);
        });
        assert_eq!(
            t.load(Ordering::SeqCst) as u64,
            SimDuration::from_micros(50).picos()
        );
    }

    #[test]
    fn determinism_many_threads() {
        let run_once = || {
            let mut sim = Sim::new();
            let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(vec![]));
            let l = Arc::clone(&log);
            sim.run(16, move |ctx| {
                for round in 0..20u64 {
                    let d = SimDuration::from_nanos(((ctx.tid() as u64 * 7 + round * 13) % 29) + 1);
                    ctx.delay(d);
                }
                l.lock().push((ctx.tid(), ctx.now().picos()));
            });
            let v = log.lock().clone();
            v
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "simulation must be deterministic");
    }

    #[test]
    fn virtual_time_persists_across_runs() {
        let mut sim = Sim::new();
        sim.run(1, |ctx| ctx.delay(SimDuration::from_micros(10)));
        sim.run(1, |ctx| ctx.delay(SimDuration::from_micros(5)));
        assert_eq!(sim.now().picos(), SimDuration::from_micros(15).picos());
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let mut sim = Sim::new();
        sim.run_programs(vec![]);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = Sim::new();
        let c = sim.with_kernel(|k| k.completion());
        sim.run_programs(vec![Box::new(move |ctx: &SimCtx| {
            ctx.wait(&c); // nobody will ever complete this
        })]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates() {
        let mut sim = Sim::new();
        sim.run(2, |ctx| {
            if ctx.tid() == 1 {
                panic!("boom");
            }
            ctx.delay(SimDuration::from_micros(100));
        });
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let mut sim = Sim::new();
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![]));
        let l = Arc::clone(&log);
        sim.run(2, move |ctx| {
            for _ in 0..3 {
                l.lock().push(ctx.tid());
                ctx.yield_now();
            }
        });
        let v = log.lock().clone();
        assert_eq!(v, vec![0, 1, 0, 1, 0, 1]);
    }
}
