//! Unified metrics registry: counters, gauges-with-max, and (time-)weighted
//! histograms, keyed by structured `(subsystem, name, labels)` ids.
//!
//! Every layer of the simulation stack (flow network, FIFO engines, the
//! simulated CUDA runtime, the simulated MPI library, the halo-exchange
//! engine) records into the one registry hanging off
//! [`Kernel::metrics`](crate::Kernel). Like [`Trace`](crate::trace::Trace),
//! the registry is **disabled by default**: recording methods return after a
//! single branch, so an un-instrumented run pays nothing measurable. Call
//! [`Metrics::enable`] before the run to collect.
//!
//! Metric kinds:
//!
//! * **Counter** — a monotonically increasing `u64` (bytes delivered,
//!   messages matched, kernels launched).
//! * **Gauge** — a `f64` level with its observed maximum (concurrent flows,
//!   queue depth; the max is the high-water mark).
//! * **Histogram** — weighted observations with count / weight / sum / min /
//!   max and power-of-two buckets. With weight = elapsed seconds this is a
//!   *time-weighted* distribution (link utilization over time); with
//!   weight = 1 it is a plain sample distribution (wait times).
//!
//! Determinism: identical simulations produce bit-identical registries; the
//! id keys are ordered (`BTreeMap`) so reports render in a stable order.
//!
//! ```
//! use detsim::metrics::Metrics;
//!
//! let mut m = Metrics::new();
//! m.enable();
//! m.counter_add("flow", "link_delivered_bytes", &[("link", "nic")], 128);
//! m.counter_add("flow", "link_delivered_bytes", &[("link", "nic")], 72);
//! assert_eq!(m.counter("flow", "link_delivered_bytes", &[("link", "nic")]), 200);
//! let report = m.report();
//! assert!(report.to_json().contains("\"link_delivered_bytes\""));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Number of power-of-two histogram buckets. Bucket `0` holds values
/// `<= 1`; bucket `i` holds values in `(2^(i-1), 2^i]`; the last bucket
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 64;

/// Version stamped into every persisted metrics/result JSON artifact
/// (`"schema_version"`), so artifacts written by different PRs stay
/// comparable: bump it on any breaking change to the JSON shape described
/// in `docs/OBSERVABILITY.md`. Version 1 is the PR-1 format plus the
/// version field itself.
pub const SCHEMA_VERSION: u32 = 1;

/// Structured identity of a metric: which subsystem emitted it, what it is
/// called, and the label set distinguishing instances (e.g. which link).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Emitting subsystem (`"flow"`, `"fifo"`, `"gpusim"`, `"mpisim"`,
    /// `"exchange"`).
    pub subsystem: &'static str,
    /// Metric name within the subsystem, with the unit as a suffix where it
    /// is not obvious (`_bytes`, `_ps`).
    pub name: &'static str,
    /// Key/value labels, in the order the instrumentation site lists them.
    pub labels: Vec<(&'static str, String)>,
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.subsystem, self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// A level with its observed maximum (the high-water mark).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Gauge {
    /// Current level.
    pub current: f64,
    /// Highest level ever set.
    pub max: f64,
}

impl Gauge {
    /// Set the level, raising `max` if exceeded.
    pub fn set(&mut self, value: f64) {
        self.current = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&mut self, delta: f64) {
        self.set(self.current + delta);
    }

    /// Combine with another gauge: levels add (they measure disjoint
    /// populations), maxima take the larger. Note the merged `max` is a lower
    /// bound on the true combined high-water mark — concurrent peaks in the
    /// two sources cannot be reconstructed after the fact.
    pub fn merge(&mut self, other: &Gauge) {
        self.current += other.current;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Weighted observations: count, total weight, weighted sum, min/max, and
/// power-of-two buckets of weight by value.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Number of observations (including zero-weight ones).
    pub count: u64,
    /// Total weight observed.
    pub weight: f64,
    /// Sum of `value * weight` over all observations.
    pub sum: f64,
    /// Smallest value observed; meaningless while `count == 0`.
    pub min: f64,
    /// Largest value observed; meaningless while `count == 0`.
    pub max: f64,
    buckets: [f64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            weight: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0.0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for `value`: 0 for values `<= 1`, otherwise
    /// `ceil(log2(value))`, clamped to the last bucket.
    pub fn bucket_of(value: f64) -> usize {
        // NaN also lands in bucket 0.
        if value.is_nan() || value <= 1.0 {
            return 0;
        }
        let b = value.log2().ceil();
        if b >= (HIST_BUCKETS - 1) as f64 {
            HIST_BUCKETS - 1
        } else {
            b as usize
        }
    }

    /// Record `value` with weight 1.
    pub fn observe(&mut self, value: f64) {
        self.observe_weighted(value, 1.0);
    }

    /// Record `value` carrying `weight` (e.g. the seconds a link spent at a
    /// utilization level). Zero-weight observations still update count and
    /// min/max.
    pub fn observe_weighted(&mut self, value: f64, weight: f64) {
        self.count += 1;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        if weight > 0.0 {
            self.weight += weight;
            self.sum += value * weight;
            self.buckets[Self::bucket_of(value)] += weight;
        }
    }

    /// Weighted mean of the observations (0 if nothing with positive weight
    /// was recorded).
    pub fn mean(&self) -> f64 {
        if self.weight > 0.0 {
            self.sum / self.weight
        } else {
            0.0
        }
    }

    /// Combine with another histogram over a disjoint set of observations.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.weight += other.weight;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }

    /// The non-empty buckets as `(upper_bound, weight)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(|(i, w)| (2f64.powi(i as i32), *w))
            .collect()
    }
}

/// A recorded metric value of one of the three kinds.
// Histograms dominate the enum size, but registries hold at most a few
// hundred values, so the indirection of boxing isn't worth it.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Level with high-water mark.
    Gauge(Gauge),
    /// Weighted value distribution.
    Histogram(Histogram),
}

/// The registry. Lives on [`Kernel::metrics`](crate::Kernel); disabled (and
/// free) until [`Metrics::enable`] is called.
#[derive(Default)]
pub struct Metrics {
    enabled: bool,
    values: BTreeMap<MetricId, MetricValue>,
}

fn make_id(
    subsystem: &'static str,
    name: &'static str,
    labels: &[(&'static str, &str)],
) -> MetricId {
    MetricId {
        subsystem,
        name,
        labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
    }
}

impl Metrics {
    /// A disabled, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin recording. Instrumentation sites are no-ops until this is
    /// called.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is active. Instrumentation sites with non-trivial
    /// label construction should check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    /// No-op while disabled. Panics if the id is already a non-counter.
    pub fn counter_add(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
        delta: u64,
    ) {
        if !self.enabled {
            return;
        }
        match self
            .values
            .entry(make_id(subsystem, name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += delta,
            _ => panic!("metric {subsystem}/{name} is not a counter"),
        }
    }

    /// Set a gauge level (tracking the max). No-op while disabled.
    pub fn gauge_set(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
        value: f64,
    ) {
        if !self.enabled {
            return;
        }
        match self
            .values
            .entry(make_id(subsystem, name, labels))
            .or_insert(MetricValue::Gauge(Gauge::default()))
        {
            MetricValue::Gauge(g) => g.set(value),
            _ => panic!("metric {subsystem}/{name} is not a gauge"),
        }
    }

    /// Adjust a gauge level by `delta` (tracking the max). No-op while
    /// disabled.
    pub fn gauge_add(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
        delta: f64,
    ) {
        if !self.enabled {
            return;
        }
        match self
            .values
            .entry(make_id(subsystem, name, labels))
            .or_insert(MetricValue::Gauge(Gauge::default()))
        {
            MetricValue::Gauge(g) => g.add(delta),
            _ => panic!("metric {subsystem}/{name} is not a gauge"),
        }
    }

    /// Record a histogram observation with weight 1. No-op while disabled.
    pub fn observe(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
        value: f64,
    ) {
        self.observe_weighted(subsystem, name, labels, value, 1.0);
    }

    /// Record a weighted histogram observation (weight = elapsed seconds for
    /// time-weighted series). No-op while disabled.
    pub fn observe_weighted(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
        value: f64,
        weight: f64,
    ) {
        if !self.enabled {
            return;
        }
        match self
            .values
            .entry(make_id(subsystem, name, labels))
            .or_insert(MetricValue::Histogram(Histogram::default()))
        {
            MetricValue::Histogram(h) => h.observe_weighted(value, weight),
            _ => panic!("metric {subsystem}/{name} is not a histogram"),
        }
    }

    /// Read a counter (0 if never recorded). Works regardless of enablement.
    pub fn counter(
        &self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> u64 {
        match self.values.get(&make_id(subsystem, name, labels)) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Read a gauge, if recorded.
    pub fn gauge(
        &self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<Gauge> {
        match self.values.get(&make_id(subsystem, name, labels)) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Read a histogram, if recorded.
    pub fn histogram(
        &self,
        subsystem: &'static str,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<&Histogram> {
        match self.values.get(&make_id(subsystem, name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of distinct metric ids recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Snapshot the registry into an immutable, renderable report.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            entries: self
                .values
                .iter()
                .map(|(id, v)| (id.clone(), v.clone()))
                .collect(),
        }
    }
}

/// An immutable snapshot of a [`Metrics`] registry, renderable as an aligned
/// text table ([`MetricsReport::to_text`]) or JSON
/// ([`MetricsReport::to_json`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    entries: Vec<(MetricId, MetricValue)>,
}

/// Format an `f64` for JSON: shortest round-trip representation; non-finite
/// values (possible only in never-observed min/max) become `null`.
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl MetricsReport {
    /// All entries, ordered by id.
    pub fn entries(&self) -> &[(MetricId, MetricValue)] {
        &self.entries
    }

    /// Look up one entry by id components.
    pub fn get(
        &self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(id, _)| {
                id.subsystem == subsystem
                    && id.name == name
                    && id.labels.len() == labels.len()
                    && id
                        .labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
            })
            .map(|(_, v)| v)
    }

    /// Read a counter entry (0 if absent).
    pub fn counter(&self, subsystem: &str, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(subsystem, name, labels) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Render as an aligned text table, one metric per row.
    pub fn to_text(&self) -> String {
        let ids: Vec<String> = self.entries.iter().map(|(id, _)| id.to_string()).collect();
        let idw = ids.iter().map(|s| s.len()).max().unwrap_or(6).max(6);
        let mut out = String::new();
        let _ = writeln!(out, "{:<idw$}  {:<9}  value", "metric", "kind");
        let _ = writeln!(out, "{:-<idw$}  {:-<9}  {:-<40}", "", "", "");
        for (id_str, (_, v)) in ids.iter().zip(self.entries.iter()) {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{id_str:<idw$}  {:<9}  {c}", "counter");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{id_str:<idw$}  {:<9}  current={} max={}",
                        "gauge", g.current, g.max
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{id_str:<idw$}  {:<9}  count={} mean={:.6} min={} max={} weight={:.6}",
                        "histogram",
                        h.count,
                        h.mean(),
                        if h.count > 0 { h.min } else { 0.0 },
                        if h.count > 0 { h.max } else { 0.0 },
                        h.weight,
                    );
                }
            }
        }
        out
    }

    /// Serialize as JSON: `{"schema_version": N, "metrics": [entry, ...]}`
    /// where each entry carries `subsystem`, `name`, `labels` (object),
    /// `type`, and kind-specific fields. Hand-rolled writer — the format is
    /// small and this avoids a serialization dependency. See
    /// `docs/OBSERVABILITY.md` for the schema and [`SCHEMA_VERSION`] for
    /// the versioning contract.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"schema_version\":{SCHEMA_VERSION},\"metrics\":[\n");
        for (i, (id, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("{\"subsystem\":\"");
            json_escape(id.subsystem, &mut out);
            out.push_str("\",\"name\":\"");
            json_escape(id.name, &mut out);
            out.push_str("\",\"labels\":{");
            for (j, (k, val)) in id.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(k, &mut out);
                out.push_str("\":\"");
                json_escape(val, &mut out);
                out.push('"');
            }
            out.push_str("},");
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{c}");
                }
                MetricValue::Gauge(g) => {
                    out.push_str("\"type\":\"gauge\",\"current\":");
                    json_f64(g.current, &mut out);
                    out.push_str(",\"max\":");
                    json_f64(g.max, &mut out);
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "\"type\":\"histogram\",\"count\":{},", h.count);
                    out.push_str("\"weight\":");
                    json_f64(h.weight, &mut out);
                    out.push_str(",\"sum\":");
                    json_f64(h.sum, &mut out);
                    out.push_str(",\"mean\":");
                    json_f64(h.mean(), &mut out);
                    out.push_str(",\"min\":");
                    json_f64(if h.count > 0 { h.min } else { 0.0 }, &mut out);
                    out.push_str(",\"max\":");
                    json_f64(if h.count > 0 { h.max } else { 0.0 }, &mut out);
                    out.push_str(",\"buckets\":[");
                    for (j, (le, w)) in h.nonzero_buckets().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"le\":");
                        json_f64(le, &mut out);
                        out.push_str(",\"weight\":");
                        json_f64(w, &mut out);
                        out.push('}');
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = Metrics::new();
        m.counter_add("flow", "x_bytes", &[], 10);
        m.gauge_add("flow", "depth", &[], 1.0);
        m.observe("flow", "wait_ps", &[], 5.0);
        assert!(m.is_empty());
        assert_eq!(m.counter("flow", "x_bytes", &[]), 0);
    }

    #[test]
    fn counter_accumulates() {
        let mut m = Metrics::new();
        m.enable();
        m.counter_add("a", "c", &[("k", "v")], 3);
        m.counter_add("a", "c", &[("k", "v")], 4);
        m.counter_add("a", "c", &[("k", "w")], 1);
        assert_eq!(m.counter("a", "c", &[("k", "v")]), 7);
        assert_eq!(m.counter("a", "c", &[("k", "w")]), 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let mut g = Gauge::default();
        g.add(2.0);
        g.add(3.0);
        g.add(-4.0);
        assert_eq!(g.current, 1.0);
        assert_eq!(g.max, 5.0);
        g.set(0.5);
        assert_eq!(g.max, 5.0);
    }

    #[test]
    fn gauge_merge_math() {
        let mut a = Gauge::default();
        a.set(2.0);
        a.set(1.0);
        let mut b = Gauge::default();
        b.set(7.0);
        b.set(3.0);
        a.merge(&b);
        assert_eq!(a.current, 4.0);
        assert_eq!(a.max, 7.0);
    }

    #[test]
    fn histogram_stats_and_buckets() {
        let mut h = Histogram::default();
        h.observe(0.5); // bucket 0
        h.observe(3.0); // (2,4] -> bucket 2
        h.observe_weighted(100.0, 2.0); // (64,128] -> bucket 7
        assert_eq!(h.count, 3);
        assert_eq!(h.weight, 4.0);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - (0.5 + 3.0 + 200.0) / 4.0).abs() < 1e-12);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1.0, 1.0), (4.0, 1.0), (128.0, 2.0)]
        );
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_of(-1.0), 0);
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(1.0), 0);
        assert_eq!(Histogram::bucket_of(2.0), 1);
        assert_eq!(Histogram::bucket_of(2.1), 2);
        assert_eq!(Histogram::bucket_of(4.0), 2);
        assert_eq!(Histogram::bucket_of(f64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_math() {
        let mut a = Histogram::default();
        a.observe(1.0);
        a.observe(8.0);
        let mut b = Histogram::default();
        b.observe_weighted(16.0, 3.0);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.weight, 5.0);
        assert_eq!(merged.sum, 1.0 + 8.0 + 48.0);
        assert_eq!(merged.min, 1.0);
        assert_eq!(merged.max, 16.0);
        // merging an empty histogram changes nothing
        let before = merged.clone();
        merged.merge(&Histogram::default());
        assert_eq!(merged, before);
        // merge is symmetric on these disjoint observations
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(other_way.count, merged.count);
        assert_eq!(other_way.weight, merged.weight);
        assert_eq!(other_way.min, merged.min);
        assert_eq!(other_way.max, merged.max);
    }

    #[test]
    fn report_lookup_and_text() {
        let mut m = Metrics::new();
        m.enable();
        m.counter_add("flow", "link_delivered_bytes", &[("link", "nic")], 42);
        m.gauge_add("fifo", "queue_depth", &[("fifo", "s0")], 2.0);
        m.observe("mpisim", "match_latency_ps", &[], 1000.0);
        let r = m.report();
        assert_eq!(
            r.counter("flow", "link_delivered_bytes", &[("link", "nic")]),
            42
        );
        assert!(r.get("fifo", "queue_depth", &[("fifo", "s0")]).is_some());
        assert!(r.get("fifo", "queue_depth", &[("fifo", "nope")]).is_none());
        let text = r.to_text();
        assert!(
            text.contains("flow/link_delivered_bytes{link=nic}"),
            "{text}"
        );
        assert!(text.contains("counter"), "{text}");
        assert!(text.contains("42"), "{text}");
    }

    #[test]
    fn report_json_schema() {
        let mut m = Metrics::new();
        m.enable();
        m.counter_add("flow", "link_delivered_bytes", &[("link", "a\"b")], 7);
        m.gauge_set("flow", "active_flows", &[], 2.0);
        m.observe_weighted("flow", "link_utilization", &[("link", "nic")], 0.5, 0.25);
        let json = m.report().to_json();
        assert!(
            json.starts_with(&format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"metrics\":["
            )),
            "{json}"
        );
        assert!(json.contains("\"type\":\"counter\",\"value\":7"), "{json}");
        assert!(json.contains("a\\\"b"), "label quotes escaped: {json}");
        assert!(
            json.contains("\"type\":\"gauge\",\"current\":2,\"max\":2"),
            "{json}"
        );
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert!(
            json.contains("\"buckets\":[{\"le\":1,\"weight\":0.25}]"),
            "{json}"
        );
        assert!(json.trim_end().ends_with("]}"), "{json}");
    }

    #[test]
    fn report_is_deterministically_ordered() {
        let build = |order_flip: bool| {
            let mut m = Metrics::new();
            m.enable();
            if order_flip {
                m.counter_add("b", "x", &[], 1);
                m.counter_add("a", "x", &[], 1);
            } else {
                m.counter_add("a", "x", &[], 1);
                m.counter_add("b", "x", &[], 1);
            }
            m.report().to_json()
        };
        assert_eq!(build(false), build(true));
    }
}
