//! Large-world stress tests for the coroutine rank runtime.
//!
//! Under the old one-OS-thread-per-rank scheduler these worlds were
//! impractical (27,648 threads is beyond default pid/mmap limits and takes
//! seconds just to spawn); under stackful coroutines a rank costs one heap
//! allocation, so a full-Summit world (4608 nodes × 6 ranks) is an
//! ordinary test case. See `docs/RUNTIME.md` for the execution model.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use detsim::{Sim, SimDuration};

/// Full-Summit rank count: 4608 nodes × 6 ranks.
const FULL_SUMMIT_RANKS: usize = 27_648;

#[test]
fn full_summit_world_spawns_runs_and_tears_down() {
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&ran);
    let mut sim = Sim::new();
    sim.run(FULL_SUMMIT_RANKS, move |ctx| {
        // Every rank advances virtual time and yields at least once, so the
        // whole world interleaves through the scheduler rather than running
        // each rank to completion in isolation.
        ctx.delay(SimDuration::from_nanos((ctx.tid() % 97) as u64));
        ctx.yield_now();
        r2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ran.load(Ordering::Relaxed), FULL_SUMMIT_RANKS);
}

#[test]
fn full_summit_world_repeated_runs_reuse_cleanly() {
    // Spawn/teardown twice on one Sim: leaked or stale per-rank state from
    // the first world would corrupt the second.
    let mut sim = Sim::new();
    for round in 0..2u64 {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        sim.run(FULL_SUMMIT_RANKS, move |ctx| {
            ctx.delay(SimDuration::from_nanos(round + 1));
            h2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), FULL_SUMMIT_RANKS);
    }
}

#[test]
fn large_world_virtual_times_are_deterministic() {
    // 27k ranks racing delays must settle to the same final virtual clock
    // on every run (scheduling order is part of the determinism contract).
    let run_once = || {
        let mut sim = Sim::new();
        let end = Arc::new(parking_lot::Mutex::new(detsim::SimTime::ZERO));
        let e2 = Arc::clone(&end);
        sim.run(FULL_SUMMIT_RANKS, move |ctx| {
            ctx.delay(SimDuration::from_nanos((ctx.tid() as u64 * 37) % 1009));
            ctx.yield_now();
            ctx.delay(SimDuration::from_nanos((ctx.tid() as u64 * 11) % 499));
            let mut e = e2.lock();
            if ctx.now() > *e {
                *e = ctx.now();
            }
        });
        let t = *end.lock();
        t
    };
    assert_eq!(run_once(), run_once());
}
