//! Property test: the incremental flow-network implementation (cached link
//! shares, indexed membership, settle-only-affected-flows) agrees with a
//! naive recompute-everything oracle.
//!
//! The oracle re-derives **every** flow's rate from scratch at **every**
//! membership change and settles **every** flow at every event instant —
//! the O(flows x links) algorithm the kernel deliberately avoids. Both see
//! the same deterministic churn tables (LCG-generated arrivals over shared
//! links, in several waves so flow slots are freed and reused, exercising
//! the generation machinery). Agreement is checked on:
//!
//! * completion times, within a few ps: the implementations settle
//!   floating-point state in different orders/granularities, so the last
//!   ulp of `remaining` can differ, and the kernel's finish-triggered
//!   reshare can nudge a simultaneous completion by a picosecond. Any
//!   *rate* disagreement would show up as ~0.1%+ shifts, six orders of
//!   magnitude above the tolerance.
//! * per-link delivered bytes, exactly (integer accounting).
//! * completion count and an empty network at the end.

use std::sync::Arc;

use detsim::{Kernel, LinkId, SimDuration, PS_PER_SEC};
use parking_lot::Mutex;

/// Tolerance on completion-time agreement, in picoseconds.
const TOL_PS: i64 = 5_000; // 5 ns; transfers here run for ~0.1-1 ms

#[derive(Clone)]
struct LinkSpec {
    capacity: f64, // bytes/sec
    latency_ns: u64,
}

#[derive(Clone)]
struct FlowSpec {
    start_ps: u64,
    path: Vec<usize>, // indices into the link table, distinct
    bytes: u64,
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A mid-run link-capacity change (the fault-injection path).
#[derive(Clone)]
struct CapEvent {
    at_ps: u64,
    link: usize,
    capacity: f64, // bytes/sec, absolute
}

/// Deterministic capacity churn overlapping the flow waves: degradations,
/// restorations, and upgrades land while flows are in flight, so the
/// kernel's `set_link_capacity` re-settle/re-share path runs against live
/// traffic.
fn capacity_churn(seed: u64, links: &[LinkSpec]) -> Vec<CapEvent> {
    let mut rng = Lcg(seed ^ 0xC0FFEE);
    let factors = [0.1, 0.25, 0.5, 1.0, 2.0];
    let mut evs = Vec::new();
    for wave in 0..3u64 {
        let wave_start = wave * 8 * PS_PER_SEC / 1000;
        for _ in 0..10 {
            // Spread across the wave's whole active period (arrivals over
            // 0.2 ms, drain over a few ms).
            let at_ps = wave_start + rng.below(2_500_000_000);
            let link = rng.below(links.len() as u64) as usize;
            let f = factors[rng.below(factors.len() as u64) as usize];
            evs.push(CapEvent {
                at_ps,
                link,
                capacity: links[link].capacity * f,
            });
        }
    }
    evs.sort_by_key(|a| (a.at_ps, a.link));
    evs
}

fn churn_table(seed: u64, links: &[LinkSpec]) -> Vec<FlowSpec> {
    let mut rng = Lcg(seed);
    let mut flows = Vec::new();
    // Three waves with dead time between them: wave n+1 starts only after
    // every wave-n flow has long finished, so its flows are allocated into
    // reused slots whose generation floors are nonzero.
    for wave in 0..3u64 {
        let wave_start = wave * 8 * PS_PER_SEC / 1000; // 8 ms apart
        for _ in 0..60 {
            let start_ps = wave_start + rng.below(200_000_000); // 0.2 ms spread
            let nlinks = 1 + rng.below(3) as usize;
            let mut path = Vec::with_capacity(nlinks);
            while path.len() < nlinks {
                let l = rng.below(links.len() as u64) as usize;
                if !path.contains(&l) {
                    path.push(l);
                }
            }
            let bytes = 50_000 + rng.below(2_000_000);
            flows.push(FlowSpec {
                start_ps,
                path,
                bytes,
            });
        }
    }
    flows
}

/// Run the churn table (plus any capacity-change events) through the real
/// kernel; returns per-flow completion times (ps) and per-link delivered
/// bytes.
fn run_kernel(
    links: &[LinkSpec],
    flows: &[FlowSpec],
    caps: &[CapEvent],
    metrics: bool,
) -> (Vec<u64>, Vec<u64>) {
    let mut k = Kernel::new();
    if metrics {
        k.metrics.enable();
    }
    let ids: Vec<LinkId> = links
        .iter()
        .enumerate()
        .map(|(i, l)| {
            k.add_link(
                format!("l{i}"),
                l.capacity,
                SimDuration::from_nanos(l.latency_ns),
            )
        })
        .collect();
    let done: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for (idx, f) in flows.iter().enumerate() {
        let path: Vec<LinkId> = f.path.iter().map(|&l| ids[l]).collect();
        let bytes = f.bytes;
        let done = Arc::clone(&done);
        k.schedule_in(SimDuration::from_picos(f.start_ps), move |k| {
            k.start_flow(&path, bytes, move |k| {
                done.lock().push((idx, k.now().picos()));
            });
        });
    }
    for c in caps {
        let link = ids[c.link];
        let capacity = c.capacity;
        k.schedule_in(SimDuration::from_picos(c.at_ps), move |k| {
            k.set_link_capacity(link, capacity);
        });
    }
    k.run_to_completion();
    assert_eq!(k.active_flows(), 0, "flows left in the network");
    let mut times = vec![0u64; flows.len()];
    let finished = done.lock();
    assert_eq!(finished.len(), flows.len(), "not every flow completed");
    for &(idx, t) in finished.iter() {
        times[idx] = t;
    }
    let delivered = ids.iter().map(|&l| k.link_delivered(l)).collect();
    (times, delivered)
}

struct OracleFlow {
    idx: usize,
    path: Vec<usize>,
    remaining: f64,
    rate: f64,
}

/// Naive reference: settle every active flow and recompute every rate from
/// scratch at every membership *or capacity* change.
fn run_oracle(links: &[LinkSpec], flows: &[FlowSpec], caps: &[CapEvent]) -> (Vec<u64>, Vec<u64>) {
    let mut links = links.to_vec(); // capacities mutate under churn
                                    // Arrival = start + full path latency, as the kernel charges it.
    let mut arrivals: Vec<(u64, usize)> = flows
        .iter()
        .enumerate()
        .map(|(idx, f)| {
            let lat_ps: u64 = f.path.iter().map(|&l| links[l].latency_ns * 1_000).sum();
            (f.start_ps + lat_ps, idx)
        })
        .collect();
    arrivals.sort(); // by (time, flow index)
    let mut next_arrival = 0usize;
    let mut next_cap = 0usize;
    let mut active: Vec<OracleFlow> = Vec::new();
    let mut times = vec![0u64; flows.len()];
    let mut delivered = vec![0u64; links.len()];
    let mut now_ps = 0u64;

    let recompute = |active: &mut Vec<OracleFlow>, links: &[LinkSpec]| {
        let mut counts = vec![0usize; links.len()];
        for f in active.iter() {
            for &l in &f.path {
                counts[l] += 1;
            }
        }
        for f in active.iter_mut() {
            let mut rate = f64::INFINITY;
            for &l in &f.path {
                rate = rate.min(links[l].capacity / counts[l] as f64);
            }
            f.rate = rate;
        }
    };
    let settle = |active: &mut Vec<OracleFlow>, from_ps: u64, to_ps: u64| {
        let dt = (to_ps - from_ps) as f64 / PS_PER_SEC as f64;
        for f in active.iter_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
    };

    while next_arrival < arrivals.len() || !active.is_empty() {
        // Earliest projected completion under current rates.
        let fin = active
            .iter()
            .map(|f| now_ps + SimDuration::from_secs_f64(f.remaining / f.rate).picos())
            .min();
        let arr = arrivals.get(next_arrival).map(|&(t, _)| t);
        // Capacity changes with nothing left to re-rate are irrelevant.
        let chg = caps.get(next_cap).map(|c| c.at_ps);
        let t = [fin, arr, chg]
            .into_iter()
            .flatten()
            .min()
            .expect("loop invariant: an arrival or an active flow exists");
        settle(&mut active, now_ps, t);
        now_ps = t;
        // Completions strictly before new arrivals join (the kernel's
        // event queue orders the earlier-scheduled completion first; at
        // ps-level ties the tolerance absorbs the difference).
        if fin == Some(t) {
            let mut i = 0;
            while i < active.len() {
                let eta = SimDuration::from_secs_f64(active[i].remaining / active[i].rate).picos();
                if eta == 0 {
                    let f = active.swap_remove(i);
                    times[f.idx] = now_ps;
                    for &l in &f.path {
                        delivered[l] += flows[f.idx].bytes;
                    }
                } else {
                    i += 1;
                }
            }
        }
        while arrivals.get(next_arrival).map(|&(t2, _)| t2) == Some(now_ps) {
            let idx = arrivals[next_arrival].1;
            next_arrival += 1;
            active.push(OracleFlow {
                idx,
                path: flows[idx].path.clone(),
                remaining: flows[idx].bytes as f64,
                rate: 0.0,
            });
        }
        // Capacity changes at this instant take effect for the *next*
        // interval — same semantics as the kernel's settle-then-change.
        while caps.get(next_cap).map(|c| c.at_ps) == Some(now_ps) {
            let c = &caps[next_cap];
            next_cap += 1;
            links[c.link].capacity = c.capacity;
        }
        recompute(&mut active, &links);
    }
    (times, delivered)
}

fn links_under_test() -> Vec<LinkSpec> {
    vec![
        LinkSpec {
            capacity: 12.5e9,
            latency_ns: 1_000,
        },
        LinkSpec {
            capacity: 25.0e9,
            latency_ns: 500,
        },
        LinkSpec {
            capacity: 10.0e9,
            latency_ns: 0,
        },
        LinkSpec {
            capacity: 6.0e9,
            latency_ns: 2_000,
        },
        LinkSpec {
            capacity: 50.0e9,
            latency_ns: 100,
        },
        LinkSpec {
            capacity: 3.0e9,
            latency_ns: 700,
        },
    ]
}

#[test]
fn incremental_reshare_matches_naive_oracle() {
    let links = links_under_test();
    for seed in [7, 42, 20260806] {
        let flows = churn_table(seed, &links);
        let (kernel_times, kernel_delivered) = run_kernel(&links, &flows, &[], false);
        let (oracle_times, oracle_delivered) = run_oracle(&links, &flows, &[]);
        for (idx, (&kt, &ot)) in kernel_times.iter().zip(&oracle_times).enumerate() {
            let diff = kt as i64 - ot as i64;
            assert!(
                diff.abs() <= TOL_PS,
                "seed {seed} flow {idx}: kernel {kt} ps vs oracle {ot} ps (diff {diff} ps)"
            );
        }
        assert_eq!(
            kernel_delivered, oracle_delivered,
            "seed {seed}: delivered-byte accounting diverged"
        );
    }
}

/// `set_link_capacity` mid-flight must re-settle and re-rate exactly like
/// the recompute-everything oracle: degradations, restorations, and
/// upgrades land while waves of flows are active.
#[test]
fn capacity_churn_matches_naive_oracle() {
    let links = links_under_test();
    for seed in [7, 42, 20260806] {
        let flows = churn_table(seed, &links);
        let caps = capacity_churn(seed, &links);
        assert!(!caps.is_empty());
        let (kernel_times, kernel_delivered) = run_kernel(&links, &flows, &caps, false);
        let (oracle_times, oracle_delivered) = run_oracle(&links, &flows, &caps);
        for (idx, (&kt, &ot)) in kernel_times.iter().zip(&oracle_times).enumerate() {
            let diff = kt as i64 - ot as i64;
            assert!(
                diff.abs() <= TOL_PS,
                "seed {seed} flow {idx}: kernel {kt} ps vs oracle {ot} ps (diff {diff} ps)"
            );
        }
        assert_eq!(
            kernel_delivered, oracle_delivered,
            "seed {seed}: delivered-byte accounting diverged under capacity churn"
        );
        // Same churn twice -> bit-identical, metrics on or off.
        let again = run_kernel(&links, &flows, &caps, true);
        assert_eq!(
            kernel_times, again.0,
            "capacity churn must be deterministic"
        );
        assert_eq!(kernel_delivered, again.1);
    }
}

#[test]
fn churn_with_slot_reuse_is_deterministic_and_drops_stale_events() {
    let links = links_under_test();
    let flows = churn_table(99, &links);
    let (a, da) = run_kernel(&links, &flows, &[], false);
    let (b, db) = run_kernel(&links, &flows, &[], false);
    assert_eq!(a, b, "identical churn must give bit-identical times");
    assert_eq!(da, db);

    // The waves re-rate each other constantly; most projections go stale.
    let mut k = Kernel::new();
    let ids: Vec<LinkId> = links
        .iter()
        .enumerate()
        .map(|(i, l)| {
            k.add_link(
                format!("l{i}"),
                l.capacity,
                SimDuration::from_nanos(l.latency_ns),
            )
        })
        .collect();
    for f in &flows {
        let path: Vec<LinkId> = f.path.iter().map(|&l| ids[l]).collect();
        let bytes = f.bytes;
        k.schedule_in(SimDuration::from_picos(f.start_ps), move |k| {
            k.start_flow(&path, bytes, |_| {});
        });
    }
    k.run_to_completion();
    assert!(
        k.stale_events_dropped() > 0,
        "churn should have superseded at least one projection"
    );
}

#[test]
fn metrics_collection_does_not_change_flow_times() {
    let links = links_under_test();
    let flows = churn_table(7, &links);
    let (plain, d1) = run_kernel(&links, &flows, &[], false);
    let (metered, d2) = run_kernel(&links, &flows, &[], true);
    assert_eq!(plain, metered, "metrics perturbed virtual completion times");
    assert_eq!(d1, d2);
}
