#[test]
fn staggered_flows_respect_capacity() {
    use detsim::{Kernel, SimDuration};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut k = Kernel::new();
    let l = k.add_link("l", 25e9, SimDuration::from_micros(1));
    let last_end = Arc::new(AtomicU64::new(0));
    // 100 flows of 4 MB each, staggered 10us apart: 400 MB over 25 GB/s = 16 ms minimum
    for i in 0..100u64 {
        let le = Arc::clone(&last_end);
        k.schedule_in(SimDuration::from_micros(10 * i), move |k| {
            k.start_flow(&[l], 4_000_000, move |k| {
                le.fetch_max(k.now().picos(), Ordering::SeqCst);
            });
        });
    }
    k.run_to_completion();
    let end_s = last_end.load(Ordering::SeqCst) as f64 / 1e12;
    println!("last end: {:.3} ms", end_s * 1e3);
    assert!(end_s >= 0.016, "conservation violated: {end_s}");
}

#[test]
fn random_staggered_flows_never_exceed_capacity() {
    use detsim::{Kernel, SimDuration};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut state = 42u64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for trial in 0..50 {
        let mut k = Kernel::new();
        let cap = 25e9;
        let l = k.add_link("l", cap, SimDuration::from_micros(1));
        let last_end = Arc::new(AtomicU64::new(0));
        let first_start = Arc::new(AtomicU64::new(u64::MAX));
        let mut total = 0u64;
        let n = 20 + rnd() % 200;
        for _ in 0..n {
            let bytes = 1000 + rnd() % 20_000_000;
            total += bytes;
            let at = SimDuration::from_nanos(rnd() % 3_000_000);
            let le = Arc::clone(&last_end);
            let fs = Arc::clone(&first_start);
            k.schedule_in(at, move |k| {
                fs.fetch_min(k.now().picos(), Ordering::SeqCst);
                k.start_flow(&[l], bytes, move |k| {
                    le.fetch_max(k.now().picos(), Ordering::SeqCst);
                });
            });
        }
        k.run_to_completion();
        let window =
            (last_end.load(Ordering::SeqCst) - first_start.load(Ordering::SeqCst)) as f64 / 1e12;
        let floor = total as f64 / cap;
        assert!(
            window >= floor * 0.999,
            "trial {trial}: {total} bytes in {window}s < floor {floor}s"
        );
    }
}

#[test]
fn peak_utilization_never_exceeds_one() {
    use detsim::{Kernel, SimDuration};
    let mut state = 7u64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for trial in 0..200 {
        let mut k = Kernel::new();
        let l = k.add_link("l", 1e9, SimDuration::from_micros(1));
        let l2 = k.add_link("l2", 2e9, SimDuration::from_micros(2));
        let n = 2 + rnd() % 50;
        for i in 0..n {
            let bytes = 1 + rnd() % 5_000_000;
            let at = SimDuration::from_nanos(rnd() % 2_000_000);
            let two = rnd() % 2 == 0;
            k.schedule_in(at, move |k| {
                let path: Vec<_> = if two { vec![l, l2] } else { vec![l] };
                k.start_flow(&path, bytes, |_| {});
            });
            let _ = i;
        }
        k.run_to_completion();
        let u1 = k.link_peak_utilization(l);
        let u2 = k.link_peak_utilization(l2);
        assert!(
            u1 <= 1.0 + 1e-9 && u2 <= 1.0 + 1e-9,
            "trial {trial}: over-allocation u1={u1} u2={u2}"
        );
    }
}

/// Regression test: flow slots are recycled; a stale completion event from a
/// previous occupant must never complete the new flow early. (This bug let
/// large simulations deliver more bytes than link capacity allowed.)
#[test]
fn slot_reuse_does_not_finish_new_flows_early() {
    use detsim::{Kernel, SimDuration};
    let mut k = Kernel::new();
    let l = k.add_link("l", 1e9, SimDuration::ZERO);
    // Flow A: finishes quickly, slot freed. Its completion reschedules often.
    for round in 0..50u64 {
        k.schedule_in(SimDuration::from_micros(round * 100), move |k| {
            k.start_flow(&[l], 1_000 + round, |_| {});
        });
    }
    // One long flow whose slot churns through many generations around it.
    k.schedule_in(SimDuration::from_micros(10), move |k| {
        k.start_flow(&[l], 5_000_000, |k| {
            // 5 MB at <= 1 GB/s takes >= 5 ms.
            assert!(
                k.now().picos() >= 5_000_000_000,
                "long flow finished early at {}",
                k.now()
            );
        });
    });
    k.run_to_completion();
    let busy = k.link_busy_bytes(l);
    let delivered = k.link_delivered(l) as f64;
    assert!(
        (busy - delivered).abs() < delivered * 1e-6,
        "load integral {busy} != delivered {delivered}"
    );
}
