//! Property-style tests for the fair-share flow network: conservation,
//! fairness, monotonicity, and determinism under randomized workloads.
//!
//! Cases are driven by a deterministic xorshift generator over fixed seed
//! ranges (no external property-testing dependency), so every run exercises
//! the same inputs.

use detsim::{Kernel, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic xorshift for workload generation.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// No link ever runs above capacity, and total delivered bytes match the
/// load integral, for arbitrary multi-link flow mixes.
#[test]
fn prop_capacity_and_conservation() {
    for case in 0u64..40 {
        let mut r = rng(case * 251 + 17);
        let nflows = 1 + (case as usize * 2) % 80;
        let mut k = Kernel::new();
        let links: Vec<_> = (0..4)
            .map(|i| {
                k.add_link(
                    format!("l{i}"),
                    1e9 * (1.0 + (r() % 10) as f64),
                    SimDuration::from_nanos(r() % 3000),
                )
            })
            .collect();
        for _ in 0..nflows {
            let bytes = 1 + r() % 8_000_000;
            let at = SimDuration::from_nanos(r() % 4_000_000);
            // path of 1-2 distinct links
            let mut path = vec![links[(r() % 4) as usize]];
            if r().is_multiple_of(2) {
                let l = links[(r() % 4) as usize];
                if !path.contains(&l) {
                    path.push(l);
                }
            }
            k.schedule_in(at, move |k| {
                k.start_flow(&path, bytes, |_| {});
            });
        }
        k.run_to_completion();
        for &l in &links {
            assert!(
                k.link_peak_utilization(l) <= 1.0 + 1e-9,
                "case {case}: link over capacity: {}",
                k.link_peak_utilization(l)
            );
            let busy = k.link_busy_bytes(l);
            let delivered = k.link_delivered(l) as f64;
            assert!(
                (busy - delivered).abs() <= delivered * 1e-6 + 1.0,
                "case {case}: integral {busy} != delivered {delivered}"
            );
        }
        assert_eq!(k.active_flows(), 0, "case {case}");
    }
}

/// The per-link delivered-bytes metric must equal `link_delivered` exactly,
/// and busy time must never exceed elapsed time.
#[test]
fn prop_metrics_conserve_link_bytes() {
    for case in 0u64..20 {
        let mut r = rng(case * 7919 + 3);
        let mut k = Kernel::new();
        k.metrics.enable();
        let links: Vec<_> = (0..3)
            .map(|i| {
                k.add_link(
                    format!("l{i}"),
                    1e9 * (1.0 + (r() % 5) as f64),
                    SimDuration::from_nanos(r() % 1000),
                )
            })
            .collect();
        for _ in 0..(5 + (case as usize * 3) % 40) {
            let bytes = 1 + r() % 4_000_000;
            let at = SimDuration::from_nanos(r() % 2_000_000);
            let path = vec![links[(r() % 3) as usize]];
            k.schedule_in(at, move |k| {
                k.start_flow(&path, bytes, |_| {});
            });
        }
        k.run_to_completion();
        let elapsed = k.now().picos();
        for (i, &l) in links.iter().enumerate() {
            let name = format!("l{i}");
            let metric = k
                .metrics
                .counter("flow", "link_delivered_bytes", &[("link", &name)]);
            assert_eq!(
                metric,
                k.link_delivered(l),
                "case {case}: metric bytes != link_delivered on {name}"
            );
            let busy = k
                .metrics
                .counter("flow", "link_busy_ps", &[("link", &name)]);
            assert!(
                busy <= elapsed,
                "case {case}: busy {busy} ps exceeds elapsed {elapsed} ps"
            );
            // the active-flow gauge must have drained back to zero
            if let Some(g) = k
                .metrics
                .gauge("flow", "link_active_flows", &[("link", &name)])
            {
                assert_eq!(g.current, 0.0, "case {case}: flows left on {name}");
                assert!(g.max >= 1.0, "case {case}: no high-water mark on {name}");
            }
        }
    }
}

/// Two identical flows arriving together finish together (fairness).
#[test]
fn prop_equal_flows_finish_together() {
    for case in 0u64..30 {
        let mut r = rng(case + 101);
        let bytes = 1_000 + r() % 4_999_000;
        let n = 2 + (r() % 10) as usize;
        let mut k = Kernel::new();
        let l = k.add_link("l", 2e9, SimDuration::from_micros(1));
        let ends: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for e in &ends {
            let e = Arc::clone(e);
            k.start_flow(&[l], bytes, move |k| {
                e.store(k.now().picos(), Ordering::SeqCst);
            });
        }
        k.run_to_completion();
        let first = ends[0].load(Ordering::SeqCst);
        for e in &ends {
            let v = e.load(Ordering::SeqCst);
            assert!(v > 0, "case {case}");
            // picosecond rounding can separate them by a hair
            assert!(v.abs_diff(first) <= n as u64, "case {case}");
        }
        // and the shared link serves them at exactly cap/n each
        let expect = bytes as f64 / (2e9 / n as f64);
        let got = first as f64 / 1e12 - 1e-6;
        assert!(
            (got - expect).abs() < expect * 1e-6 + 1e-9,
            "case {case}: got {got}, expect {expect}"
        );
    }
}

/// Adding extra background load never makes a probe flow finish sooner.
#[test]
fn prop_contention_is_monotone() {
    for case in 0u64..25 {
        let seed = case * 191 + 7;
        let extra = (case as usize * 3) % 20;
        let run = |extra: usize| {
            let mut r = rng(seed);
            let mut k = Kernel::new();
            let l = k.add_link("l", 1e9, SimDuration::ZERO);
            let probe_end = Arc::new(AtomicU64::new(0));
            let pe = Arc::clone(&probe_end);
            k.start_flow(&[l], 2_000_000, move |k| {
                pe.store(k.now().picos(), Ordering::SeqCst);
            });
            for _ in 0..extra {
                let bytes = 1 + r() % 1_000_000;
                let at = SimDuration::from_nanos(r() % 1_000_000);
                k.schedule_in(at, move |k| k.start_flow(&[l], bytes, |_| {}));
            }
            k.run_to_completion();
            probe_end.load(Ordering::SeqCst)
        };
        let alone = run(0);
        let loaded = run(extra);
        assert!(
            loaded >= alone,
            "case {case}: background load sped the probe up: {alone} -> {loaded}"
        );
    }
}

/// Identical workloads produce bit-identical completion schedules — and
/// bit-identical metrics reports.
#[test]
fn prop_flow_schedule_deterministic() {
    for case in 0u64..15 {
        let seed = case * 47 + 11;
        let run = || {
            let mut r = rng(seed);
            let mut k = Kernel::new();
            k.metrics.enable();
            let a = k.add_link("a", 3e9, SimDuration::from_nanos(500));
            let b = k.add_link("b", 1e9, SimDuration::from_nanos(100));
            let log: Arc<parking_lot::Mutex<Vec<(u64, u64)>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            for i in 0..40u64 {
                let bytes = 1 + r() % 3_000_000;
                let at = SimDuration::from_nanos(r() % 2_000_000);
                let two = r().is_multiple_of(2);
                let log = Arc::clone(&log);
                k.schedule_in(at, move |k| {
                    let path: Vec<_> = if two { vec![a, b] } else { vec![b] };
                    k.start_flow(&path, bytes, move |k| {
                        log.lock().push((i, k.now().picos()));
                    });
                });
            }
            k.run_to_completion();
            let v = log.lock().clone();
            (v, k.metrics.report().to_json())
        };
        let (sched1, json1) = run();
        let (sched2, json2) = run();
        assert_eq!(
            sched1, sched2,
            "case {case}: schedule must be deterministic"
        );
        assert_eq!(json1, json2, "case {case}: metrics must be bit-identical");
    }
}
