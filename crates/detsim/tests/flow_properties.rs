//! Property tests for the fair-share flow network: conservation, fairness,
//! monotonicity, and determinism under randomized workloads.

use detsim::{Kernel, SimDuration};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic xorshift for workload generation inside proptest cases.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// No link ever runs above capacity, and total delivered bytes match
    /// the load integral, for arbitrary multi-link flow mixes.
    #[test]
    fn prop_capacity_and_conservation(seed in 0u64..10_000, nflows in 1usize..80) {
        let mut r = rng(seed);
        let mut k = Kernel::new();
        let links: Vec<_> = (0..4)
            .map(|i| {
                k.add_link(
                    format!("l{i}"),
                    1e9 * (1.0 + (r() % 10) as f64),
                    SimDuration::from_nanos(r() % 3000),
                )
            })
            .collect();
        for _ in 0..nflows {
            let bytes = 1 + r() % 8_000_000;
            let at = SimDuration::from_nanos(r() % 4_000_000);
            // path of 1-3 distinct links
            let mut path = vec![links[(r() % 4) as usize]];
            if r().is_multiple_of(2) {
                let l = links[(r() % 4) as usize];
                if !path.contains(&l) {
                    path.push(l);
                }
            }
            k.schedule_in(at, move |k| {
                k.start_flow(&path, bytes, |_| {});
            });
        }
        k.run_to_completion();
        for &l in &links {
            prop_assert!(
                k.link_peak_utilization(l) <= 1.0 + 1e-9,
                "link over capacity: {}",
                k.link_peak_utilization(l)
            );
            let busy = k.link_busy_bytes(l);
            let delivered = k.link_delivered(l) as f64;
            prop_assert!(
                (busy - delivered).abs() <= delivered * 1e-6 + 1.0,
                "integral {busy} != delivered {delivered}"
            );
        }
        prop_assert_eq!(k.active_flows(), 0);
    }

    /// Two identical flows arriving together finish together (fairness).
    #[test]
    fn prop_equal_flows_finish_together(bytes in 1_000u64..5_000_000, n in 2usize..12) {
        let mut k = Kernel::new();
        let l = k.add_link("l", 2e9, SimDuration::from_micros(1));
        let ends: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for e in &ends {
            let e = Arc::clone(e);
            k.start_flow(&[l], bytes, move |k| {
                e.store(k.now().picos(), Ordering::SeqCst);
            });
        }
        k.run_to_completion();
        let first = ends[0].load(Ordering::SeqCst);
        for e in &ends {
            let v = e.load(Ordering::SeqCst);
            prop_assert!(v > 0);
            // picosecond rounding can separate them by a hair
            prop_assert!(v.abs_diff(first) <= n as u64);
        }
        // and the shared link serves them at exactly cap/n each
        let expect = bytes as f64 / (2e9 / n as f64);
        let got = first as f64 / 1e12 - 1e-6;
        prop_assert!((got - expect).abs() < expect * 1e-6 + 1e-9);
    }

    /// Adding extra background load never makes a probe flow finish sooner.
    #[test]
    fn prop_contention_is_monotone(seed in 0u64..5_000, extra in 0usize..20) {
        let run = |extra: usize| {
            let mut r = rng(seed);
            let mut k = Kernel::new();
            let l = k.add_link("l", 1e9, SimDuration::ZERO);
            let probe_end = Arc::new(AtomicU64::new(0));
            let pe = Arc::clone(&probe_end);
            k.start_flow(&[l], 2_000_000, move |k| {
                pe.store(k.now().picos(), Ordering::SeqCst);
            });
            for _ in 0..extra {
                let bytes = 1 + r() % 1_000_000;
                let at = SimDuration::from_nanos(r() % 1_000_000);
                k.schedule_in(at, move |k| k.start_flow(&[l], bytes, |_| {}));
            }
            k.run_to_completion();
            probe_end.load(Ordering::SeqCst)
        };
        let alone = run(0);
        let loaded = run(extra);
        prop_assert!(loaded >= alone, "background load sped the probe up: {alone} -> {loaded}");
    }

    /// Identical workloads produce bit-identical completion schedules.
    #[test]
    fn prop_flow_schedule_deterministic(seed in 0u64..5_000) {
        let run = || {
            let mut r = rng(seed);
            let mut k = Kernel::new();
            let a = k.add_link("a", 3e9, SimDuration::from_nanos(500));
            let b = k.add_link("b", 1e9, SimDuration::from_nanos(100));
            let log: Arc<parking_lot::Mutex<Vec<(u64, u64)>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            for i in 0..40u64 {
                let bytes = 1 + r() % 3_000_000;
                let at = SimDuration::from_nanos(r() % 2_000_000);
                let two = r().is_multiple_of(2);
                let log = Arc::clone(&log);
                k.schedule_in(at, move |k| {
                    let path: Vec<_> = if two { vec![a, b] } else { vec![b] };
                    k.start_flow(&path, bytes, move |k| {
                        log.lock().push((i, k.now().picos()));
                    });
                });
            }
            k.run_to_completion();
            let v = log.lock().clone();
            v
        };
        prop_assert_eq!(run(), run());
    }
}
