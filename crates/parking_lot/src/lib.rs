//! Local stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, implemented over `std::sync`.
//!
//! The workspace builds in offline environments with no registry access, so
//! instead of the external dependency this path crate provides the small
//! slice of the `parking_lot` 0.12 API the simulator uses: [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no `Result`, no
//! poisoning). A thread that panics while holding a lock does not poison it
//! for other threads — the simulator's scheduler relies on that to report the
//! *original* panic instead of a cascade of `PoisonError`s.
//!
//! ```
//! let m = parking_lot::Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 2);
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// An RAII guard for [`Mutex`]; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// An RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// An RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API: `lock()`
/// returns the guard directly and ignores poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self` proves
    /// exclusive access).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking until available.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock, blocking until available.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutably borrow the inner value without locking.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock stays usable after a panic");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
