//! The Summit node preset (paper Fig. 10 / Table I).
//!
//! One Summit node: two POWER9 sockets joined by a 64 GB/s X-Bus, three
//! V100 GPUs per socket forming a "triad" — every GPU pair within a triad is
//! joined by a dual NVLink2 connection (50 GB/s per direction), and each GPU
//! has its own 50 GB/s NVLink2 connection to its socket. A dual-rail EDR
//! InfiniBand NIC (~25 GB/s injection) is reachable from both sockets.

use detsim::SimDuration;

use crate::cluster::ClusterSpec;
use crate::node::{LinkKind, NodeSpec};

/// NVLink2 bandwidth per direction between connected endpoints (2 bricks).
pub const NVLINK_BW: f64 = 50e9;
/// X-Bus (SMP interconnect) bandwidth per direction.
pub const XBUS_BW: f64 = 64e9;
/// NIC injection bandwidth (dual-rail EDR InfiniBand), per direction.
pub const NIC_BW: f64 = 25e9;
/// PCIe bandwidth from each socket to the NIC.
pub const PCIE_NIC_BW: f64 = 25e9;
/// V100 device-memory bandwidth (HBM2); used for on-device "kernel" copies.
pub const HBM_BW: f64 = 900e9;

/// Build a Summit node description.
pub fn summit_node() -> NodeSpec {
    let mut n = NodeSpec::new("summit");
    let cpu0 = n.add_cpu();
    let cpu1 = n.add_cpu();
    let gpus: Vec<_> = (0..6).map(|_| n.add_gpu()).collect();
    let nic = n.add_nic();

    let us1 = SimDuration::from_micros(1);
    // SMP interconnect between sockets.
    n.link(cpu0, cpu1, LinkKind::XBus, XBUS_BW, us1);
    // Triads: GPU <-> socket and all GPU pairs within a triad.
    for (socket, triad) in [(cpu0, [0usize, 1, 2]), (cpu1, [3, 4, 5])] {
        for &g in &triad {
            n.link(gpus[g], socket, LinkKind::NvLink, NVLINK_BW, us1);
        }
        for i in 0..3 {
            for j in (i + 1)..3 {
                n.link(
                    gpus[triad[i]],
                    gpus[triad[j]],
                    LinkKind::NvLink,
                    NVLINK_BW,
                    us1,
                );
            }
        }
    }
    // NIC hangs off both sockets.
    n.link(nic, cpu0, LinkKind::Pcie, PCIE_NIC_BW, us1);
    n.link(nic, cpu1, LinkKind::Pcie, PCIE_NIC_BW, us1);
    n
}

/// A cluster of `num_nodes` Summit nodes on a non-blocking switch.
pub fn summit_cluster(num_nodes: usize) -> ClusterSpec {
    ClusterSpec {
        node: summit_node(),
        num_nodes,
        injection_bandwidth: NIC_BW,
        switch_latency: SimDuration::from_nanos(1500),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_cluster_counts() {
        let c = summit_cluster(256);
        assert_eq!(c.total_gpus(), 1536);
        assert_eq!(c.node.name(), "summit");
    }

    #[test]
    fn triad_pairs_have_direct_links() {
        let n = summit_node();
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            let r = n.route(n.gpu(a), n.gpu(b)).unwrap();
            assert_eq!(r.len(), 1, "gpu{a}<->gpu{b} should be one NVLink hop");
        }
    }

    #[test]
    fn cross_triad_pairs_are_three_hops() {
        let n = summit_node();
        for a in 0..3 {
            for b in 3..6 {
                let r = n.route(n.gpu(a), n.gpu(b)).unwrap();
                assert_eq!(r.len(), 3, "gpu{a}<->gpu{b}");
                assert!(r.iter().any(|&li| n.links[li].kind == LinkKind::XBus));
            }
        }
    }
}
