//! # topo — heterogeneous node & cluster topology model
//!
//! Describes the hardware the stencil library runs on: multi-socket,
//! multi-GPU nodes with non-uniform links (NVLink triads, X-Bus SMP
//! interconnect, PCIe-attached NICs) joined by a switch. Provides
//!
//! * [`NodeSpec`] / [`ClusterSpec`] — declarative hardware descriptions with
//!   hop-count routing between components;
//! * [`Fabric`] — the machine instantiated as directed `detsim` links, with
//!   path queries for every transfer the upper layers make (peer copies,
//!   staging copies, inter-node messages, GPUDirect-style routes);
//! * [`NodeDiscovery`] — the simulated analogue of NVML topology queries:
//!   per-pair connectivity classes, nominal bandwidths, peer-access
//!   capability, and the QAP distance matrix of paper §III-B;
//! * [`summit::summit_node`] / [`summit::summit_cluster`] — the Summit
//!   preset (paper Fig. 10, Table I) — plus alternative presets
//!   ([`presets::dgx_node`], [`presets::pcie_workstation_node`]) showing
//!   the model generalizes beyond Summit.
//!
//! ## Example: discovering a Summit node's GPU connectivity
//!
//! ```
//! use topo::summit::summit_node;
//! use topo::{NodeDiscovery, P2PClass};
//!
//! let disc = NodeDiscovery::discover(&summit_node());
//! assert_eq!(disc.num_gpus(), 6);
//! // GPUs 0 and 1 share an NVLink triad; GPUs 0 and 3 sit on
//! // different sockets and talk over the X-Bus.
//! assert_eq!(disc.p2p_class(0, 1), P2PClass::NvLinkDirect);
//! assert_eq!(disc.p2p_class(0, 3), P2PClass::Sys);
//! assert!(disc.can_peer(0, 1));
//! assert!(disc.bandwidth(0, 1) > disc.bandwidth(0, 3));
//! // The QAP distance matrix of paper §III-B is 1/bandwidth.
//! let d = disc.distance_matrix();
//! assert_eq!(d.len(), 6);
//! ```

#![warn(missing_docs)]

mod cluster;
mod discover;
mod node;
pub mod presets;
pub mod summit;

pub use cluster::{ClusterSpec, Fabric, SwitchHierarchy};
pub use discover::{NodeDiscovery, P2PClass, SAME_NOMINAL_BW, SYS_NOMINAL_BW};
pub use node::{CompId, Component, DuplexLink, LinkKind, NodeSpec};
