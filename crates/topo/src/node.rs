//! Intra-node hardware description: components (CPU sockets, GPUs, NICs) and
//! the duplex links connecting them, plus hop-count routing between
//! components.

use detsim::SimDuration;

/// What a physical link is. Only used for reporting and for classifying
/// GPU-GPU connectivity (the discovery API); the simulator cares only about
/// capacity and latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LinkKind {
    /// NVLink (GPU-GPU or GPU-CPU).
    NvLink,
    /// The SMP interconnect between CPU sockets (X-Bus on POWER9).
    XBus,
    /// PCIe between a CPU and a NIC (or a PCIe-attached GPU).
    Pcie,
    /// NIC to the network switch (injection/ejection).
    Network,
}

/// A component inside a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Component {
    /// CPU socket `i`.
    Cpu(usize),
    /// GPU `i` (node-local index).
    Gpu(usize),
    /// NIC `i`.
    Nic(usize),
}

/// Index into [`NodeSpec::components`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct CompId(pub usize);

/// A full-duplex link between two components (instantiated as two directed
/// simulator links, one per direction).
#[derive(Clone, Debug)]
pub struct DuplexLink {
    /// One endpoint.
    pub a: CompId,
    /// Other endpoint.
    pub b: CompId,
    /// Link class.
    pub kind: LinkKind,
    /// Capacity per direction, bytes/second.
    pub bandwidth: f64,
    /// One-way latency.
    pub latency: SimDuration,
}

/// Description of one node's internals.
#[derive(Clone, Debug, Default)]
pub struct NodeSpec {
    /// All components; index = `CompId`.
    pub components: Vec<Component>,
    /// All duplex links.
    pub links: Vec<DuplexLink>,
    name: String,
    cpus: Vec<CompId>,
    gpus: Vec<CompId>,
    nics: Vec<CompId>,
}

impl NodeSpec {
    /// An empty node with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        NodeSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The node model name (e.g. `"summit"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a CPU socket; returns its component id.
    pub fn add_cpu(&mut self) -> CompId {
        let id = CompId(self.components.len());
        self.components.push(Component::Cpu(self.cpus.len()));
        self.cpus.push(id);
        id
    }

    /// Add a GPU; returns its component id.
    pub fn add_gpu(&mut self) -> CompId {
        let id = CompId(self.components.len());
        self.components.push(Component::Gpu(self.gpus.len()));
        self.gpus.push(id);
        id
    }

    /// Add a NIC; returns its component id.
    pub fn add_nic(&mut self) -> CompId {
        let id = CompId(self.components.len());
        self.components.push(Component::Nic(self.nics.len()));
        self.nics.push(id);
        id
    }

    /// Connect two components with a full-duplex link.
    pub fn link(
        &mut self,
        a: CompId,
        b: CompId,
        kind: LinkKind,
        bandwidth: f64,
        latency: SimDuration,
    ) {
        assert!(a != b, "self-links are meaningless");
        assert!(bandwidth > 0.0, "link bandwidth must be positive");
        self.links.push(DuplexLink {
            a,
            b,
            kind,
            bandwidth,
            latency,
        });
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Number of CPU sockets.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of NICs.
    pub fn num_nics(&self) -> usize {
        self.nics.len()
    }

    /// Component id of GPU `i`.
    pub fn gpu(&self, i: usize) -> CompId {
        self.gpus[i]
    }

    /// Component id of CPU socket `i`.
    pub fn cpu(&self, i: usize) -> CompId {
        self.cpus[i]
    }

    /// Component id of NIC `i`.
    pub fn nic(&self, i: usize) -> CompId {
        self.nics[i]
    }

    /// The CPU socket "closest" (fewest hops) to GPU `i`; the socket whose
    /// memory holds this GPU's staging buffers.
    pub fn gpu_socket(&self, i: usize) -> usize {
        let route = self
            .cpus
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| {
                self.route(self.gpus[i], c)
                    .map(|r| r.len())
                    .unwrap_or(usize::MAX)
            })
            .expect("node has no CPU sockets");
        route.0
    }

    /// Shortest route (by hop count, ties broken by link insertion order)
    /// between two components, as a sequence of link indices into
    /// [`NodeSpec::links`]. `None` if disconnected. An `(a, a)` route is the
    /// empty sequence.
    pub fn route(&self, from: CompId, to: CompId) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        // BFS over the component graph.
        let n = self.components.len();
        let mut prev: Vec<Option<(CompId, usize)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from.0] = true;
        queue.push_back(from);
        'bfs: while let Some(c) = queue.pop_front() {
            for (li, l) in self.links.iter().enumerate() {
                let next = if l.a == c {
                    l.b
                } else if l.b == c {
                    l.a
                } else {
                    continue;
                };
                if visited[next.0] {
                    continue;
                }
                visited[next.0] = true;
                prev[next.0] = Some((c, li));
                if next == to {
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
        if !visited[to.0] {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, li) = prev[cur.0].expect("BFS chain broken");
            path.push(li);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Whether the route between two GPUs stays on GPU/CPU fabric (i.e. does
    /// not traverse a NIC) — the condition for CUDA peer access in this
    /// model.
    pub fn gpus_can_peer(&self, g1: usize, g2: usize) -> bool {
        if g1 == g2 {
            return true;
        }
        match self.route(self.gpu(g1), self.gpu(g2)) {
            Some(route) => route
                .iter()
                .all(|&li| self.links[li].kind != LinkKind::Network),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_node() -> NodeSpec {
        // cpu0 -- cpu1 (xbus); gpu0,gpu1 on cpu0 (nvlink, plus direct
        // gpu0-gpu1); gpu2 on cpu1; nic on cpu0
        let mut n = NodeSpec::new("toy");
        let c0 = n.add_cpu();
        let c1 = n.add_cpu();
        let g0 = n.add_gpu();
        let g1 = n.add_gpu();
        let g2 = n.add_gpu();
        let nic = n.add_nic();
        let us = SimDuration::from_micros;
        n.link(c0, c1, LinkKind::XBus, 64e9, us(1));
        n.link(g0, c0, LinkKind::NvLink, 50e9, us(1));
        n.link(g1, c0, LinkKind::NvLink, 50e9, us(1));
        n.link(g0, g1, LinkKind::NvLink, 50e9, us(1));
        n.link(g2, c1, LinkKind::NvLink, 50e9, us(1));
        n.link(nic, c0, LinkKind::Pcie, 25e9, us(1));
        n
    }

    #[test]
    fn direct_link_beats_two_hop() {
        let n = toy_node();
        let r = n.route(n.gpu(0), n.gpu(1)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(n.links[r[0]].kind, LinkKind::NvLink);
    }

    #[test]
    fn cross_socket_route_goes_via_xbus() {
        let n = toy_node();
        let r = n.route(n.gpu(0), n.gpu(2)).unwrap();
        assert_eq!(r.len(), 3); // gpu0->cpu0->cpu1->gpu2
        assert!(r.iter().any(|&li| n.links[li].kind == LinkKind::XBus));
    }

    #[test]
    fn self_route_is_empty() {
        let n = toy_node();
        assert_eq!(n.route(n.gpu(1), n.gpu(1)).unwrap().len(), 0);
    }

    #[test]
    fn disconnected_component_has_no_route() {
        let mut n = toy_node();
        let lonely = n.add_gpu();
        assert!(n.route(n.gpu(0), lonely).is_none());
        assert!(!n.gpus_can_peer(0, 3));
    }

    #[test]
    fn gpu_socket_assignment() {
        let n = toy_node();
        assert_eq!(n.gpu_socket(0), 0);
        assert_eq!(n.gpu_socket(1), 0);
        assert_eq!(n.gpu_socket(2), 1);
    }

    #[test]
    fn peer_access_on_fabric() {
        let n = toy_node();
        assert!(n.gpus_can_peer(0, 1));
        assert!(n.gpus_can_peer(0, 2)); // via X-Bus, still peer-capable
        assert!(n.gpus_can_peer(2, 2));
    }

    #[test]
    fn counts_and_accessors() {
        let n = toy_node();
        assert_eq!(n.num_cpus(), 2);
        assert_eq!(n.num_gpus(), 3);
        assert_eq!(n.num_nics(), 1);
        assert_eq!(n.name(), "toy");
        assert!(matches!(n.components[n.gpu(2).0], Component::Gpu(2)));
    }
}
