//! Additional node presets beyond Summit, demonstrating that the library
//! adapts to any topology ("flexible performance across any combination of
//! ranks and GPUs", paper §I).

use detsim::SimDuration;

use crate::cluster::ClusterSpec;
use crate::node::{LinkKind, NodeSpec};

/// A DGX-A100-like node: 8 GPUs all joined through NVSwitch with uniform
/// high bandwidth. On such a node every placement is equally good — the
/// situation where Faraji et al. (paper ref \[13\]) observed no effect from
/// topology-aware placement.
pub fn dgx_node() -> NodeSpec {
    let mut n = NodeSpec::new("dgx");
    let cpu0 = n.add_cpu();
    let cpu1 = n.add_cpu();
    let switch_bw = 300e9; // NVSwitch per-GPU injection
    let us1 = SimDuration::from_micros(1);
    n.link(cpu0, cpu1, LinkKind::XBus, 100e9, us1);
    let gpus: Vec<_> = (0..8).map(|_| n.add_gpu()).collect();
    // NVSwitch: model as a full mesh of uniform links (each pair gets a
    // dedicated lane at the per-GPU injection rate; contention inside the
    // switch is negligible by design).
    for i in 0..8 {
        for j in (i + 1)..8 {
            n.link(gpus[i], gpus[j], LinkKind::NvLink, switch_bw, us1);
        }
    }
    for (i, &g) in gpus.iter().enumerate() {
        let socket = if i < 4 { cpu0 } else { cpu1 };
        n.link(g, socket, LinkKind::Pcie, 25e9, us1);
    }
    let nic = n.add_nic();
    n.link(nic, cpu0, LinkKind::Pcie, 25e9, us1);
    n.link(nic, cpu1, LinkKind::Pcie, 25e9, us1);
    n
}

/// A cluster of DGX-like nodes.
pub fn dgx_cluster(num_nodes: usize) -> ClusterSpec {
    ClusterSpec {
        node: dgx_node(),
        num_nodes,
        injection_bandwidth: 25e9,
        switch_latency: SimDuration::from_nanos(1500),
    }
}

/// A commodity workstation: one CPU socket, `gpus` PCIe-attached GPUs with
/// no peer-to-peer fast path — every GPU pair communicates through the
/// host bridge. The opposite extreme from Summit: all pairs equal and
/// *slow*, so placement is again indifferent but specialization still
/// matters (staging through the host costs two bus crossings).
pub fn pcie_workstation_node(gpus: usize) -> NodeSpec {
    let mut n = NodeSpec::new("pcie-workstation");
    let cpu = n.add_cpu();
    let us1 = SimDuration::from_micros(1);
    for _ in 0..gpus {
        let g = n.add_gpu();
        n.link(g, cpu, LinkKind::Pcie, 12e9, us1); // PCIe 3.0 x16-ish
    }
    let nic = n.add_nic();
    n.link(nic, cpu, LinkKind::Pcie, 12e9, us1);
    n
}

/// A single-node "cluster" of one PCIe workstation.
pub fn pcie_workstation_cluster(gpus: usize) -> ClusterSpec {
    ClusterSpec {
        node: pcie_workstation_node(gpus),
        num_nodes: 1,
        injection_bandwidth: 12e9,
        switch_latency: SimDuration::from_nanos(1500),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::{NodeDiscovery, P2PClass};

    #[test]
    fn dgx_is_uniform_nvlink() {
        let d = NodeDiscovery::discover(&dgx_node());
        assert_eq!(d.num_gpus(), 8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(d.p2p_class(a, b), P2PClass::NvLinkDirect, "{a}-{b}");
                    assert_eq!(d.bandwidth(a, b), 300e9);
                }
            }
        }
    }

    #[test]
    fn workstation_pairs_route_via_host() {
        let node = pcie_workstation_node(4);
        let d = NodeDiscovery::discover(&node);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(d.p2p_class(a, b), P2PClass::Sys);
                }
            }
        }
        // GPU-GPU route: gpu -> cpu -> gpu
        assert_eq!(node.route(node.gpu(0), node.gpu(3)).unwrap().len(), 2);
    }

    #[test]
    fn presets_have_nics_for_clustering() {
        assert_eq!(dgx_cluster(4).total_gpus(), 32);
        assert_eq!(pcie_workstation_cluster(4).total_gpus(), 4);
    }
}
