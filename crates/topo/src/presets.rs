//! Additional node presets beyond Summit, demonstrating that the library
//! adapts to any topology ("flexible performance across any combination of
//! ranks and GPUs", paper §I).

use detsim::SimDuration;

use crate::cluster::ClusterSpec;
use crate::node::{LinkKind, NodeSpec};

/// A DGX-A100-like node: 8 GPUs all joined through NVSwitch with uniform
/// high bandwidth. On such a node every placement is equally good — the
/// situation where Faraji et al. (paper ref \[13\]) observed no effect from
/// topology-aware placement.
pub fn dgx_node() -> NodeSpec {
    let mut n = NodeSpec::new("dgx");
    let cpu0 = n.add_cpu();
    let cpu1 = n.add_cpu();
    let switch_bw = 300e9; // NVSwitch per-GPU injection
    let us1 = SimDuration::from_micros(1);
    n.link(cpu0, cpu1, LinkKind::XBus, 100e9, us1);
    let gpus: Vec<_> = (0..8).map(|_| n.add_gpu()).collect();
    // NVSwitch: model as a full mesh of uniform links (each pair gets a
    // dedicated lane at the per-GPU injection rate; contention inside the
    // switch is negligible by design).
    for i in 0..8 {
        for j in (i + 1)..8 {
            n.link(gpus[i], gpus[j], LinkKind::NvLink, switch_bw, us1);
        }
    }
    for (i, &g) in gpus.iter().enumerate() {
        let socket = if i < 4 { cpu0 } else { cpu1 };
        n.link(g, socket, LinkKind::Pcie, 25e9, us1);
    }
    let nic = n.add_nic();
    n.link(nic, cpu0, LinkKind::Pcie, 25e9, us1);
    n.link(nic, cpu1, LinkKind::Pcie, 25e9, us1);
    n
}

/// A cluster of DGX-like nodes.
pub fn dgx_cluster(num_nodes: usize) -> ClusterSpec {
    ClusterSpec {
        node: dgx_node(),
        num_nodes,
        injection_bandwidth: 25e9,
        switch_latency: SimDuration::from_nanos(1500),
    }
}

/// A commodity workstation: one CPU socket, `gpus` PCIe-attached GPUs with
/// no peer-to-peer fast path — every GPU pair communicates through the
/// host bridge. The opposite extreme from Summit: all pairs equal and
/// *slow*, so placement is again indifferent but specialization still
/// matters (staging through the host costs two bus crossings).
pub fn pcie_workstation_node(gpus: usize) -> NodeSpec {
    let mut n = NodeSpec::new("pcie-workstation");
    let cpu = n.add_cpu();
    let us1 = SimDuration::from_micros(1);
    for _ in 0..gpus {
        let g = n.add_gpu();
        n.link(g, cpu, LinkKind::Pcie, 12e9, us1); // PCIe 3.0 x16-ish
    }
    let nic = n.add_nic();
    n.link(nic, cpu, LinkKind::Pcie, 12e9, us1);
    n
}

/// A single-node "cluster" of one PCIe workstation.
pub fn pcie_workstation_cluster(gpus: usize) -> ClusterSpec {
    ClusterSpec {
        node: pcie_workstation_node(gpus),
        num_nodes: 1,
        injection_bandwidth: 12e9,
        switch_latency: SimDuration::from_nanos(1500),
    }
}

/// A generalized Summit-style fat node: `sockets` CPUs chained by X-Bus,
/// each carrying `islands_per_socket` NVLink islands of `gpus_per_island`
/// GPUs. Within an island every GPU pair has a direct NVLink and each GPU
/// links to its socket; islands on the same socket (and across sockets)
/// talk through the CPUs, which `NodeDiscovery` classifies as `Sys`.
/// GPUs are numbered island by island, so `gpu / gpus_per_island` is the
/// island index — `fat_node(2, 1, 3)` is topologically a Summit node, and
/// `fat_node(2, 4, 8)` is the 64-GPU ceiling the placement ladder's
/// heuristic rungs exist for (ROADMAP item 1).
pub fn fat_node(sockets: usize, islands_per_socket: usize, gpus_per_island: usize) -> NodeSpec {
    assert!(sockets > 0 && islands_per_socket > 0 && gpus_per_island > 0);
    let mut n = NodeSpec::new("fat");
    let us1 = SimDuration::from_micros(1);
    let cpus: Vec<_> = (0..sockets).map(|_| n.add_cpu()).collect();
    for pair in cpus.windows(2) {
        n.link(
            pair[0],
            pair[1],
            LinkKind::XBus,
            crate::summit::XBUS_BW,
            us1,
        );
    }
    for &cpu in &cpus {
        for _ in 0..islands_per_socket {
            let island: Vec<_> = (0..gpus_per_island).map(|_| n.add_gpu()).collect();
            for &g in &island {
                n.link(g, cpu, LinkKind::NvLink, crate::summit::NVLINK_BW, us1);
            }
            for i in 0..gpus_per_island {
                for j in (i + 1)..gpus_per_island {
                    n.link(
                        island[i],
                        island[j],
                        LinkKind::NvLink,
                        crate::summit::NVLINK_BW,
                        us1,
                    );
                }
            }
        }
    }
    let nic = n.add_nic();
    n.link(
        nic,
        cpus[0],
        LinkKind::Pcie,
        crate::summit::PCIE_NIC_BW,
        us1,
    );
    if sockets > 1 {
        n.link(
            nic,
            cpus[sockets - 1],
            LinkKind::Pcie,
            crate::summit::PCIE_NIC_BW,
            us1,
        );
    }
    n
}

/// A cluster of fat nodes on a non-blocking switch.
pub fn fat_cluster(
    num_nodes: usize,
    sockets: usize,
    islands_per_socket: usize,
    gpus_per_island: usize,
) -> ClusterSpec {
    ClusterSpec {
        node: fat_node(sockets, islands_per_socket, gpus_per_island),
        num_nodes,
        injection_bandwidth: crate::summit::NIC_BW,
        switch_latency: SimDuration::from_nanos(1500),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::{NodeDiscovery, P2PClass};

    #[test]
    fn dgx_is_uniform_nvlink() {
        let d = NodeDiscovery::discover(&dgx_node());
        assert_eq!(d.num_gpus(), 8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(d.p2p_class(a, b), P2PClass::NvLinkDirect, "{a}-{b}");
                    assert_eq!(d.bandwidth(a, b), 300e9);
                }
            }
        }
    }

    #[test]
    fn workstation_pairs_route_via_host() {
        let node = pcie_workstation_node(4);
        let d = NodeDiscovery::discover(&node);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(d.p2p_class(a, b), P2PClass::Sys);
                }
            }
        }
        // GPU-GPU route: gpu -> cpu -> gpu
        assert_eq!(node.route(node.gpu(0), node.gpu(3)).unwrap().len(), 2);
    }

    #[test]
    fn presets_have_nics_for_clustering() {
        assert_eq!(dgx_cluster(4).total_gpus(), 32);
        assert_eq!(pcie_workstation_cluster(4).total_gpus(), 4);
        assert_eq!(fat_cluster(2, 2, 4, 8).total_gpus(), 128);
    }

    #[test]
    fn fat_node_matches_summit_shape_at_2x1x3() {
        let d = NodeDiscovery::discover(&fat_node(2, 1, 3));
        let s = NodeDiscovery::discover(&crate::summit::summit_node());
        assert_eq!(d.num_gpus(), 6);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(d.p2p_class(a, b), s.p2p_class(a, b), "{a}-{b}");
                    assert_eq!(d.bandwidth(a, b), s.bandwidth(a, b), "{a}-{b}");
                }
            }
        }
    }

    #[test]
    fn fat_node_islands_are_nvlink_rest_sys() {
        let node = fat_node(2, 2, 3); // 12 GPUs, islands {0..3},{3..6},{6..9},{9..12}
        let d = NodeDiscovery::discover(&node);
        assert_eq!(d.num_gpus(), 12);
        for a in 0..12 {
            for b in 0..12 {
                if a == b {
                    continue;
                }
                let expect = if a / 3 == b / 3 {
                    P2PClass::NvLinkDirect
                } else {
                    P2PClass::Sys
                };
                assert_eq!(d.p2p_class(a, b), expect, "{a}-{b}");
            }
        }
        // same-socket cross-island routes stay on one CPU; cross-socket
        // routes cross the X-Bus.
        let r = node.route(node.gpu(0), node.gpu(4)).unwrap();
        assert!(!r.iter().any(|&li| node.links[li].kind == LinkKind::XBus));
        let r = node.route(node.gpu(0), node.gpu(7)).unwrap();
        assert!(r.iter().any(|&li| node.links[li].kind == LinkKind::XBus));
    }

    #[test]
    fn fat_node_64_gpus_discovers() {
        let d = NodeDiscovery::discover(&fat_node(2, 4, 8));
        assert_eq!(d.num_gpus(), 64);
        assert_eq!(d.p2p_class(0, 7), P2PClass::NvLinkDirect);
        assert_eq!(d.p2p_class(0, 8), P2PClass::Sys);
        let m = d.distance_matrix();
        assert_eq!(m.len(), 64);
        assert!(m[0][7] < m[0][8]);
    }
}
