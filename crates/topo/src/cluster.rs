//! Cluster-level topology: many identical nodes joined by a non-blocking
//! switch, and the instantiation of the whole machine into simulator links
//! ([`Fabric`]).

use detsim::{Kernel, LinkId, SimDuration};

use crate::node::{CompId, NodeSpec};

/// Description of a whole machine: `num_nodes` copies of `node` attached to
/// a non-blocking switch. Per-node injection/ejection capacity models the
/// NIC's network-side limit (the per-node bottleneck for all off-node
/// traffic).
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Number of nodes.
    pub num_nodes: usize,
    /// NIC injection (and ejection) bandwidth, bytes/second per direction.
    pub injection_bandwidth: f64,
    /// One-way switch traversal latency.
    pub switch_latency: SimDuration,
}

impl ClusterSpec {
    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.num_nodes * self.node.num_gpus()
    }
}

/// A multi-level switch hierarchy over the nodes of a cluster — the
/// inter-node analogue of [`crate::NodeDiscovery::distance_matrix`], in
/// O(1) per pair instead of a materialized n² matrix (a 4608-node dense
/// matrix is ~170 MB; the hierarchy is three integers and three floats).
///
/// Nodes are grouped by contiguous index at each level: level `k` groups
/// `group_size[k]` nodes behind one switch, and the distance between two
/// nodes is the reciprocal bandwidth of the *lowest* level whose group
/// contains both. Pairs above the top configured level pay the root
/// distance. This is the standard fat-tree abstraction used by
/// hierarchical process mappers (Schulz & Woydt); see `docs/PLACEMENT.md`.
///
/// The default [`ClusterSpec`] fabric models the switch as non-blocking
/// (every placement equal); `SwitchHierarchy` is the tapered model the
/// *global mapping stage* optimizes against, kept standalone so existing
/// cluster construction is untouched.
#[derive(Clone, Debug)]
pub struct SwitchHierarchy {
    num_nodes: usize,
    /// `(group_size, distance)` per level, ascending group size.
    levels: Vec<(usize, f64)>,
    /// Distance when two nodes share no configured level.
    root_distance: f64,
}

impl SwitchHierarchy {
    /// Build from `(group_size, bandwidth)` pairs, lowest level first, plus
    /// the bandwidth of the root (cross-everything) tier. Distances are
    /// stored as reciprocal bandwidths, matching the QAP convention of the
    /// node-level distance matrix.
    ///
    /// # Panics
    /// If group sizes are not strictly increasing and ≥ 2, or any
    /// bandwidth is not finite-positive.
    pub fn new(num_nodes: usize, levels: &[(usize, f64)], root_bandwidth: f64) -> SwitchHierarchy {
        let mut prev = 1;
        for &(size, bw) in levels {
            assert!(size > prev, "group sizes must be strictly increasing");
            assert!(
                bw > 0.0 && bw.is_finite(),
                "level bandwidth must be positive"
            );
            prev = size;
        }
        assert!(
            root_bandwidth > 0.0 && root_bandwidth.is_finite(),
            "root bandwidth must be positive"
        );
        SwitchHierarchy {
            num_nodes,
            levels: levels.iter().map(|&(s, bw)| (s, bw.recip())).collect(),
            root_distance: root_bandwidth.recip(),
        }
    }

    /// A Summit-flavored three-tier fat tree: 18 nodes per leaf switch,
    /// 324 per pod (18 leaves), everything else through the core. The
    /// real machine's tree is non-blocking; the mild taper here
    /// (25/20/16 GB/s) is the modeling knob that gives a topology-aware
    /// mapper something to gain — set all three equal to recover the
    /// indifferent switch.
    pub fn summit_fat_tree(num_nodes: usize) -> SwitchHierarchy {
        SwitchHierarchy::new(num_nodes, &[(18, 25e9), (324, 20e9)], 16e9)
    }

    /// Number of nodes under the hierarchy.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Distance between nodes `a` and `b`: 0 on the diagonal, otherwise
    /// the reciprocal bandwidth of the lowest level grouping both. O(1)
    /// in the number of nodes.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.num_nodes && b < self.num_nodes);
        if a == b {
            return 0.0;
        }
        for &(size, dist) in &self.levels {
            if a / size == b / size {
                return dist;
            }
        }
        self.root_distance
    }

    /// Number of configured levels below the root.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Nodes per group at `level` (0 = leaf switches).
    pub fn group_size(&self, level: usize) -> usize {
        self.levels[level].0
    }

    /// Which level-`level` group (switch) `node` sits under.
    pub fn group_of(&self, level: usize, node: usize) -> usize {
        debug_assert!(node < self.num_nodes);
        node / self.levels[level].0
    }

    /// The contiguous node range behind switch `group` of `level`, clamped
    /// to the cluster size — the blast radius of a fault on that switch
    /// (see `faultsim::FaultTarget::Switch`).
    pub fn group_nodes(&self, level: usize, group: usize) -> std::ops::Range<usize> {
        let size = self.levels[level].0;
        let first = group * size;
        first..((first + size).min(self.num_nodes))
    }

    /// Materialize the dense distance matrix — only sensible for small
    /// node counts (tests, the exhaustive rung); the mapper itself uses
    /// [`SwitchHierarchy::distance`] directly.
    pub fn distance_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.num_nodes)
            .map(|a| (0..self.num_nodes).map(|b| self.distance(a, b)).collect())
            .collect()
    }
}

/// The instantiated machine: every directed link of every node, plus
/// injection/ejection links, registered with a [`Kernel`]. Provides directed
/// link paths for the transfers the upper layers perform.
pub struct Fabric {
    spec: ClusterSpec,
    /// `fwd[node][link]`: simulator link for node-local duplex link `link`
    /// in its `a -> b` direction.
    fwd: Vec<Vec<LinkId>>,
    /// Same, `b -> a` direction.
    rev: Vec<Vec<LinkId>>,
    /// `inject[node]`: NIC -> switch.
    inject: Vec<LinkId>,
    /// `eject[node]`: switch -> NIC.
    eject: Vec<LinkId>,
}

impl Fabric {
    /// Register every link of `spec` with the kernel.
    pub fn build(kernel: &mut Kernel, spec: ClusterSpec) -> Fabric {
        assert!(spec.num_nodes > 0, "cluster needs at least one node");
        assert!(
            spec.node.num_nics() > 0 || spec.num_nodes == 1,
            "multi-node cluster requires a NIC in the node spec"
        );
        let mut fwd = Vec::with_capacity(spec.num_nodes);
        let mut rev = Vec::with_capacity(spec.num_nodes);
        let mut inject = Vec::with_capacity(spec.num_nodes);
        let mut eject = Vec::with_capacity(spec.num_nodes);
        for n in 0..spec.num_nodes {
            let mut f = Vec::with_capacity(spec.node.links.len());
            let mut r = Vec::with_capacity(spec.node.links.len());
            for (li, l) in spec.node.links.iter().enumerate() {
                let name =
                    |dir: &str| format!("n{n}.{:?}[{li}].{dir} {:?}->{:?}", l.kind, l.a, l.b);
                f.push(kernel.add_link(name("fwd"), l.bandwidth, l.latency));
                r.push(kernel.add_link(name("rev"), l.bandwidth, l.latency));
            }
            fwd.push(f);
            rev.push(r);
            if spec.node.num_nics() > 0 {
                inject.push(kernel.add_link(
                    format!("n{n}.inject"),
                    spec.injection_bandwidth,
                    spec.switch_latency,
                ));
                eject.push(kernel.add_link(
                    format!("n{n}.eject"),
                    spec.injection_bandwidth,
                    SimDuration::ZERO,
                ));
            }
        }
        Fabric {
            spec,
            fwd,
            rev,
            inject,
            eject,
        }
    }

    /// The cluster description this fabric was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Node-local hardware description.
    pub fn node_spec(&self) -> &NodeSpec {
        &self.spec.node
    }

    /// Directed simulator-link path between two components of one node.
    pub fn node_path(&self, node: usize, from: CompId, to: CompId) -> Vec<LinkId> {
        let route = self
            .spec
            .node
            .route(from, to)
            .unwrap_or_else(|| panic!("no route {from:?} -> {to:?} in node spec"));
        let mut cur = from;
        let mut path = Vec::with_capacity(route.len());
        for li in route {
            let l = &self.spec.node.links[li];
            if l.a == cur {
                path.push(self.fwd[node][li]);
                cur = l.b;
            } else {
                debug_assert_eq!(l.b, cur, "route is not contiguous");
                path.push(self.rev[node][li]);
                cur = l.a;
            }
        }
        debug_assert_eq!(cur, to);
        path
    }

    /// Path for a peer copy between two GPUs on one node.
    pub fn gpu_gpu_path(&self, node: usize, g1: usize, g2: usize) -> Vec<LinkId> {
        self.node_path(node, self.spec.node.gpu(g1), self.spec.node.gpu(g2))
    }

    /// Path for a device-to-host copy from GPU `g` to its socket's memory.
    pub fn gpu_to_host_path(&self, node: usize, g: usize) -> Vec<LinkId> {
        let s = self.spec.node.gpu_socket(g);
        self.node_path(node, self.spec.node.gpu(g), self.spec.node.cpu(s))
    }

    /// Path for a host-to-device copy from GPU `g`'s socket memory to GPU `g`.
    pub fn host_to_gpu_path(&self, node: usize, g: usize) -> Vec<LinkId> {
        let s = self.spec.node.gpu_socket(g);
        self.node_path(node, self.spec.node.cpu(s), self.spec.node.gpu(g))
    }

    /// Inter-node path between a source CPU socket and a destination CPU
    /// socket: source-node fabric to the NIC, injection, ejection,
    /// destination-node fabric from the NIC. Panics if `n1 == n2` (same-node
    /// transfers never cross the switch; route them with [`Self::node_path`]).
    pub fn internode_host_path(
        &self,
        n1: usize,
        socket1: usize,
        n2: usize,
        socket2: usize,
    ) -> Vec<LinkId> {
        assert_ne!(n1, n2, "internode path within one node");
        let nic = self.spec.node.nic(0);
        let mut path = self.node_path(n1, self.spec.node.cpu(socket1), nic);
        path.push(self.inject[n1]);
        path.push(self.eject[n2]);
        path.extend(self.node_path(n2, nic, self.spec.node.cpu(socket2)));
        path
    }

    /// Inter-node path directly between two GPUs (the GPUDirect-style route
    /// used by CUDA-aware MPI): source GPU to its node's NIC, across the
    /// switch, NIC to destination GPU.
    pub fn internode_gpu_path(&self, n1: usize, g1: usize, n2: usize, g2: usize) -> Vec<LinkId> {
        assert_ne!(n1, n2, "internode path within one node");
        let nic = self.spec.node.nic(0);
        let mut path = self.node_path(n1, self.spec.node.gpu(g1), nic);
        path.push(self.inject[n1]);
        path.push(self.eject[n2]);
        path.extend(self.node_path(n2, nic, self.spec.node.gpu(g2)));
        path
    }

    /// Inter-node path between two arbitrary components (e.g. a GPU on one
    /// node and a CPU socket on another, as in a CUDA-aware send with a
    /// device buffer on one side only).
    pub fn internode_comp_path(&self, n1: usize, c1: CompId, n2: usize, c2: CompId) -> Vec<LinkId> {
        assert_ne!(n1, n2, "internode path within one node");
        let nic = self.spec.node.nic(0);
        let mut path = self.node_path(n1, c1, nic);
        path.push(self.inject[n1]);
        path.push(self.eject[n2]);
        path.extend(self.node_path(n2, nic, c2));
        path
    }

    /// Injection link of a node (diagnostics: delivered-bytes accounting).
    pub fn injection_link(&self, node: usize) -> LinkId {
        self.inject[node]
    }

    /// Ejection link of a node (switch -> NIC direction).
    pub fn ejection_link(&self, node: usize) -> LinkId {
        self.eject[node]
    }

    /// Number of duplex links in each node's local fabric (the valid
    /// `link` range for [`Self::node_duplex_link`]).
    pub fn node_link_count(&self) -> usize {
        self.spec.node.links.len()
    }

    /// The `(forward, reverse)` simulator links instantiating duplex link
    /// `link` of node `node` — the addressing handle fault injection uses
    /// to degrade one physical link in both directions.
    pub fn node_duplex_link(&self, node: usize, link: usize) -> (LinkId, LinkId) {
        (self.fwd[node][link], self.rev[node][link])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LinkKind;
    use crate::summit::{summit_cluster, summit_node};

    fn small_cluster(n: usize) -> (Kernel, Fabric) {
        let mut k = Kernel::new();
        let f = Fabric::build(&mut k, summit_cluster(n));
        (k, f)
    }

    #[test]
    fn build_creates_links_per_node() {
        let (k, f) = small_cluster(2);
        let spec_links = f.node_spec().links.len();
        // 2 directed per duplex link per node + inject/eject per node
        assert!(k.link_name(f.injection_link(0)).contains("inject"));
        assert_eq!(f.fwd[0].len(), spec_links);
        assert_eq!(f.fwd[1].len(), spec_links);
    }

    #[test]
    fn triad_gpu_path_is_single_nvlink() {
        let (k, f) = small_cluster(1);
        let p = f.gpu_gpu_path(0, 0, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(k.link_capacity(p[0]), 50e9);
    }

    #[test]
    fn cross_socket_gpu_path_traverses_xbus() {
        let (k, f) = small_cluster(1);
        let p = f.gpu_gpu_path(0, 0, 3);
        assert_eq!(p.len(), 3);
        // middle link is the X-Bus at 64 GB/s
        assert_eq!(k.link_capacity(p[1]), 64e9);
    }

    #[test]
    fn d2h_and_h2d_are_distinct_directed_links() {
        let (_k, f) = small_cluster(1);
        let d2h = f.gpu_to_host_path(0, 2);
        let h2d = f.host_to_gpu_path(0, 2);
        assert_eq!(d2h.len(), 1);
        assert_eq!(h2d.len(), 1);
        assert_ne!(d2h[0], h2d[0], "full duplex: directions are separate links");
    }

    #[test]
    fn internode_path_crosses_switch() {
        let (k, f) = small_cluster(3);
        let p = f.internode_host_path(0, 0, 2, 1);
        assert!(p.contains(&f.injection_link(0)));
        // destination ejection link named n2.eject
        assert!(p.iter().any(|&l| k.link_name(l) == "n2.eject"));
        // source socket -> NIC hop exists
        assert!(p.len() >= 4);
    }

    #[test]
    fn internode_gpu_path_endpoints() {
        let (k, f) = small_cluster(2);
        let p = f.internode_gpu_path(0, 5, 1, 0);
        // gpu5 is on socket 1: gpu->cpu1->nic hops then switch then nic->cpu0->gpu0
        assert!(p.len() >= 6);
        assert!(p.iter().any(|&l| k.link_name(l).contains("inject")));
    }

    #[test]
    #[should_panic(expected = "internode")]
    fn same_node_internode_path_panics() {
        let (_k, f) = small_cluster(2);
        let _ = f.internode_host_path(1, 0, 1, 0);
    }

    #[test]
    fn single_node_cluster_without_nic_is_ok() {
        let mut node = NodeSpec::new("gpu-only");
        let c = node.add_cpu();
        let g = node.add_gpu();
        node.link(c, g, LinkKind::NvLink, 50e9, SimDuration::from_micros(1));
        let mut k = Kernel::new();
        let f = Fabric::build(
            &mut k,
            ClusterSpec {
                node,
                num_nodes: 1,
                injection_bandwidth: 1.0,
                switch_latency: SimDuration::ZERO,
            },
        );
        assert_eq!(f.gpu_to_host_path(0, 0).len(), 1);
    }

    #[test]
    fn summit_node_shape() {
        let n = summit_node();
        assert_eq!(n.num_gpus(), 6);
        assert_eq!(n.num_cpus(), 2);
        assert_eq!(n.num_nics(), 1);
        // triads: gpus 0-2 socket 0, gpus 3-5 socket 1
        for g in 0..3 {
            assert_eq!(n.gpu_socket(g), 0, "gpu{g}");
        }
        for g in 3..6 {
            assert_eq!(n.gpu_socket(g), 1, "gpu{g}");
        }
        // all pairs peer-capable on the fabric
        for a in 0..6 {
            for b in 0..6 {
                assert!(n.gpus_can_peer(a, b));
            }
        }
    }

    #[test]
    fn switch_hierarchy_levels() {
        let h = SwitchHierarchy::new(100, &[(4, 100.0), (20, 50.0)], 10.0);
        assert_eq!(h.num_nodes(), 100);
        assert_eq!(h.distance(7, 7), 0.0);
        assert_eq!(h.distance(0, 3), 1.0 / 100.0); // same leaf (0..4)
        assert_eq!(h.distance(0, 4), 1.0 / 50.0); // same pod (0..20)
        assert_eq!(h.distance(0, 21), 1.0 / 10.0); // across the root
        assert_eq!(h.distance(21, 0), h.distance(0, 21), "symmetric");
    }

    #[test]
    fn switch_hierarchy_matrix_matches_pointwise() {
        let h = SwitchHierarchy::summit_fat_tree(40);
        let m = h.distance_matrix();
        for (a, row) in m.iter().enumerate() {
            for (b, &v) in row.iter().enumerate() {
                assert_eq!(v, h.distance(a, b), "{a}-{b}");
            }
        }
        // taper: same-leaf closer than cross-leaf
        assert!(h.distance(0, 17) < h.distance(0, 18));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn switch_hierarchy_rejects_unordered_levels() {
        let _ = SwitchHierarchy::new(10, &[(6, 1.0), (4, 1.0)], 1.0);
    }

    #[test]
    fn switch_hierarchy_groups_cover_contiguous_ranges() {
        let h = SwitchHierarchy::new(100, &[(4, 100.0), (20, 50.0)], 10.0);
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.group_size(0), 4);
        assert_eq!(h.group_of(0, 7), 1);
        assert_eq!(h.group_of(1, 7), 0);
        assert_eq!(h.group_nodes(0, 1), 4..8);
        assert_eq!(h.group_nodes(1, 4), 80..100);
        // Last group clamps to the cluster size.
        let h2 = SwitchHierarchy::summit_fat_tree(20);
        assert_eq!(h2.group_nodes(0, 1), 18..20);
        // Every node is in the group it maps to.
        for node in 0..20 {
            let g = h2.group_of(0, node);
            assert!(h2.group_nodes(0, g).contains(&node));
        }
    }
}
