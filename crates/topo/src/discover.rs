//! Topology discovery: the simulated analogue of the NVML
//! (`libnvidia-ml`) queries the paper uses to infer GPU connectivity and
//! bandwidth for data placement (§III-B).
//!
//! NVML reports the *type* of connection between GPU pairs (direct NVLink,
//! traversal through the SMP interconnect, PCIe host bridge, …) rather than
//! a measured rate. The paper maps connection types to theoretical
//! bandwidths and builds the QAP distance matrix from their reciprocals; we
//! do the same by classifying the route between each pair.

use crate::node::{LinkKind, NodeSpec};

/// Connectivity class between a pair of GPUs, ordered from fastest to
/// slowest.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum P2PClass {
    /// The same GPU (self-exchange): device-memory bandwidth.
    Same,
    /// A direct NVLink connection (one hop).
    NvLinkDirect,
    /// On-node, but the route traverses the SMP interconnect or a host
    /// bridge (NVML "SYS"/"NODE" class).
    Sys,
    /// Different nodes.
    Remote,
}

/// Result of discovering one node's GPU connectivity.
#[derive(Clone, Debug)]
pub struct NodeDiscovery {
    num_gpus: usize,
    class: Vec<P2PClass>,
    bandwidth: Vec<f64>,
    peer: Vec<bool>,
}

/// Nominal bandwidth assigned to a GPU pair whose route crosses the SMP
/// interconnect. Lower than a direct NVLink because the X-Bus is shared by
/// all cross-socket pairs (and both directions); the precise value only
/// needs to order placements correctly, exactly as in the paper's use of
/// NVML connection types.
pub const SYS_NOMINAL_BW: f64 = 16e9;

/// Nominal device-internal bandwidth for self-exchanges.
pub const SAME_NOMINAL_BW: f64 = 800e9;

impl NodeDiscovery {
    /// Discover GPU connectivity for one node.
    pub fn discover(node: &NodeSpec) -> NodeDiscovery {
        let n = node.num_gpus();
        let mut class = vec![P2PClass::Remote; n * n];
        let mut bandwidth = vec![0.0; n * n];
        let mut peer = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                let (c, bw) = if a == b {
                    (P2PClass::Same, SAME_NOMINAL_BW)
                } else {
                    match node.route(node.gpu(a), node.gpu(b)) {
                        Some(route)
                            if route.len() == 1
                                && node.links[route[0]].kind == LinkKind::NvLink =>
                        {
                            (P2PClass::NvLinkDirect, node.links[route[0]].bandwidth)
                        }
                        Some(_) => (P2PClass::Sys, SYS_NOMINAL_BW),
                        None => (P2PClass::Remote, 0.0),
                    }
                };
                class[a * n + b] = c;
                bandwidth[a * n + b] = bw;
                peer[a * n + b] = node.gpus_can_peer(a, b);
            }
        }
        NodeDiscovery {
            num_gpus: n,
            class,
            bandwidth,
            peer,
        }
    }

    /// Number of GPUs on the node.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Connectivity class of a pair.
    pub fn p2p_class(&self, a: usize, b: usize) -> P2PClass {
        self.class[a * self.num_gpus + b]
    }

    /// Nominal (theoretical) bandwidth of a pair, bytes/second.
    pub fn bandwidth(&self, a: usize, b: usize) -> f64 {
        self.bandwidth[a * self.num_gpus + b]
    }

    /// Whether peer access can be enabled between a pair.
    pub fn can_peer(&self, a: usize, b: usize) -> bool {
        self.peer[a * self.num_gpus + b]
    }

    /// The QAP distance matrix: element-wise reciprocal of the nominal
    /// bandwidth matrix (paper §III-B). The diagonal is zero — co-located
    /// flow costs nothing to "move".
    pub fn distance_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.num_gpus;
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| {
                        if a == b {
                            0.0
                        } else {
                            let bw = self.bandwidth(a, b);
                            if bw > 0.0 {
                                1.0 / bw
                            } else {
                                f64::INFINITY
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Pretty-print the connectivity matrix in `nvidia-smi topo -m` style.
    pub fn render_matrix(&self) -> String {
        use std::fmt::Write;
        let n = self.num_gpus;
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "");
        for b in 0..n {
            let _ = write!(out, "{:>6}", format!("GPU{b}"));
        }
        out.push('\n');
        for a in 0..n {
            let _ = write!(out, "{:>6}", format!("GPU{a}"));
            for b in 0..n {
                let tag = match self.p2p_class(a, b) {
                    P2PClass::Same => "X",
                    P2PClass::NvLinkDirect => "NV2",
                    P2PClass::Sys => "SYS",
                    P2PClass::Remote => "-",
                };
                let _ = write!(out, "{tag:>6}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summit::summit_node;

    #[test]
    fn summit_discovery_classes() {
        let d = NodeDiscovery::discover(&summit_node());
        assert_eq!(d.num_gpus(), 6);
        assert_eq!(d.p2p_class(0, 0), P2PClass::Same);
        assert_eq!(d.p2p_class(0, 1), P2PClass::NvLinkDirect);
        assert_eq!(d.p2p_class(0, 4), P2PClass::Sys);
        assert_eq!(d.p2p_class(4, 0), P2PClass::Sys);
    }

    #[test]
    fn summit_bandwidth_ordering() {
        let d = NodeDiscovery::discover(&summit_node());
        assert!(d.bandwidth(0, 0) > d.bandwidth(0, 1));
        assert!(d.bandwidth(0, 1) > d.bandwidth(0, 3));
        assert_eq!(d.bandwidth(1, 2), 50e9);
    }

    #[test]
    fn distance_matrix_is_reciprocal_and_symmetric() {
        let d = NodeDiscovery::discover(&summit_node());
        let m = d.distance_matrix();
        for (a, row) in m.iter().enumerate() {
            assert_eq!(row[a], 0.0);
            for (b, &v) in row.iter().enumerate() {
                assert_eq!(v, m[b][a]);
                if a != b {
                    assert!((v - 1.0 / d.bandwidth(a, b)).abs() < 1e-18);
                }
            }
        }
    }

    #[test]
    fn peer_matrix_full_on_summit() {
        let d = NodeDiscovery::discover(&summit_node());
        for a in 0..6 {
            for b in 0..6 {
                assert!(d.can_peer(a, b));
            }
        }
    }

    #[test]
    fn render_matrix_has_expected_tags() {
        let d = NodeDiscovery::discover(&summit_node());
        let s = d.render_matrix();
        assert!(s.contains("NV2"));
        assert!(s.contains("SYS"));
        assert!(s.contains('X'));
    }
}
