//! Shared measurement harness for the paper-reproduction benchmarks.
//!
//! Timing follows the paper's protocol (§IV-A): in each rank,
//! `MPI_Barrier`, record `MPI_Wtime`, run the exchange, record the end
//! time; the maximum across ranks is the reported exchange time. Exchange
//! times are averaged over a configurable number of repetitions.

#![warn(missing_docs)]

pub mod chaos;
pub mod microbench;

use std::collections::HashMap;
use std::sync::Arc;

use faultsim::FaultSchedule;
use stencil_core::{Methods, Neighborhood, Partition, Placement, PlacementStrategy, Radius};
use topo::summit::summit_node;
use topo::NodeDiscovery;

/// One benchmark configuration, encoded like the paper's labels
/// ("Xn/Xr/Xg/NNNN/ca").
#[derive(Clone, Debug)]
pub struct ExchangeConfig {
    /// Nodes.
    pub nodes: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Cube extent per dimension (the paper's NNNN).
    pub extent: u64,
    /// Explicit non-cube domain (overrides `extent` when set).
    pub domain: Option<[u64; 3]>,
    /// Enabled exchange methods.
    pub methods: Methods,
    /// CUDA-aware MPI available.
    pub cuda_aware: bool,
    /// Stencil radius.
    pub radius: u64,
    /// Quantities (paper: 4 single-precision).
    pub quantities: usize,
    /// Placement strategy.
    pub placement: PlacementStrategy,
    /// Measured repetitions (paper: 30; the simulation is deterministic so
    /// fewer suffice).
    pub iters: usize,
    /// Consolidate staged messages (paper §VI extension).
    pub consolidate: bool,
    /// Collect metrics during the run (virtual-time results are unaffected;
    /// the registry snapshot lands in [`ExchangeResult::metrics`]).
    pub metrics: bool,
    /// Deterministic fault schedule installed before the ranks start. An
    /// empty schedule injects zero events and leaves runs bit-identical to
    /// a fault-free simulation.
    pub faults: FaultSchedule,
    /// Precomputed per-node placements (see [`node_aware_placements`]);
    /// skips the per-run placement phase so sweeps that measure the same
    /// geometry under several method tiers pay the QAP cost once.
    pub preplaced: Option<Arc<Vec<Placement>>>,
}

impl ExchangeConfig {
    /// A paper-style configuration: cube domain, radius 2, four SP
    /// quantities, node-aware placement.
    pub fn new(nodes: usize, ranks_per_node: usize, extent: u64) -> Self {
        ExchangeConfig {
            nodes,
            ranks_per_node,
            extent,
            domain: None,
            methods: Methods::all(),
            cuda_aware: false,
            radius: 2,
            quantities: 4,
            placement: PlacementStrategy::NodeAware,
            iters: 3,
            consolidate: false,
            metrics: false,
            faults: FaultSchedule::new(),
            preplaced: None,
        }
    }

    /// Set enabled methods.
    pub fn methods(mut self, m: Methods) -> Self {
        self.methods = m;
        self
    }

    /// Enable CUDA-aware MPI.
    pub fn cuda_aware(mut self, on: bool) -> Self {
        self.cuda_aware = on;
        self
    }

    /// Use an explicit (non-cube) domain.
    pub fn domain(mut self, d: [u64; 3]) -> Self {
        self.domain = Some(d);
        self
    }

    /// Set the placement strategy.
    pub fn placement(mut self, p: PlacementStrategy) -> Self {
        self.placement = p;
        self
    }

    /// Set the number of repetitions.
    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n;
        self
    }

    /// Enable staged-message consolidation.
    pub fn consolidate(mut self, on: bool) -> Self {
        self.consolidate = on;
        self
    }

    /// Enable metrics collection for this run.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Install a deterministic fault schedule for this run.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = schedule;
        self
    }

    /// Reuse precomputed placements, skipping the placement phase.
    pub fn preplaced(mut self, placements: Arc<Vec<Placement>>) -> Self {
        self.preplaced = Some(placements);
        self
    }

    /// The equivalent service job description. Faults and precomputed
    /// placements are not part of the declarative spec — they ride as
    /// [`svc::RunHooks`] (see [`measure_exchange`]).
    pub fn to_job_spec(&self) -> svc::JobSpec {
        let domain = self
            .domain
            .unwrap_or([self.extent, self.extent, self.extent]);
        let mut spec = svc::JobSpec::new(
            "bench",
            svc::ClusterPreset::Summit { nodes: self.nodes },
            self.ranks_per_node,
            domain,
        )
        .methods(self.methods)
        .cuda_aware(self.cuda_aware)
        .radius(self.radius)
        .placement(self.placement)
        .iters(self.iters)
        .consolidate(self.consolidate)
        .collect_metrics(self.metrics);
        spec.quantities = self.quantities;
        spec
    }

    /// The paper's label string, e.g. `"2n/6r/6g/750/ca"`.
    pub fn label(&self) -> String {
        let base = match self.domain {
            Some(d) => format!(
                "{}n/{}r/6g/{}x{}x{}",
                self.nodes, self.ranks_per_node, d[0], d[1], d[2]
            ),
            None => format!(
                "{}n/{}r/6g/{}",
                self.nodes, self.ranks_per_node, self.extent
            ),
        };
        if self.cuda_aware {
            format!("{base}/ca")
        } else {
            base
        }
    }
}

/// Result of one measured configuration.
#[derive(Clone, Debug)]
pub struct ExchangeResult {
    /// Per-iteration max-across-ranks exchange seconds.
    pub per_iter: Vec<f64>,
    /// Average of `per_iter`.
    pub mean: f64,
    /// Human-readable plan summary from rank 0.
    pub plan: String,
    /// Metrics snapshot, if [`ExchangeConfig::metrics`] was set.
    pub metrics: Option<detsim::MetricsReport>,
}

/// Measure halo-exchange time for a configuration, following the paper's
/// timing protocol. Runs in virtual data mode (no real bytes) so that
/// paper-scale domains fit.
///
/// Delegates to the shared spec→world construction path
/// ([`svc::execute_with`]): the figure binaries and the job service
/// measure through identical code. Bench-only extras (explicit fault
/// schedules, precomputed placements) ride as [`svc::RunHooks`].
pub fn measure_exchange(cfg: &ExchangeConfig) -> ExchangeResult {
    let spec = cfg.to_job_spec();
    let hooks = svc::RunHooks {
        preplaced: cfg.preplaced.clone(),
        fault_override: Some(cfg.faults.clone()),
        cancel: None,
    };
    let out = svc::execute_with(&spec, hooks);
    ExchangeResult {
        per_iter: out.per_iter,
        mean: out.mean,
        plan: out.plan,
        metrics: out.metrics,
    }
}

/// Compute the per-node placements a run of `cfg` would produce, without
/// running a simulation. Mirrors the domain constructor's placement phase
/// (hierarchical partition, one QAP solve per distinct node extent) so the
/// result can be fed back via [`ExchangeConfig::preplaced`] to skip that
/// phase. Placement depends only on geometry, radius, quantities and
/// strategy — not on methods, CUDA-awareness or iteration count — so one
/// computation serves every method tier of a sweep row.
///
/// Only topology-derived strategies are supported
/// ([`PlacementStrategy::Empirical`] needs in-simulation probe transfers).
pub fn node_aware_placements(cfg: &ExchangeConfig) -> Arc<Vec<Placement>> {
    node_aware_placements_for(cfg, &summit_node())
}

/// As [`node_aware_placements`], for an arbitrary node preset (fat nodes,
/// DGX, workstations) instead of Summit. Node sizes beyond the exhaustive
/// QAP range solve on the heuristic rungs of the placement ladder.
pub fn node_aware_placements_for(
    cfg: &ExchangeConfig,
    node: &topo::NodeSpec,
) -> Arc<Vec<Placement>> {
    assert_ne!(
        cfg.placement,
        PlacementStrategy::Empirical,
        "empirical placement probes inside the simulation and cannot be precomputed"
    );
    let domain = cfg.domain.unwrap_or([cfg.extent, cfg.extent, cfg.extent]);
    let gpn = node.num_gpus();
    let part = Partition::new(domain, cfg.nodes, gpn);
    let discovery = NodeDiscovery::discover(node);
    let radius = Radius::constant(cfg.radius);
    let mut by_extent: HashMap<stencil_core::Dim3, Placement> = HashMap::new();
    let mut placements = Vec::with_capacity(part.num_nodes());
    for n in 0..part.num_nodes() {
        let idx = part.node_from_linear(n);
        let ext = part.node_box(idx).extent;
        let pl = by_extent
            .entry(ext)
            .or_insert_with(|| {
                stencil_core::placement::place(
                    &part,
                    idx,
                    &discovery,
                    Neighborhood::Full26,
                    &radius,
                    cfg.quantities,
                    4,
                    cfg.placement,
                    stencil_core::dim3::Boundary::Periodic,
                )
            })
            .clone();
        placements.push(pl);
    }
    Arc::new(placements)
}

/// The paper's weak-scaling domain size rule (§IV-D): total volume close to
/// 750³ per GPU while keeping the overall domain a cube —
/// `round(750 * nGPUs^(1/3))`.
pub fn weak_scaling_extent(per_gpu: u64, n_gpus: usize) -> u64 {
    (per_gpu as f64 * (n_gpus as f64).cbrt()).round() as u64
}

/// Format a seconds value for tables.
pub fn fmt_ms(s: f64) -> String {
    format!("{:9.3} ms", s * 1e3)
}

/// Shared benchmark CLI flags.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Cap on scaling sweeps (`--max-nodes N`).
    pub max_nodes: usize,
    /// Repetitions per configuration (`--iters N`).
    pub iters: usize,
    /// Write a metrics JSON artifact here (`--metrics PATH`). Metrics are
    /// collected on the headline configuration of each binary; virtual-time
    /// results are unchanged.
    pub metrics: Option<String>,
}

/// Parse shared benchmark CLI flags: `--max-nodes N` caps scaling sweeps,
/// `--iters N` sets repetitions, `--metrics PATH` emits a metrics JSON
/// artifact.
pub fn bench_args(default_max_nodes: usize) -> BenchArgs {
    parse_bench_args(default_max_nodes, std::env::args().skip(1))
}

fn parse_bench_args(default_max_nodes: usize, args: impl Iterator<Item = String>) -> BenchArgs {
    let args: Vec<String> = args.collect();
    let mut parsed = BenchArgs {
        max_nodes: default_max_nodes,
        iters: 2,
        metrics: None,
    };
    let mut i = 0;
    let operand = |i: usize| -> &String {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{} needs a value", args[i]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--max-nodes" => {
                parsed.max_nodes = operand(i).parse().expect("--max-nodes N");
                i += 2;
            }
            "--iters" => {
                parsed.iters = operand(i).parse().expect("--iters N");
                i += 2;
            }
            "--metrics" => {
                parsed.metrics = Some(operand(i).clone());
                i += 2;
            }
            other => {
                panic!("unknown flag {other} (expected --max-nodes N / --iters N / --metrics PATH)")
            }
        }
    }
    parsed
}

/// Write a metrics report as JSON to `path` and print a one-line note.
pub fn write_metrics_json(path: &str, report: &detsim::MetricsReport) {
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  metrics written to {path}");
}

/// The method tiers of the paper's Fig. 12, without CUDA-aware MPI.
pub fn tiers() -> Vec<(&'static str, stencil_core::Methods)> {
    use stencil_core::Methods;
    vec![
        ("+remote", Methods::staged_only()),
        ("+colo", Methods::staged_only().with_colocated()),
        ("+peer", Methods::staged_only().with_colocated().with_peer()),
        ("+kernel", Methods::all()),
    ]
}

/// The CUDA-aware tiers of Fig. 12.
pub fn tiers_cuda_aware() -> Vec<(&'static str, stencil_core::Methods)> {
    use stencil_core::Methods;
    vec![
        ("+remote/ca", Methods::cuda_aware_only()),
        ("+colo/ca", Methods::cuda_aware_only().with_colocated()),
        (
            "+peer/ca",
            Methods::cuda_aware_only().with_colocated().with_peer(),
        ),
        ("+kernel/ca", Methods::all_with_cuda_aware()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_extent_matches_formula() {
        assert_eq!(weak_scaling_extent(750, 1), 750);
        assert_eq!(
            weak_scaling_extent(750, 6),
            (750f64 * 6f64.cbrt()).round() as u64
        );
    }

    #[test]
    fn labels_follow_paper_format() {
        let c = ExchangeConfig::new(2, 6, 945).cuda_aware(true);
        assert_eq!(c.label(), "2n/6r/6g/945/ca");
        let c2 = ExchangeConfig::new(1, 1, 0).domain([1440, 1452, 700]);
        assert_eq!(c2.label(), "1n/1r/6g/1440x1452x700");
    }

    #[test]
    fn bench_args_parse_all_flags() {
        let a = parse_bench_args(
            256,
            ["--max-nodes", "8", "--iters", "5", "--metrics", "m.json"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.max_nodes, 8);
        assert_eq!(a.iters, 5);
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        let d = parse_bench_args(256, std::iter::empty());
        assert_eq!(d.max_nodes, 256);
        assert_eq!(d.iters, 2);
        assert!(d.metrics.is_none());
    }

    #[test]
    fn metrics_snapshot_rides_along() {
        let r = measure_exchange(&ExchangeConfig::new(1, 2, 64).iters(1).metrics(true));
        let report = r.metrics.expect("metrics requested but absent");
        let json = report.to_json();
        assert!(json.contains("\"exchange\""), "no exchange metrics: {json}");
    }

    #[test]
    fn small_measurement_runs() {
        let r = measure_exchange(&ExchangeConfig::new(1, 1, 96).iters(2));
        assert_eq!(r.per_iter.len(), 2);
        assert!(r.mean > 0.0);
        assert!(!r.plan.is_empty());
    }
}
