//! Minimal wall-clock micro-benchmark harness.
//!
//! Stand-in for an external benchmarking framework: the workspace must
//! build with no registry access, so the `[[bench]]` targets (declared with
//! `harness = false`) are plain binaries driving this module. It measures
//! each registered function over a fixed number of samples and prints a
//! one-line summary (mean / min / max, plus throughput when a byte count
//! is attached). No statistics beyond that — these benches exist to be
//! runnable and comparable across commits, not to detect 1% regressions.
//!
//! ```
//! use stencil_bench::microbench::Bench;
//! let mut b = Bench::new("demo");
//! b.sample_size(3);
//! b.run("add", || std::hint::black_box(2u64) + 2);
//! ```

use std::time::Instant;

/// Wall-clock statistics of one benchmark, suitable for machine-readable
/// artifacts (see the `simperf` binary and `BENCH_pr2.json`).
#[derive(Clone, Debug)]
pub struct Summary {
    /// `group/name` of the benchmark.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean seconds per sample.
    pub mean_s: f64,
    /// Fastest sample in seconds (the stable, comparable number).
    pub min_s: f64,
    /// Slowest sample in seconds.
    pub max_s: f64,
}

/// A named group of micro-benchmarks sharing a sample count.
pub struct Bench {
    group: String,
    sample_size: usize,
    throughput_bytes: Option<u64>,
    warmup: bool,
}

impl Bench {
    /// Create a group; `group` prefixes every printed benchmark name.
    pub fn new(group: &str) -> Self {
        Bench {
            group: group.to_string(),
            sample_size: 10,
            throughput_bytes: None,
            warmup: true,
        }
    }

    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Enable or disable the untimed warm-up call before sampling (default
    /// on). Heavy end-to-end benches turn it off so one sample is one run.
    pub fn warmup(&mut self, on: bool) {
        self.warmup = on;
    }

    /// Attach a per-iteration byte count to subsequent [`Bench::run`]
    /// calls so the summary line includes throughput. Cleared by passing
    /// through [`Bench::clear_throughput`].
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.throughput_bytes = Some(bytes);
    }

    /// Stop reporting throughput for subsequent benchmarks.
    pub fn clear_throughput(&mut self) {
        self.throughput_bytes = None;
    }

    /// Time `f` over the configured number of samples (after one untimed
    /// warm-up call unless disabled via [`Bench::warmup`]) and print a
    /// summary line.
    pub fn run<T>(&self, name: &str, f: impl FnMut() -> T) {
        self.run_summary(name, f);
    }

    /// Like [`Bench::run`], but also return the wall-clock [`Summary`] so
    /// callers can build machine-readable artifacts.
    pub fn run_summary<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Summary {
        if self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed().as_secs_f64());
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mut line = format!(
            "{}/{name:<28} mean {:>12}  min {:>12}  max {:>12}",
            self.group,
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max)
        );
        if let Some(bytes) = self.throughput_bytes {
            let gib = bytes as f64 / (1u64 << 30) as f64;
            line.push_str(&format!("  {:8.3} GiB/s", gib / mean));
        }
        println!("{line}");
        Summary {
            name: format!("{}/{name}", self.group),
            samples: samples.len(),
            mean_s: mean,
            min_s: min,
            max_s: max,
        }
    }
}

/// Render a seconds value with an adaptive unit.
fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut b = Bench::new("t");
        b.sample_size(2);
        b.throughput_bytes(1024);
        b.run("noop", || 1u64 + 1);
    }

    #[test]
    fn time_formatting_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 us");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
