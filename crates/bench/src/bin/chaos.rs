//! Chaos bench: named deterministic fault scenarios over the simulated
//! cluster, measuring how halo-exchange time responds — and, for the
//! headline `degraded-triad` scenario, how much of the loss adaptive
//! re-placement recovers.
//!
//! ```text
//! chaos [--quick] [--iters N] [--metrics PATH] [--scenario NAME]...
//! ```
//!
//! Scenarios (default: all):
//! - `degraded-triad`: the healthy placement's busiest NVLink drops to
//!   10% mid-run; compares no-adaptation, adaptive re-placement, and a
//!   fresh-optimal rebuild.
//! - `degraded-fat-node`: the same playbook on a 12-GPU fat node, where
//!   placement and re-placement run on the ladder's heuristic rung
//!   instead of exhaustive QAP search.
//! - `flapping-nic`: one node's NIC repeatedly stalls and recovers.
//! - `straggler-gpu`: one device's pack/unpack engine runs at 25%.
//! - `cascading`: triad degradation, then a NIC flap, then a straggler,
//!   all live at once by the end.
//!
//! Every scenario is driven by an explicit event table in virtual time —
//! no randomness — so repeated runs are bit-identical.

use detsim::SimDuration;
use faultsim::FaultSchedule;
use stencil_bench::chaos::{
    degraded_fat_node_run, degraded_triad_run, heaviest_triad_pair, TriadMode,
};
use stencil_bench::{
    fmt_ms, measure_exchange, node_aware_placements, write_metrics_json, ExchangeConfig,
};
use stencil_core::Partition;

struct ChaosArgs {
    quick: bool,
    iters: usize,
    metrics: Option<String>,
    scenarios: Vec<String>,
}

fn parse_args() -> ChaosArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parsed = ChaosArgs {
        quick: false,
        iters: 3,
        metrics: None,
        scenarios: Vec::new(),
    };
    let operand = |i: usize| -> &String {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{} needs a value", args[i]))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--iters" => {
                parsed.iters = operand(i).parse().expect("--iters N");
                i += 2;
            }
            "--metrics" => {
                parsed.metrics = Some(operand(i).clone());
                i += 2;
            }
            "--scenario" => {
                parsed.scenarios.push(operand(i).clone());
                i += 2;
            }
            other => panic!(
                "unknown flag {other} (expected --quick / --iters N / --metrics PATH / --scenario NAME)"
            ),
        }
    }
    if parsed.scenarios.is_empty() {
        parsed.scenarios = [
            "degraded-triad",
            "degraded-fat-node",
            "flapping-nic",
            "straggler-gpu",
            "cascading",
        ]
        .map(String::from)
        .to_vec();
    }
    parsed
}

fn main() {
    let args = parse_args();
    println!("Chaos — deterministic fault injection over the simulated cluster");
    println!("================================================================");
    let mut last_report = None;
    for name in &args.scenarios {
        match name.as_str() {
            "degraded-triad" => degraded_triad(&args, &mut last_report),
            "degraded-fat-node" => degraded_fat_node(&args, &mut last_report),
            "flapping-nic" => flapping_nic(&args, &mut last_report),
            "straggler-gpu" => straggler_gpu(&args, &mut last_report),
            "cascading" => cascading(&args, &mut last_report),
            other => panic!("unknown scenario {other}"),
        }
        println!();
    }
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}

/// The headline scenario: adaptation vs. no adaptation vs. fresh-optimal.
fn degraded_triad(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let domain = if args.quick {
        [720, 726, 350]
    } else {
        [1440, 1452, 700]
    };
    let (warmup, measure) = (3, args.iters);
    println!(
        "degraded-triad: busiest placed NVLink on 1 Summit node -> 10% bandwidth, domain {}x{}x{}",
        domain[0], domain[1], domain[2]
    );
    let no_adapt = degraded_triad_run(domain, 6, 0.1, warmup, measure, TriadMode::NoAdapt);
    let adapt = degraded_triad_run(domain, 6, 0.1, warmup, measure, TriadMode::Adapt);
    let fresh = degraded_triad_run(domain, 6, 0.1, warmup, measure, TriadMode::FreshOptimal);
    println!(
        "  healthy placement, pre-fault : {}",
        fmt_ms(no_adapt.healthy_mean)
    );
    println!(
        "  stale placement,  post-fault : {}  ({:.2}x healthy)",
        fmt_ms(no_adapt.degraded_mean),
        no_adapt.degraded_mean / no_adapt.healthy_mean
    );
    println!(
        "  adaptive re-placement        : {}  (adapted: {})",
        fmt_ms(adapt.degraded_mean),
        adapt.adapted
    );
    println!(
        "  fresh-optimal (lower bound)  : {}",
        fmt_ms(fresh.degraded_mean)
    );
    println!(
        "  adaptation recovers to {:.2}x fresh-optimal; not adapting costs {:.2}x",
        adapt.degraded_mean / fresh.degraded_mean,
        no_adapt.degraded_mean / adapt.degraded_mean
    );
    if let Some(r) = adapt.metrics {
        *last_report = Some(r);
    }
}

/// The fat-node variant: 12 GPUs per node, so placement and adaptive
/// re-placement run on the heuristic rung of the solver ladder.
fn degraded_fat_node(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let domain = if args.quick {
        [720, 726, 352]
    } else {
        [1440, 1452, 704]
    };
    let (warmup, measure) = (3, args.iters);
    println!(
        "degraded-fat-node: busiest placed NVLink on 1 fat node (12 GPUs, 4 islands) -> 10% bandwidth, domain {}x{}x{}",
        domain[0], domain[1], domain[2]
    );
    let no_adapt = degraded_fat_node_run(domain, 0.1, warmup, measure, TriadMode::NoAdapt);
    let adapt = degraded_fat_node_run(domain, 0.1, warmup, measure, TriadMode::Adapt);
    let fresh = degraded_fat_node_run(domain, 0.1, warmup, measure, TriadMode::FreshOptimal);
    println!(
        "  healthy placement, pre-fault : {}",
        fmt_ms(no_adapt.healthy_mean)
    );
    println!(
        "  stale placement,  post-fault : {}  ({:.2}x healthy)",
        fmt_ms(no_adapt.degraded_mean),
        no_adapt.degraded_mean / no_adapt.healthy_mean
    );
    println!(
        "  adaptive re-placement        : {}  (adapted: {})",
        fmt_ms(adapt.degraded_mean),
        adapt.adapted
    );
    println!(
        "  fresh-optimal (lower bound)  : {}",
        fmt_ms(fresh.degraded_mean)
    );
    println!(
        "  adaptation recovers to {:.2}x fresh-optimal; not adapting costs {:.2}x",
        adapt.degraded_mean / fresh.degraded_mean,
        no_adapt.degraded_mean / adapt.degraded_mean
    );
    if let Some(r) = adapt.metrics {
        *last_report = Some(r);
    }
}

/// Compare a clean run against the same run with a fault schedule.
fn faulted_vs_clean(
    label: &str,
    cfg: ExchangeConfig,
    faults: FaultSchedule,
    last_report: &mut Option<detsim::MetricsReport>,
) {
    let clean = measure_exchange(&cfg);
    let faulted = measure_exchange(&cfg.clone().metrics(true).faults(faults));
    println!(
        "  {:<28} clean {}  faulted {}  ({:.2}x)",
        label,
        fmt_ms(clean.mean),
        fmt_ms(faulted.mean),
        faulted.mean / clean.mean
    );
    if let Some(r) = faulted.metrics {
        *last_report = Some(r);
    }
}

fn flapping_nic(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let extent = if args.quick { 472 } else { 945 };
    println!("flapping-nic: node 0's NIC stalls 500us, recovers 250us, x3 (2 nodes, {extent}^3)");
    let cfg = ExchangeConfig::new(2, 6, extent).iters(args.iters.max(4));
    let faults = FaultSchedule::flapping_nic(
        0,
        SimDuration::from_micros(100),
        SimDuration::from_micros(500),
        SimDuration::from_micros(250),
        3,
    );
    faulted_vs_clean("2n/6r staged over IB", cfg, faults, last_report);
}

fn straggler_gpu(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let extent = if args.quick { 375 } else { 750 };
    println!("straggler-gpu: device 2's pack engine at 5% from t=0 (1 node, {extent}^3)");
    let cfg = ExchangeConfig::new(1, 6, extent).iters(args.iters);
    let faults = FaultSchedule::straggler_gpu(2, SimDuration::ZERO, 0.05);
    faulted_vs_clean("1n/6r all methods", cfg, faults, last_report);
}

fn cascading(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let extent = if args.quick { 472 } else { 945 };
    println!("cascading: triad link -> NIC flaps -> straggler, 300us apart (2 nodes, {extent}^3)");
    let cfg = ExchangeConfig::new(2, 6, extent).iters(args.iters.max(4));
    // Aim the triad fault at the busiest placed NVLink so it bites.
    let placements = node_aware_placements(&cfg);
    let part = Partition::new([extent, extent, extent], 2, 6);
    let (a, b) = heaviest_triad_pair(&part, &placements[0], cfg.radius, cfg.quantities);
    let faults = FaultSchedule::cascading(
        0,
        a,
        b,
        2,
        SimDuration::from_micros(100),
        SimDuration::from_micros(300),
    );
    faulted_vs_clean("2n/6r all methods", cfg, faults, last_report);
}
