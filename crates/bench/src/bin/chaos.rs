//! Chaos bench: named deterministic fault scenarios over the simulated
//! cluster, measuring how halo-exchange time responds — and, for the
//! adaptation scenarios, how much of the loss adaptive re-placement
//! recovers.
//!
//! ```text
//! chaos [--quick] [--iters N] [--metrics PATH] [--validate] [--scenario NAME]...
//! ```
//!
//! Scenario names come from the [`faultsim::Scenario`] registry — the same
//! table the service wire format uses — so `--scenario` accepts exactly
//! the strings that `svc` specs do. Default: every registered scenario.
//!
//! - `degraded-triad`: the healthy placement's busiest NVLink drops to
//!   10% mid-run; compares no-adaptation, adaptive re-placement, and a
//!   fresh-optimal rebuild.
//! - `degraded-fat-node`: the same playbook on a 12-GPU fat node, where
//!   placement and re-placement run on the ladder's heuristic rung
//!   instead of exhaustive QAP search.
//! - `flapping-nic`: one node's NIC repeatedly stalls and recovers.
//! - `straggler-gpu`: one device's pack/unpack engine runs at 25%.
//! - `cascading`: triad degradation, then a NIC flap, then a straggler,
//!   all live at once by the end.
//! - `kill-respawn`: a rank dies mid-run alongside correlated fabric
//!   degradation, respawns, and rejoins; compares no adaptation,
//!   stop-the-world re-placement, overlapped localized re-placement, and
//!   a fresh-optimal rebuild.
//! - `oom-respawn`: the same recovery, but the kill is a device
//!   out-of-memory event (the device's memory limit shrinks to 5% while
//!   the rank is down).
//!
//! `--validate` asserts each scenario's contract (the fault bites;
//! adaptation recovers to within 10% of fresh-optimal; stop-the-world
//! pays more migration downtime than overlapped) — the CI hook.
//!
//! Every scenario is driven by an explicit event table in virtual time —
//! no randomness — so repeated runs are bit-identical.

use detsim::SimDuration;
use faultsim::{FaultSchedule, Scenario};
use stencil_bench::chaos::{
    degraded_fat_node_run, degraded_triad_run, heaviest_triad_pair, kill_recovery_run,
    RecoveryMode, TriadMode,
};
use stencil_bench::{
    fmt_ms, measure_exchange, node_aware_placements, write_metrics_json, ExchangeConfig,
};
use stencil_core::Partition;

struct ChaosArgs {
    quick: bool,
    iters: usize,
    metrics: Option<String>,
    validate: bool,
    scenarios: Vec<Scenario>,
}

fn parse_args() -> ChaosArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parsed = ChaosArgs {
        quick: false,
        iters: 3,
        metrics: None,
        validate: false,
        scenarios: Vec::new(),
    };
    let operand = |i: usize| -> &String {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{} needs a value", args[i]))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--validate" => {
                parsed.validate = true;
                i += 1;
            }
            "--iters" => {
                parsed.iters = operand(i).parse().expect("--iters N");
                i += 2;
            }
            "--metrics" => {
                parsed.metrics = Some(operand(i).clone());
                i += 2;
            }
            "--scenario" => {
                let name = operand(i);
                let scenario = Scenario::parse(name).unwrap_or_else(|| {
                    let known: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
                    panic!("unknown scenario {name} (known: {})", known.join(", "))
                });
                parsed.scenarios.push(scenario);
                i += 2;
            }
            other => panic!(
                "unknown flag {other} (expected --quick / --iters N / --metrics PATH / --validate / --scenario NAME)"
            ),
        }
    }
    if parsed.scenarios.is_empty() {
        parsed.scenarios = Scenario::ALL
            .iter()
            .copied()
            .filter(|s| *s != Scenario::None)
            .collect();
    }
    parsed
}

fn main() {
    let args = parse_args();
    println!("Chaos — deterministic fault injection over the simulated cluster");
    println!("================================================================");
    let mut last_report = None;
    for scenario in &args.scenarios {
        match scenario {
            Scenario::None => println!("none: no faults injected, nothing to run"),
            Scenario::DegradedTriad => degraded_triad(&args, &mut last_report),
            Scenario::DegradedFatNode => degraded_fat_node(&args, &mut last_report),
            Scenario::FlappingNic => flapping_nic(&args, &mut last_report),
            Scenario::StragglerGpu => straggler_gpu(&args, &mut last_report),
            Scenario::Cascading => cascading(&args, &mut last_report),
            Scenario::KillRespawn => recovery(&args, false, &mut last_report),
            Scenario::OomRespawn => recovery(&args, true, &mut last_report),
        }
        println!();
    }
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}

/// The headline scenario: adaptation vs. no adaptation vs. fresh-optimal.
fn degraded_triad(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let domain = if args.quick {
        [720, 726, 350]
    } else {
        [1440, 1452, 700]
    };
    let (warmup, measure) = (3, args.iters);
    println!(
        "degraded-triad: busiest placed NVLink on 1 Summit node -> 10% bandwidth, domain {}x{}x{}",
        domain[0], domain[1], domain[2]
    );
    let no_adapt = degraded_triad_run(domain, 6, 0.1, warmup, measure, TriadMode::NoAdapt);
    let adapt = degraded_triad_run(domain, 6, 0.1, warmup, measure, TriadMode::Adapt);
    let fresh = degraded_triad_run(domain, 6, 0.1, warmup, measure, TriadMode::FreshOptimal);
    println!(
        "  healthy placement, pre-fault : {}",
        fmt_ms(no_adapt.healthy_mean)
    );
    println!(
        "  stale placement,  post-fault : {}  ({:.2}x healthy)",
        fmt_ms(no_adapt.degraded_mean),
        no_adapt.degraded_mean / no_adapt.healthy_mean
    );
    println!(
        "  adaptive re-placement        : {}  (adapted: {})",
        fmt_ms(adapt.degraded_mean),
        adapt.adapted
    );
    println!(
        "  fresh-optimal (lower bound)  : {}",
        fmt_ms(fresh.degraded_mean)
    );
    println!(
        "  adaptation recovers to {:.2}x fresh-optimal; not adapting costs {:.2}x",
        adapt.degraded_mean / fresh.degraded_mean,
        no_adapt.degraded_mean / adapt.degraded_mean
    );
    if args.validate {
        assert!(adapt.adapted, "validate: adaptation failed to trigger");
        assert!(
            no_adapt.degraded_mean > adapt.degraded_mean,
            "validate: adapting should beat the stale placement"
        );
        println!("  validate: OK");
    }
    if let Some(r) = adapt.metrics {
        *last_report = Some(r);
    }
}

/// The fat-node variant: 12 GPUs per node, so placement and adaptive
/// re-placement run on the heuristic rung of the solver ladder.
fn degraded_fat_node(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let domain = if args.quick {
        [720, 726, 352]
    } else {
        [1440, 1452, 704]
    };
    let (warmup, measure) = (3, args.iters);
    println!(
        "degraded-fat-node: busiest placed NVLink on 1 fat node (12 GPUs, 4 islands) -> 10% bandwidth, domain {}x{}x{}",
        domain[0], domain[1], domain[2]
    );
    let no_adapt = degraded_fat_node_run(domain, 0.1, warmup, measure, TriadMode::NoAdapt);
    let adapt = degraded_fat_node_run(domain, 0.1, warmup, measure, TriadMode::Adapt);
    let fresh = degraded_fat_node_run(domain, 0.1, warmup, measure, TriadMode::FreshOptimal);
    println!(
        "  healthy placement, pre-fault : {}",
        fmt_ms(no_adapt.healthy_mean)
    );
    println!(
        "  stale placement,  post-fault : {}  ({:.2}x healthy)",
        fmt_ms(no_adapt.degraded_mean),
        no_adapt.degraded_mean / no_adapt.healthy_mean
    );
    println!(
        "  adaptive re-placement        : {}  (adapted: {})",
        fmt_ms(adapt.degraded_mean),
        adapt.adapted
    );
    println!(
        "  fresh-optimal (lower bound)  : {}",
        fmt_ms(fresh.degraded_mean)
    );
    println!(
        "  adaptation recovers to {:.2}x fresh-optimal; not adapting costs {:.2}x",
        adapt.degraded_mean / fresh.degraded_mean,
        no_adapt.degraded_mean / adapt.degraded_mean
    );
    if args.validate {
        assert!(adapt.adapted, "validate: adaptation failed to trigger");
        assert!(
            no_adapt.degraded_mean > adapt.degraded_mean,
            "validate: adapting should beat the stale placement"
        );
        println!("  validate: OK");
    }
    if let Some(r) = adapt.metrics {
        *last_report = Some(r);
    }
}

/// The rank-failure recovery scenario (and its OOM flavor): four arms over
/// the identical correlated fault — no adaptation, stop-the-world
/// re-placement, overlapped localized re-placement, fresh-optimal rebuild.
fn recovery(args: &ChaosArgs, oom: bool, last_report: &mut Option<detsim::MetricsReport>) {
    let domain = if args.quick {
        [720, 726, 350]
    } else {
        [1440, 1452, 700]
    };
    let (warmup, measure) = (3, args.iters.max(2));
    let cause = if oom {
        "oom-respawn: device 8 hits a shrunken memory limit and its rank 4 dies"
    } else {
        "kill-respawn: rank 4 dies"
    };
    println!(
        "{cause}, respawns 300us later; node 1's busiest NVLink -> 2%, inter-node switch -> 70%, domain {}x{}x{}",
        domain[0], domain[1], domain[2]
    );
    let no_adapt = kill_recovery_run(domain, warmup, measure, RecoveryMode::NoAdapt, oom);
    let stw = kill_recovery_run(
        domain,
        warmup,
        measure,
        RecoveryMode::StopTheWorldAdapt,
        oom,
    );
    let ovl = kill_recovery_run(domain, warmup, measure, RecoveryMode::OverlappedAdapt, oom);
    let fresh = kill_recovery_run(domain, warmup, measure, RecoveryMode::FreshOptimal, oom);
    println!(
        "  healthy placement, pre-fault : {}",
        fmt_ms(no_adapt.healthy_mean)
    );
    println!(
        "  stale placement, post-rejoin : {}  ({:.2}x healthy)",
        fmt_ms(no_adapt.steady_mean),
        no_adapt.steady_mean / no_adapt.healthy_mean
    );
    println!(
        "  stop-the-world re-placement  : {}  (migration downtime {})",
        fmt_ms(stw.steady_mean),
        fmt_ms(stw.migrate_secs)
    );
    println!(
        "  overlapped re-placement      : {}  (migration downtime {}, re-solved node {})",
        fmt_ms(ovl.steady_mean),
        fmt_ms(ovl.migrate_secs),
        match ovl.adapted_node {
            Some(Some(n)) => n.to_string(),
            Some(None) => "all".to_string(),
            None => "-".to_string(),
        }
    );
    println!(
        "  fresh-optimal (lower bound)  : {}",
        fmt_ms(fresh.steady_mean)
    );
    println!(
        "  overlapped recovers to {:.2}x fresh-optimal; not adapting costs {:.2}x; stop-the-world pays {:.2}x its migration downtime",
        ovl.steady_mean / fresh.steady_mean,
        no_adapt.steady_mean / ovl.steady_mean,
        stw.migrate_secs / ovl.migrate_secs
    );
    if args.validate {
        assert!(
            !no_adapt.adapted && stw.adapted && ovl.adapted,
            "validate: adaptation arms disagree (no_adapt {}, stw {}, ovl {})",
            no_adapt.adapted,
            stw.adapted,
            ovl.adapted
        );
        assert!(
            ovl.steady_mean <= 1.10 * fresh.steady_mean,
            "validate: overlapped recovery missed fresh-optimal: {:.3e} s vs {:.3e} s",
            ovl.steady_mean,
            fresh.steady_mean
        );
        assert!(
            no_adapt.steady_mean > 1.2 * ovl.steady_mean,
            "validate: not adapting should be measurably worse: {:.3e} s vs {:.3e} s",
            no_adapt.steady_mean,
            ovl.steady_mean
        );
        assert!(
            stw.migrate_secs > 1.1 * ovl.migrate_secs,
            "validate: stop-the-world should pay more downtime: {:.3e} s vs {:.3e} s",
            stw.migrate_secs,
            ovl.migrate_secs
        );
        println!("  validate: OK");
    }
    if let Some(r) = ovl.metrics {
        *last_report = Some(r);
    }
}

/// Compare a clean run against the same run with a fault schedule.
fn faulted_vs_clean(
    label: &str,
    cfg: ExchangeConfig,
    faults: FaultSchedule,
    validate: bool,
    last_report: &mut Option<detsim::MetricsReport>,
) {
    let clean = measure_exchange(&cfg);
    let faulted = measure_exchange(&cfg.clone().metrics(true).faults(faults));
    println!(
        "  {:<28} clean {}  faulted {}  ({:.2}x)",
        label,
        fmt_ms(clean.mean),
        fmt_ms(faulted.mean),
        faulted.mean / clean.mean
    );
    if validate {
        assert!(
            faulted.mean >= clean.mean,
            "validate: the fault should not speed the exchange up"
        );
        println!("  validate: OK");
    }
    if let Some(r) = faulted.metrics {
        *last_report = Some(r);
    }
}

fn flapping_nic(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let extent = if args.quick { 472 } else { 945 };
    println!("flapping-nic: node 0's NIC stalls 500us, recovers 250us, x3 (2 nodes, {extent}^3)");
    let cfg = ExchangeConfig::new(2, 6, extent).iters(args.iters.max(4));
    let faults = FaultSchedule::flapping_nic(
        0,
        SimDuration::from_micros(100),
        SimDuration::from_micros(500),
        SimDuration::from_micros(250),
        3,
    );
    faulted_vs_clean(
        "2n/6r staged over IB",
        cfg,
        faults,
        args.validate,
        last_report,
    );
}

fn straggler_gpu(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let extent = if args.quick { 375 } else { 750 };
    println!("straggler-gpu: device 2's pack engine at 5% from t=0 (1 node, {extent}^3)");
    let cfg = ExchangeConfig::new(1, 6, extent).iters(args.iters);
    let faults = FaultSchedule::straggler_gpu(2, SimDuration::ZERO, 0.05);
    faulted_vs_clean("1n/6r all methods", cfg, faults, args.validate, last_report);
}

fn cascading(args: &ChaosArgs, last_report: &mut Option<detsim::MetricsReport>) {
    let extent = if args.quick { 472 } else { 945 };
    println!("cascading: triad link -> NIC flaps -> straggler, 300us apart (2 nodes, {extent}^3)");
    let cfg = ExchangeConfig::new(2, 6, extent).iters(args.iters.max(4));
    // Aim the triad fault at the busiest placed NVLink so it bites.
    let placements = node_aware_placements(&cfg);
    let part = Partition::new([extent, extent, extent], 2, 6);
    let (a, b) = heaviest_triad_pair(&part, &placements[0], cfg.radius, cfg.quantities);
    let faults = FaultSchedule::cascading(
        0,
        a,
        b,
        2,
        SimDuration::from_micros(100),
        SimDuration::from_micros(300),
    );
    faulted_vs_clean("2n/6r all methods", cfg, faults, args.validate, last_report);
}
