//! overlap — per-iteration stencil *step* time across transports and
//! schedules: the repo's headline metric, pushed past the nonblocking
//! frontier.
//!
//! Grid: transport (staged nonblocking / persistent channels / partitioned
//! channels) × schedule (sequential / comm-compute overlapped, see
//! `stencil_core::overlap`) × node count, on weak-scaled Summit shapes with
//! rendezvous-size faces — the regime where Collom et al.'s persistent and
//! partitioned transports pay off (docs/TRANSPORTS.md).
//!
//! Every cell moves **identical halo bytes** (pinned via NIC byte counters);
//! only per-iteration virtual time differs. Results are deterministic:
//! re-running this binary reproduces the committed artifact bit-for-bit on
//! the same code.
//!
//! Flags:
//! * `--quick`      2-node smoke grid (CI).
//! * `--json PATH`  write the grid as a JSON artifact (`BENCH_pr9.json`).
//! * `--validate`   exit non-zero unless, at the largest node count,
//!   persistent beats staged nonblocking and the overlapped schedule beats
//!   sequential (both per-iteration), and NIC bytes match across every
//!   transport and schedule.
//! * `--max-nodes N` cap the sweep (default 64).

use std::sync::Arc;

use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_bench::weak_scaling_extent;
use stencil_core::{DomainBuilder, Methods, Neighborhood};
use topo::summit::summit_cluster;

const RPN: usize = 6;
/// Per-GPU cells along each axis (weak scaling), sized so faces exceed the
/// eager threshold: staged pays the rendezvous every iteration, persistent
/// only on round 0.
const PER_GPU: u64 = 24;
/// Modeled compute traffic per cell per step (bytes of device bandwidth) —
/// sized so interior compute is comparable to the exchange, the regime
/// where overlap matters.
const BYTES_PER_CELL: u64 = 2000;
const STEPS: usize = 4;

#[derive(Clone, Copy, PartialEq)]
enum Transport {
    Staged,
    Persistent,
    Partitioned,
}

impl Transport {
    fn label(self) -> &'static str {
        match self {
            Transport::Staged => "staged",
            Transport::Persistent => "persistent",
            Transport::Partitioned => "partitioned",
        }
    }

    fn methods(self) -> Methods {
        match self {
            Transport::Staged => Methods::all(),
            Transport::Persistent => Methods::all().with_persistent(),
            Transport::Partitioned => Methods::all().with_partitioned(),
        }
    }
}

struct Row {
    nodes: usize,
    transport: &'static str,
    mode: &'static str,
    per_iter_s: f64,
    nic_bytes: u64,
    plan: String,
}

fn run_cell(nodes: usize, transport: Transport, overlapped: bool) -> Row {
    let extent = weak_scaling_extent(PER_GPU, nodes * RPN);
    let methods = transport.methods();
    let cfg = WorldConfig::new(summit_cluster(nodes), RPN)
        .data_mode(DataMode::Virtual)
        .mpi_persistent(transport == Transport::Persistent)
        .mpi_partitioned(transport == Transport::Partitioned);
    let out: Arc<Mutex<(f64, String)>> = Arc::new(Mutex::new((0.0, String::new())));
    let o = Arc::clone(&out);
    let rep = run_world(cfg, move |ctx| {
        let dom = DomainBuilder::new([extent; 3])
            .radius(2)
            .quantities(2)
            .neighborhood(Neighborhood::Full26)
            .methods(methods)
            .build(ctx);
        ctx.barrier();
        // Warm-up step: channels pay their one-time match here, exactly as a
        // real solver pays it outside the timed loop.
        if overlapped {
            dom.step_overlapped(ctx, BYTES_PER_CELL);
        } else {
            dom.step_sequential(ctx, BYTES_PER_CELL);
        }
        ctx.barrier();
        let t0 = ctx.wtime();
        for _ in 0..STEPS {
            if overlapped {
                dom.step_overlapped(ctx, BYTES_PER_CELL);
            } else {
                dom.step_sequential(ctx, BYTES_PER_CELL);
            }
            ctx.barrier();
        }
        if ctx.rank() == 0 {
            let mut g = o.lock();
            g.0 = (ctx.wtime() - t0) / STEPS as f64;
            g.1 = dom.plan_summary().to_string();
        }
    });
    let (per_iter_s, plan) = out.lock().clone();
    Row {
        nodes,
        transport: transport.label(),
        mode: if overlapped {
            "overlapped"
        } else {
            "sequential"
        },
        per_iter_s,
        nic_bytes: rep.nic_injected.iter().sum(),
        plan,
    }
}

fn find<'a>(rows: &'a [Row], nodes: usize, transport: &str, mode: &str) -> &'a Row {
    rows.iter()
        .find(|r| r.nodes == nodes && r.transport == transport && r.mode == mode)
        .unwrap()
}

/// The pins `--validate` enforces. `strict` (non-quick, >= 64 nodes) also
/// demands minimum improvement margins.
fn validate(rows: &[Row], top: usize, strict: bool) -> Result<(), String> {
    // Identical delivered bytes: every transport and schedule at a given
    // node count injects exactly the same NIC traffic.
    for r in rows {
        let base = find(rows, r.nodes, "staged", "sequential");
        if r.nic_bytes != base.nic_bytes {
            return Err(format!(
                "NIC bytes diverge at {} nodes: {}/{} moved {} vs staged/sequential {}",
                r.nodes, r.transport, r.mode, r.nic_bytes, base.nic_bytes
            ));
        }
    }
    let staged = find(rows, top, "staged", "sequential").per_iter_s;
    let persistent = find(rows, top, "persistent", "sequential").per_iter_s;
    let overlapped = find(rows, top, "persistent", "overlapped").per_iter_s;
    // Quick mode (tiny grids) only demands "no worse"; the full sweep pins
    // real margins at scale.
    let (p_margin, o_margin) = if strict { (0.03, 0.05) } else { (0.0, 0.0) };
    if persistent >= staged * (1.0 - p_margin) {
        return Err(format!(
            "persistent must beat staged nonblocking by >= {:.0}% at {top} nodes: \
             {persistent:.6}s vs {staged:.6}s",
            p_margin * 100.0
        ));
    }
    if overlapped >= persistent * (1.0 - o_margin) {
        return Err(format!(
            "overlap must beat the sequential schedule by >= {:.0}% at {top} nodes: \
             {overlapped:.6}s vs {persistent:.6}s",
            o_margin * 100.0
        ));
    }
    Ok(())
}

fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n  \"bench\": \"overlap\",\n  \"schema_version\": 1,\n");
    s.push_str(&format!(
        "  \"per_gpu_extent\": {PER_GPU},\n  \"bytes_per_cell\": {BYTES_PER_CELL},\n  \"steps\": {STEPS},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"nodes\": {}, \"transport\": \"{}\", \"mode\": \"{}\", \
             \"per_iter_s\": {:.9}, \"nic_bytes\": {}}}{}\n",
            r.nodes,
            r.transport,
            r.mode,
            r.per_iter_s,
            r.nic_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_validate = args.iter().any(|a| a == "--validate");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json PATH").clone());
    let max_nodes: usize = args
        .iter()
        .position(|a| a == "--max-nodes")
        .map(|i| args[i + 1].parse().expect("--max-nodes N"))
        .unwrap_or(64);
    for a in &args {
        assert!(
            ["--quick", "--validate", "--json", "--max-nodes"].contains(&a.as_str())
                || args
                    .iter()
                    .position(|x| x == a)
                    .map(|i| i > 0 && (args[i - 1] == "--json" || args[i - 1] == "--max-nodes"))
                    .unwrap_or(false),
            "unknown flag {a}"
        );
    }

    let node_counts: Vec<usize> = if quick {
        vec![2]
    } else {
        [4, 16, 64]
            .into_iter()
            .filter(|&n| n <= max_nodes)
            .collect()
    };
    let transports = [
        Transport::Staged,
        Transport::Persistent,
        Transport::Partitioned,
    ];

    println!("overlap: per-iteration step time, transport x schedule x nodes");
    println!(
        "  {:>5}  {:>12}  {:>10}  {:>12}  {:>14}",
        "nodes", "transport", "mode", "per-iter", "vs staged/seq"
    );
    let mut rows: Vec<Row> = Vec::new();
    for &nodes in &node_counts {
        for &t in &transports {
            for overlapped in [false, true] {
                let row = run_cell(nodes, t, overlapped);
                let base = rows
                    .iter()
                    .find(|r| r.nodes == nodes && r.transport == "staged" && r.mode == "sequential")
                    .map(|r| r.per_iter_s)
                    .unwrap_or(row.per_iter_s);
                println!(
                    "  {:>5}  {:>12}  {:>10}  {:>9.3} ms  {:>13.2}x",
                    row.nodes,
                    row.transport,
                    row.mode,
                    row.per_iter_s * 1e3,
                    base / row.per_iter_s
                );
                rows.push(row);
            }
        }
    }
    println!("\nplan at {} nodes: {}", node_counts[0], rows[0].plan);

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&rows)).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("results written to {path}");
    }
    if do_validate {
        let top = *node_counts.last().unwrap();
        let strict = !quick && top >= 64;
        match validate(&rows, top, strict) {
            Ok(()) => println!(
                "validate: OK at {top} nodes ({})",
                if strict { "strict margins" } else { "quick" }
            ),
            Err(e) => {
                eprintln!("validate: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
