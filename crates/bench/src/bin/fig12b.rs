//! Fig. 12b: weak scaling *without* CUDA-aware MPI — exchange time for
//! ~750³ points per GPU as the job grows to 256 nodes (1536 GPUs), per
//! specialization tier.
//!
//! Paper claims: time flattens once most nodes have 26 distinct neighbors
//! (~32 nodes); at 256 nodes specialization gives ~1.16x over Staged-only.

use std::sync::Arc;

use stencil_bench::{
    bench_args, fmt_ms, measure_exchange, node_aware_placements, tiers, weak_scaling_extent,
    write_metrics_json, ExchangeConfig,
};

fn main() {
    let args = bench_args(256);
    let iters = args.iters;
    println!("Fig. 12b — weak scaling, no CUDA-aware MPI (750^3/GPU, 6 ranks x 6 GPUs per node)");
    println!("-----------------------------------------------------------------------------------");
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>12} {:>12} | speedup",
        "nodes", "extent", "+remote", "+colo", "+peer", "+kernel"
    );
    let mut last = (0.0, 0.0);
    let mut last_report = None;
    let all_tiers = tiers();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        if nodes > args.max_nodes {
            break;
        }
        let extent = weak_scaling_extent(750, nodes * 6);
        // One QAP/partition solve per row, shared by all four method tiers.
        let pre = node_aware_placements(&ExchangeConfig::new(nodes, 6, extent));
        let mut row = Vec::new();
        for (i, (_, m)) in all_tiers.iter().enumerate() {
            // Collect the metrics artifact from the fully specialized tier;
            // metrics do not affect virtual time, so the row is unchanged.
            let collect = args.metrics.is_some() && i == all_tiers.len() - 1;
            let cfg = ExchangeConfig::new(nodes, 6, extent)
                .methods(*m)
                .iters(iters)
                .metrics(collect)
                .preplaced(Arc::clone(&pre));
            let r = measure_exchange(&cfg);
            if let Some(report) = r.metrics {
                last_report = Some(report);
            }
            row.push(r.mean);
        }
        println!(
            "{:>6} {:>8} | {} {} {} {} |  {:.2}x",
            nodes,
            extent,
            fmt_ms(row[0]),
            fmt_ms(row[1]),
            fmt_ms(row[2]),
            fmt_ms(row[3]),
            row[0] / row[3]
        );
        last = (row[0], row[3]);
    }
    println!();
    println!(
        "  specialization speedup at largest scale: {:.2}x  (paper: 1.16x at 256 nodes)",
        last.0 / last.1
    );
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}
