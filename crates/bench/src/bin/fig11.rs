//! Fig. 11: node-aware vs trivial data placement on the worst-case
//! aspect-ratio domain (1440 x 1452 x 700 over one node's 6 GPUs: six
//! 720 x 484 x 700 subdomains). The paper reports ~20% speedup from
//! node-aware placement.

use stencil_bench::{bench_args, fmt_ms, measure_exchange, write_metrics_json, ExchangeConfig};
use stencil_core::dim3::Neighborhood;
use stencil_core::{placement, Methods, Partition, PlacementStrategy, Radius};
use topo::summit::summit_node;
use topo::NodeDiscovery;

fn main() {
    let args = bench_args(1);
    let iters = args.iters;
    let mut last_report = None;
    let domain = [1440u64, 1452, 700];
    println!(
        "Fig. 11 — data placement on a {}x{}x{} domain, 1 node, 6 GPUs",
        domain[0], domain[1], domain[2]
    );
    println!("--------------------------------------------------------------------");

    // Show the QAP inputs and the chosen assignment.
    let part = Partition::new(domain, 1, 6);
    let b = part.gpu_box([0, 0, 0], [0, 0, 0]);
    println!(
        "  subdomains: {:?} each (gpu grid {:?})",
        b.extent, part.gpu_dims
    );
    let disc = NodeDiscovery::discover(&summit_node());
    let r = Radius::constant(2);
    for (name, strat) in [
        ("node-aware", PlacementStrategy::NodeAware),
        ("trivial", PlacementStrategy::Trivial),
    ] {
        let pl = placement::place(
            &part,
            [0, 0, 0],
            &disc,
            Neighborhood::Full26,
            &r,
            4,
            4,
            strat,
            stencil_core::dim3::Boundary::Periodic,
        );
        println!(
            "  {name:<11} assignment (subdomain -> GPU): {:?}   QAP cost {:.3e}",
            pl.gpu_for_subdomain, pl.cost
        );
    }
    println!();

    let mut speedups = Vec::new();
    for rpn in [1usize, 2, 6] {
        let mut row = Vec::new();
        for (pname, p) in [
            ("node-aware", PlacementStrategy::NodeAware),
            ("trivial", PlacementStrategy::Trivial),
            ("empirical", PlacementStrategy::Empirical),
        ] {
            // Collect the metrics artifact from the node-aware 6-rank run.
            let collect =
                args.metrics.is_some() && rpn == 6 && matches!(p, PlacementStrategy::NodeAware);
            let cfg = ExchangeConfig::new(1, rpn, 0)
                .domain(domain)
                .methods(Methods::all())
                .placement(p)
                .iters(iters)
                .metrics(collect);
            let res = measure_exchange(&cfg);
            if let Some(report) = res.metrics {
                last_report = Some(report);
            }
            println!("  {:<26} {:<11}: {}", cfg.label(), pname, fmt_ms(res.mean));
            row.push(res.mean);
        }
        let s = row[1] / row[0];
        println!(
            "    -> node-aware speedup over trivial: {s:.2}x (measured-bandwidth variant: {:.2}x)",
            row[1] / row[2]
        );
        speedups.push(s);
    }
    println!();
    println!(
        "  paper: ~1.20x; measured best: {:.2}x",
        speedups.iter().cloned().fold(f64::MIN, f64::max)
    );
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}
