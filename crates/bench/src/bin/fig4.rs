//! Fig. 4: the hierarchical prime-factor decomposition example —
//! a 4 x 24 x 2 domain among 12 nodes of 4 GPUs.

use stencil_core::partition::{choose_dims, prime_factors};
use stencil_core::Partition;

fn main() {
    let domain = [4u64, 24, 2];
    println!("Fig. 4 — hierarchical decomposition of a 4x24x2 domain, 12 nodes x 4 GPUs");
    println!("--------------------------------------------------------------------------");
    println!(
        "  prime factors of 12 (largest first): {:?}",
        prime_factors(12)
    );
    println!(
        "  prime factors of  4 (largest first): {:?}",
        prime_factors(4)
    );

    let p = Partition::new(domain, 12, 4);
    println!("  node grid: {:?}   (paper: [2, 6, 1])", p.node_dims);
    println!("  gpu grid:  {:?}   (paper: [2, 2, 1])", p.gpu_dims);
    assert_eq!(p.node_dims, [2, 6, 1]);
    assert_eq!(p.gpu_dims, [2, 2, 1]);

    // Walk the splits the way the figure narrates them.
    println!(
        "  step ❷: split y by 3 -> node shape {:?}",
        choose_dims(domain, 3)
    );
    println!(
        "  step ❸: then y by 2, step ❹: then x by 2 -> {:?}",
        p.node_dims
    );

    // The annotated subdomain [1, 2, 0] in node space.
    let nb = p.node_box([1, 2, 0]);
    println!(
        "  node subdomain [1,2,0]: origin {:?}, extent {:?}",
        nb.origin, nb.extent
    );

    println!("\n  per-GPU subdomains of node [1,2,0]:");
    for gz in 0..p.gpu_dims[2] {
        for gy in 0..p.gpu_dims[1] {
            for gx in 0..p.gpu_dims[0] {
                let b = p.gpu_box([1, 2, 0], [gx, gy, gz]);
                println!(
                    "    gpu [{gx},{gy},{gz}]: origin {:?}, extent {:?}, global index {:?}",
                    b.origin,
                    b.extent,
                    p.global_idx([1, 2, 0], [gx, gy, gz])
                );
            }
        }
    }

    // Exhaustive checks: exact disjoint cover.
    let total: u64 = p
        .all_subdomains()
        .map(|(n, g)| p.gpu_box(n, g).volume())
        .sum();
    assert_eq!(total, domain[0] * domain[1] * domain[2]);
    println!("\n  OK: 48 subdomains cover the domain exactly");
}
