//! Fig. 3: communication volume of alternative partitions of one 2D domain.
//!
//! The paper illustrates that for a fixed partition count, minimizing
//! subdomain surface-to-volume ratio minimizes total exchanged data:
//! a 2×2 split of a square beats 4×1, and 3×3 beats 9×1.

use stencil_core::dim3::Neighborhood;
use stencil_core::{Partition, Radius};

/// Total bytes exchanged per halo exchange across all subdomains (one
/// quantity, `r`-cell halos, 4-byte cells), counting every directed
/// transfer with periodic boundaries.
fn total_exchange_volume(p: &Partition, r: u64) -> u64 {
    let radius = Radius::constant(r);
    let mut total = 0u64;
    for (n, g) in p.all_subdomains() {
        let b = p.gpu_box(n, g);
        for d in Neighborhood::Full26.directions() {
            // 2D domains: skip z exchanges (extent 1 slab would still wrap,
            // matching the figure's 2D accounting when z dirs are excluded).
            if d.0[2] != 0 {
                continue;
            }
            let e = radius.halo_extent(b.extent, d);
            total += e[0] * e[1] * e[2] * 4;
        }
    }
    total
}

fn main() {
    let domain = [60u64, 60, 1];
    let r = 1;
    println!("Fig. 3 — total exchanged bytes for partitions of a 60x60 domain (r={r})");
    println!("---------------------------------------------------------------------");
    let cases = [
        ("2x2 (chosen for 4)", [2usize, 2, 1]),
        ("4x1", [4, 1, 1]),
        ("3x3 (chosen for 9)", [3, 3, 1]),
        ("9x1", [9, 1, 1]),
    ];
    let mut results = Vec::new();
    for (name, dims) in cases {
        let p = Partition::with_dims(domain, [1, 1, 1], dims);
        let v = total_exchange_volume(&p, r);
        let b = p.gpu_box([0, 0, 0], [0, 0, 0]);
        println!(
            "  {:<20} subdomain {:>3}x{:<3} volume/subdomain {:>5}  total exchange {:>8} B",
            name,
            b.extent[0],
            b.extent[1],
            b.volume(),
            v
        );
        results.push((name, v));
    }
    println!();
    // The automatic chooser must pick the square-ish splits.
    let auto4 = Partition::new(domain, 1, 4);
    let auto9 = Partition::new(domain, 1, 9);
    println!(
        "  choose_dims picks {:?} for 4 parts, {:?} for 9 parts",
        auto4.gpu_dims, auto9.gpu_dims
    );
    assert!(results[0].1 < results[1].1, "2x2 must beat 4x1");
    assert!(results[2].1 < results[3].1, "3x3 must beat 9x1");
    assert_eq!(auto4.gpu_dims, [2, 2, 1]);
    assert_eq!(auto9.gpu_dims, [3, 3, 1]);
    println!("  OK: lower surface-to-volume partitions exchange less data");
}
