//! Table I + Fig. 10: the simulated Summit node — hardware summary,
//! link bandwidths, and the discovered GPU connectivity matrix.

use detsim::Kernel;
use topo::summit::{summit_cluster, summit_node, HBM_BW, NIC_BW, NVLINK_BW, XBUS_BW};
use topo::{Fabric, NodeDiscovery};

fn main() {
    println!("Table I — simulated hardware summary");
    println!("------------------------------------");
    println!(
        "{:<18} Summit (2x POWER9 + 6x V100-SXM2-16GB)",
        "node model"
    );
    println!("{:<18} 2 sockets, X-Bus SMP interconnect", "CPU");
    println!(
        "{:<18} 6 per node, 16 GiB each, in two NVLink triads",
        "GPUs"
    );
    println!(
        "{:<18} dual-rail EDR InfiniBand, non-blocking switch",
        "interconnect"
    );
    println!(
        "{:<18} detsim/gpusim/mpisim simulation (no real CUDA/MPI)",
        "substrate"
    );
    println!();
    println!("Fig. 10 — link bandwidths (per direction)");
    println!("-----------------------------------------");
    println!(
        "{:<28} {:>8.0} GB/s",
        "NVLink2 (GPU-GPU, GPU-CPU)",
        NVLINK_BW / 1e9
    );
    println!("{:<28} {:>8.0} GB/s", "X-Bus (CPU-CPU)", XBUS_BW / 1e9);
    println!("{:<28} {:>8.0} GB/s", "NIC injection", NIC_BW / 1e9);
    println!("{:<28} {:>8.0} GB/s", "HBM2 (device memory)", HBM_BW / 1e9);
    println!();

    let node = summit_node();
    let disc = NodeDiscovery::discover(&node);
    println!("Discovered GPU connectivity (nvidia-smi topo -m analogue)");
    println!("----------------------------------------------------------");
    print!("{}", disc.render_matrix());
    println!();
    println!("Pairwise nominal bandwidth used for placement (GB/s):");
    for a in 0..6 {
        print!("  GPU{a}:");
        for b in 0..6 {
            print!(" {:>6.0}", disc.bandwidth(a, b) / 1e9);
        }
        println!();
    }
    println!();

    // Zero-contention path capacities through the instantiated fabric.
    let mut k = Kernel::new();
    let fabric = Fabric::build(&mut k, summit_cluster(2));
    println!("Zero-contention path capacities (GB/s) through the fabric:");
    let cases: Vec<(&str, Vec<detsim::LinkId>)> = vec![
        ("GPU0 -> GPU1 (triad)", fabric.gpu_gpu_path(0, 0, 1)),
        ("GPU0 -> GPU3 (cross-socket)", fabric.gpu_gpu_path(0, 0, 3)),
        ("GPU0 -> host (D2H)", fabric.gpu_to_host_path(0, 0)),
        (
            "host n0 -> host n1 (IB)",
            fabric.internode_host_path(0, 0, 1, 0),
        ),
        (
            "GPU0@n0 -> GPU0@n1 (GPUDirect)",
            fabric.internode_gpu_path(0, 0, 1, 0),
        ),
    ];
    for (name, path) in cases {
        println!(
            "  {:<32} {:>6.1}  ({} hops, {:.1} us latency)",
            name,
            k.path_capacity(&path) / 1e9,
            path.len(),
            k.path_latency(&path).as_micros_f64()
        );
    }
}
